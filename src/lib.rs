//! # symcosim — symbolic co-simulation for RISC-V processor verification
//!
//! Facade crate re-exporting the whole workspace under one roof. The
//! individual crates are usable on their own; this crate exists so that the
//! repository-level examples and integration tests can say `use symcosim::…`
//! and so downstream users get a single dependency.
//!
//! The framework reproduces the DATE 2023 paper *"Processor Verification
//! using Symbolic Execution: A RISC-V Case-Study"* (Bruns, Herdt, Drechsler):
//! an RV32I+Zicsr RTL core model is co-simulated against a reference ISS
//! under a symbolic execution engine; a voter compares RVFI retirement
//! records and reports functional mismatches together with concrete
//! reproducing test vectors.
//!
//! See [`core`] for the verification flow, [`symex`] for the symbolic
//! engine, [`exec`] for the parallel path-exploration executor,
//! [`microrv32`] for the device under test and [`iss`] for the
//! reference model.
//!
//! # Quickstart
//!
//! ```
//! use symcosim::core::{SessionConfig, VerifySession};
//! use symcosim::microrv32::InjectedError;
//!
//! # fn main() -> Result<(), symcosim::core::SessionError> {
//! // Seed a control-flow fault and hunt it with symbolic co-simulation.
//! let mut config = SessionConfig::rv32i_only();
//! config.inject = Some(InjectedError::E6BneBehavesLikeBeq);
//! let report = VerifySession::new(config)?.run();
//! let finding = report.first_mismatch().expect("the fault is found");
//! assert!(finding.witness.is_some(), "every finding carries a reproducer");
//! # Ok(())
//! # }
//! ```

pub use symcosim_core as core;
pub use symcosim_exec as exec;
pub use symcosim_isa as isa;
pub use symcosim_iss as iss;
pub use symcosim_microrv32 as microrv32;
pub use symcosim_rtl as rtl;
pub use symcosim_sat as sat;
pub use symcosim_serve as serve;
pub use symcosim_symex as symex;
