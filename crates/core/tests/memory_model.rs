//! Property tests of the symbolic data memory against a byte-array
//! reference model, exercised through both of its interfaces (the strobe
//! DBus used by the core and the byte interface used by the ISS).

use symcosim_core::SymbolicDataMemory;
use symcosim_rtl::Strobe;
use symcosim_symex::ConcreteDomain;
use symcosim_testkit::{check_cases, Rng};

const WORDS: usize = 16;

/// Simple byte-addressed reference model.
#[derive(Clone)]
struct RefMem {
    bytes: Vec<u8>,
}

impl RefMem {
    fn new() -> RefMem {
        RefMem {
            bytes: vec![0; WORDS * 4],
        }
    }

    fn load(&self, addr: u32, width: u32) -> u32 {
        let mut value = 0u32;
        for i in 0..width {
            let a = ((addr + i) as usize) % (WORDS * 4);
            value |= (self.bytes[a] as u32) << (i * 8);
        }
        value
    }

    fn store(&mut self, addr: u32, value: u32, width: u32) {
        for i in 0..width {
            let a = ((addr + i) as usize) % (WORDS * 4);
            self.bytes[a] = (value >> (i * 8)) as u8;
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    ByteLoad {
        addr: u32,
        width: u32,
    },
    ByteStore {
        addr: u32,
        value: u32,
        width: u32,
    },
    StrobeLoad {
        word_addr: u32,
        lanes: u8,
    },
    StrobeStore {
        word_addr: u32,
        data: u32,
        lanes: u8,
    },
}

const WIDTHS: [u32; 3] = [1, 2, 4];
const LANES: [u8; 7] = [0b0001, 0b0010, 0b0100, 0b1000, 0b0011, 0b1100, 0b1111];

fn random_op(rng: &mut Rng) -> Op {
    match rng.index(4) {
        0 => Op::ByteLoad {
            addr: rng.below(WORDS as u64 * 4) as u32,
            width: *rng.choose(&WIDTHS),
        },
        1 => Op::ByteStore {
            addr: rng.below(WORDS as u64 * 4) as u32,
            value: rng.next_u32(),
            width: *rng.choose(&WIDTHS),
        },
        2 => Op::StrobeLoad {
            word_addr: rng.below(WORDS as u64) as u32 * 4,
            lanes: *rng.choose(&LANES),
        },
        _ => Op::StrobeStore {
            word_addr: rng.below(WORDS as u64) as u32 * 4,
            data: rng.next_u32(),
            lanes: *rng.choose(&LANES),
        },
    }
}

fn lane_mask(lanes: u8) -> u32 {
    (0..4)
        .filter(|l| lanes & (1 << l) != 0)
        .fold(0, |m, l| m | (0xff << (l * 8)))
}

/// Arbitrary interleavings of byte and strobe accesses agree with the
/// byte-array reference model.
#[test]
fn memory_matches_reference() {
    check_cases(0x3e3_0001, 128, |rng| {
        let ops: Vec<Op> = (0..1 + rng.index(39)).map(|_| random_op(rng)).collect();

        let mut dom = ConcreteDomain::new();
        let mut mem: SymbolicDataMemory<ConcreteDomain> =
            SymbolicDataMemory::new_zeroed(&mut dom, WORDS);
        let mut reference = RefMem::new();

        for op in &ops {
            match *op {
                Op::ByteLoad { addr, width } => {
                    let got = mem.load_bytes(&mut dom, addr, width);
                    let want = reference.load(addr, width);
                    assert_eq!(got, want, "byte load at {addr:#x} width {width}");
                }
                Op::ByteStore { addr, value, width } => {
                    mem.store_bytes(&mut dom, addr, value, width);
                    reference.store(addr, value, width);
                }
                Op::StrobeLoad { word_addr, lanes } => {
                    let strobe = Strobe::from_lanes(lanes).expect("legal lanes");
                    let got = mem.strobe_access(&mut dom, word_addr, false, 0, strobe);
                    let want = reference.load(word_addr, 4) & lane_mask(lanes);
                    assert_eq!(got, want, "strobe load at {word_addr:#x} lanes {lanes:04b}");
                }
                Op::StrobeStore {
                    word_addr,
                    data,
                    lanes,
                } => {
                    let strobe = Strobe::from_lanes(lanes).expect("legal lanes");
                    mem.strobe_access(&mut dom, word_addr, true, data, strobe);
                    let mask = lane_mask(lanes);
                    let merged = (reference.load(word_addr, 4) & !mask) | (data & mask);
                    reference.store(word_addr, merged, 4);
                }
            }
        }

        // Final full-state agreement.
        for i in 0..WORDS {
            let got = mem.words()[i];
            let want = reference.load(i as u32 * 4, 4);
            assert_eq!(got, want, "word {i}");
        }
    });
}
