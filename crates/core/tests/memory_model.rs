//! Property tests of the symbolic data memory against a byte-array
//! reference model, exercised through both of its interfaces (the strobe
//! DBus used by the core and the byte interface used by the ISS).

use proptest::prelude::*;
use symcosim_core::SymbolicDataMemory;
use symcosim_rtl::Strobe;
use symcosim_symex::ConcreteDomain;

const WORDS: usize = 16;

/// Simple byte-addressed reference model.
#[derive(Clone)]
struct RefMem {
    bytes: Vec<u8>,
}

impl RefMem {
    fn new() -> RefMem {
        RefMem {
            bytes: vec![0; WORDS * 4],
        }
    }

    fn load(&self, addr: u32, width: u32) -> u32 {
        let mut value = 0u32;
        for i in 0..width {
            let a = ((addr + i) as usize) % (WORDS * 4);
            value |= (self.bytes[a] as u32) << (i * 8);
        }
        value
    }

    fn store(&mut self, addr: u32, value: u32, width: u32) {
        for i in 0..width {
            let a = ((addr + i) as usize) % (WORDS * 4);
            self.bytes[a] = (value >> (i * 8)) as u8;
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    ByteLoad {
        addr: u32,
        width: u32,
    },
    ByteStore {
        addr: u32,
        value: u32,
        width: u32,
    },
    StrobeLoad {
        word_addr: u32,
        lanes: u8,
    },
    StrobeStore {
        word_addr: u32,
        data: u32,
        lanes: u8,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let width = prop_oneof![Just(1u32), Just(2), Just(4)];
    let lanes = prop_oneof![
        Just(0b0001u8),
        Just(0b0010),
        Just(0b0100),
        Just(0b1000),
        Just(0b0011),
        Just(0b1100),
        Just(0b1111),
    ];
    prop_oneof![
        (0u32..WORDS as u32 * 4, width.clone())
            .prop_map(|(addr, width)| Op::ByteLoad { addr, width }),
        (0u32..WORDS as u32 * 4, any::<u32>(), width)
            .prop_map(|(addr, value, width)| Op::ByteStore { addr, value, width }),
        (0u32..WORDS as u32, lanes.clone()).prop_map(|(w, lanes)| Op::StrobeLoad {
            word_addr: w * 4,
            lanes
        }),
        (0u32..WORDS as u32, any::<u32>(), lanes).prop_map(|(w, data, lanes)| Op::StrobeStore {
            word_addr: w * 4,
            data,
            lanes
        }),
    ]
}

fn lane_mask(lanes: u8) -> u32 {
    (0..4)
        .filter(|l| lanes & (1 << l) != 0)
        .fold(0, |m, l| m | (0xff << (l * 8)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary interleavings of byte and strobe accesses agree with the
    /// byte-array reference model.
    #[test]
    fn memory_matches_reference(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut dom = ConcreteDomain::new();
        let mut mem: SymbolicDataMemory<ConcreteDomain> =
            SymbolicDataMemory::new_zeroed(&mut dom, WORDS);
        let mut reference = RefMem::new();

        for op in &ops {
            match *op {
                Op::ByteLoad { addr, width } => {
                    let got = mem.load_bytes(&mut dom, addr, width);
                    let want = reference.load(addr, width);
                    prop_assert_eq!(got, want, "byte load at {:#x} width {}", addr, width);
                }
                Op::ByteStore { addr, value, width } => {
                    mem.store_bytes(&mut dom, addr, value, width);
                    reference.store(addr, value, width);
                }
                Op::StrobeLoad { word_addr, lanes } => {
                    let strobe = Strobe::from_lanes(lanes).expect("legal lanes");
                    let got = mem.strobe_access(&mut dom, word_addr, false, 0, strobe);
                    let want = reference.load(word_addr, 4) & lane_mask(lanes);
                    prop_assert_eq!(got, want, "strobe load at {:#x} lanes {:04b}", word_addr, lanes);
                }
                Op::StrobeStore { word_addr, data, lanes } => {
                    let strobe = Strobe::from_lanes(lanes).expect("legal lanes");
                    mem.strobe_access(&mut dom, word_addr, true, data, strobe);
                    let mask = lane_mask(lanes);
                    let merged = (reference.load(word_addr, 4) & !mask) | (data & mask);
                    reference.store(word_addr, merged, 4);
                }
            }
        }

        // Final full-state agreement.
        for i in 0..WORDS {
            let got = mem.words()[i];
            let want = reference.load(i as u32 * 4, 4);
            prop_assert_eq!(got, want, "word {}", i);
        }
    }
}
