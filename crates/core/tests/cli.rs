//! End-to-end tests of the `symcosim-cli` binary.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_symcosim-cli");

#[test]
fn help_prints_usage() {
    let output = Command::new(BIN)
        .arg("--help")
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("verify"));
    assert!(text.contains("inject"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let output = Command::new(BIN)
        .arg("frobnicate")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let text = String::from_utf8_lossy(&output.stderr);
    assert!(text.contains("unknown subcommand"));
}

#[test]
fn inject_finds_a_fast_fault() {
    // E5 (JAL loses the PC update) is detected within a handful of paths.
    let output = Command::new(BIN)
        .args(["inject", "E5"])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("JAL does not change the PC"), "{text}");
    assert!(text.contains("reproducer:"), "{text}");
}

#[test]
fn asm_assembles_stdin() {
    let mut child = Command::new(BIN)
        .arg("asm")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"addi x1, x0, 42\nebreak\n")
        .expect("write source");
    let output = child.wait_with_output().expect("binary finishes");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert_eq!(
        text.lines().collect::<Vec<_>>(),
        vec!["02a00093", "00100073"]
    );
}

#[test]
fn asm_reports_errors_on_stderr() {
    let mut child = Command::new(BIN)
        .arg("asm")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(b"bogus x1\n")
        .expect("write source");
    let output = child.wait_with_output().expect("binary finishes");
    assert!(!output.status.success());
    let text = String::from_utf8_lossy(&output.stderr);
    assert!(text.contains("line 1"), "{text}");
}

#[test]
fn verify_slices_matches_the_unsliced_certificate() {
    let single = Command::new(BIN)
        .args(["verify", "--opcode", "0x63", "--certify"])
        .output()
        .expect("binary runs");
    assert!(
        single.status.success(),
        "{}",
        String::from_utf8_lossy(&single.stderr)
    );
    let single = String::from_utf8_lossy(&single.stdout);
    let certificate = single
        .split("coverage certificate")
        .nth(1)
        .expect("unsliced run prints a certificate");

    let sliced = Command::new(BIN)
        .args(["verify", "--opcode", "0x63", "--certify", "--slices", "2"])
        .output()
        .expect("binary runs");
    assert!(
        sliced.status.success(),
        "{}",
        String::from_utf8_lossy(&sliced.stderr)
    );
    let sliced = String::from_utf8_lossy(&sliced.stdout);
    assert!(sliced.contains("slice 1/2"), "{sliced}");
    assert!(sliced.contains("slice 2/2"), "{sliced}");
    assert_eq!(
        sliced.split("coverage certificate").nth(1),
        Some(certificate),
        "sliced certificate diverged from the unsliced run"
    );
}

#[test]
fn verify_slices_requires_certify() {
    let output = Command::new(BIN)
        .args(["verify", "--opcode", "0x63", "--slices", "2"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let text = String::from_utf8_lossy(&output.stderr);
    assert!(text.contains("--certify"), "{text}");
}
