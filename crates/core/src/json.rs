//! Shared JSON plumbing for the machine-readable surfaces.
//!
//! Three tools speak JSON — the lint report (`symcosim-lint/1`), the
//! session report dump (`symcosim-report/1`) and the coverage certificate
//! (`symcosim-cert/1`) — and all three must be *stable*: fixed field
//! order, fixed formatting, so CI gates and golden files compare
//! byte-for-byte. [`JsonWriter`] is the single emitter they share, and
//! [`header`] stamps the common `schema`/`tool`/`version` preamble.
//!
//! [`JsonValue`] is the matching reader: a minimal recursive-descent
//! parser (std-only, like everything else in the workspace) sufficient
//! for round-tripping our own output — which `symcosim-lint --coverage`
//! does when it re-certifies a dumped session report.

use std::fmt;

/// Tool name stamped into every JSON header.
pub const TOOL: &str = "symcosim";

/// Tool version stamped into every JSON header (the workspace version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Minimal pretty-printing JSON emitter with a fixed layout: two-space
/// indentation, one field per line, no trailing spaces — deliberately
/// boring so reports diff cleanly.
#[derive(Debug)]
pub struct JsonWriter {
    out: String,
    indent: usize,
    /// Whether the current container already has an entry (comma control).
    has_entry: Vec<bool>,
}

impl Default for JsonWriter {
    fn default() -> JsonWriter {
        JsonWriter::new()
    }
}

impl JsonWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            indent: 0,
            has_entry: Vec::new(),
        }
    }

    /// Terminates the document with a trailing newline and returns it.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }

    fn newline_indent(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn begin_entry(&mut self) {
        if let Some(has_entry) = self.has_entry.last_mut() {
            if *has_entry {
                self.out.push(',');
            }
            *has_entry = true;
        }
        if !self.has_entry.is_empty() {
            self.newline_indent();
        }
    }

    fn key(&mut self, name: &str) {
        self.begin_entry();
        self.out.push('"');
        self.out.push_str(name);
        self.out.push_str("\": ");
    }

    /// Opens `{` (top level or after a key written by the caller).
    pub fn open_object(&mut self) {
        self.out.push('{');
        self.indent += 1;
        self.has_entry.push(false);
    }

    /// Closes the innermost `}`.
    pub fn close_object(&mut self) {
        let had_entries = self.has_entry.pop().unwrap_or(false);
        self.indent -= 1;
        if had_entries {
            self.newline_indent();
        }
        self.out.push('}');
    }

    /// Emits `"name": {` — close with [`JsonWriter::close_object`].
    pub fn object_field(&mut self, name: &str) {
        self.key(name);
        self.open_object();
    }

    /// Emits `"name": null`.
    pub fn null_field(&mut self, name: &str) {
        self.key(name);
        self.out.push_str("null");
    }

    /// Emits `"name": "value"` (escaped).
    pub fn string_field(&mut self, name: &str, value: &str) {
        self.key(name);
        self.push_json_string(value);
    }

    /// Emits `"name": value` for an unsigned integer.
    pub fn number_field(&mut self, name: &str, value: u64) {
        self.key(name);
        self.out.push_str(&value.to_string());
    }

    /// Emits `"name": value` for a non-negative float, fixed at two
    /// decimals (the precision the benchmark tables print).
    pub fn float_field(&mut self, name: &str, value: f64) {
        self.key(name);
        self.out.push_str(&format!("{value:.2}"));
    }

    /// Emits `"name": true|false`.
    pub fn bool_field(&mut self, name: &str, value: bool) {
        self.key(name);
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Emits `"name": [...]` with `len` elements produced by `emit`
    /// (which writes one value per call via the `*_value` helpers).
    pub fn array_field(
        &mut self,
        name: &str,
        len: usize,
        emit: impl FnMut(&mut JsonWriter, usize),
    ) {
        self.key(name);
        self.array_value(len, emit);
    }

    /// Writes a bare `[...]` value (array element) with `len` elements
    /// produced by `emit` — the nested-array counterpart of
    /// [`JsonWriter::array_field`].
    pub fn array_value(&mut self, len: usize, mut emit: impl FnMut(&mut JsonWriter, usize)) {
        if len == 0 {
            self.out.push_str("[]");
            return;
        }
        self.out.push('[');
        self.indent += 1;
        self.has_entry.push(false);
        for index in 0..len {
            self.begin_entry();
            // The element itself must not re-trigger comma handling.
            let depth = self.has_entry.len();
            self.has_entry.push(false);
            emit(self, index);
            self.has_entry.truncate(depth);
        }
        self.has_entry.pop();
        self.indent -= 1;
        self.newline_indent();
        self.out.push(']');
    }

    /// Writes a bare string value (array element).
    pub fn string_value(&mut self, value: &str) {
        self.push_json_string(value);
    }

    /// Writes a bare unsigned integer value (array element).
    pub fn number_value(&mut self, value: u64) {
        self.out.push_str(&value.to_string());
    }

    /// Writes a bare signed integer value (array element) — used for
    /// DIMACS literals in the audit artifact.
    pub fn int_value(&mut self, value: i64) {
        self.out.push_str(&value.to_string());
    }

    /// Writes an escaped JSON string literal.
    pub fn push_json_string(&mut self, value: &str) {
        self.out.push('"');
        for ch in value.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\t' => self.out.push_str("\\t"),
                '\r' => self.out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    #[cfg(test)]
    fn raw(&self) -> &str {
        &self.out
    }
}

/// Writes the shared document header: `schema`, then `tool`, then
/// `version`. Every versioned JSON surface starts with these three fields
/// so consumers can dispatch without sniffing.
pub fn header(w: &mut JsonWriter, schema: &str) {
    w.string_field("schema", schema);
    w.string_field("tool", TOOL);
    w.string_field("version", VERSION);
}

/// A parsed JSON document.
///
/// Numbers keep their source spelling (`Number(String)`) so 64-bit counts
/// round-trip exactly; use [`JsonValue::as_u64`] to read them.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source text.
    Number(String),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source field order.
    Object(Vec<(String, JsonValue)>),
}

/// A parse failure, with the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing data after document"));
        }
        Ok(value)
    }

    /// Field lookup on an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is an unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as a signed 64-bit integer, if it is one (DIMACS
    /// literals in the audit artifact are negative for negated atoms).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII slice")
            .to_string();
        Ok(JsonValue::Number(raw))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(hex).ok_or_else(|| self.error("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_emits_stable_layout() {
        let mut w = JsonWriter::new();
        w.open_object();
        header(&mut w, "symcosim-cert/1");
        w.bool_field("ok", true);
        w.array_field("xs", 2, |w, i| w.number_value(i as u64));
        w.close_object();
        let text = w.finish();
        assert!(text.starts_with("{\n  \"schema\": \"symcosim-cert/1\""));
        assert!(text.contains("\"tool\": \"symcosim\""));
        assert!(text.ends_with("}\n"));
        // Round-trips through the parser.
        let value = JsonValue::parse(&text).expect("own output parses");
        assert_eq!(value.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            value
                .get("xs")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let value =
            JsonValue::parse(r#"{"s": "a\"bA", "n": 4294967295, "z": null}"#).expect("parses");
        assert_eq!(value.get("s").and_then(JsonValue::as_str), Some("a\"bA"));
        assert_eq!(
            value.get("n").and_then(JsonValue::as_u64),
            Some(4_294_967_295)
        );
        assert_eq!(value.get("z"), Some(&JsonValue::Null));
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(JsonValue::parse("{} x").is_err());
        assert!(JsonValue::parse("[1,").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }

    #[test]
    fn string_escaping_is_json_safe() {
        let mut w = JsonWriter::new();
        w.push_json_string("a\"b\\c\nd\u{1}");
        assert_eq!(w.raw(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
