//! The top-level verification session.

use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::sync::mpsc::Sender;
use std::time::{Duration, Instant};

use symcosim_exec::{explore_parallel, explore_parallel_fork, ExecConfig, ProgressEvent};
use symcosim_isa::{opcodes, Pattern};
use symcosim_iss::IssConfig;
use symcosim_microrv32::{CoreConfig, InjectedError};
use symcosim_symex::{
    ChainSeed, CoreReplayUnit, Domain, Engine, EngineConfig, EngineKind, ForkEngine, ForkExec,
    ForkTask, PathProbe, PathResult, PathStatus, ProofAuditStats, QueryCacheStats, SearchStrategy,
    SlotCoverage, SolverChainStats, SolverStats, StepResult, SymExec, TermId, TestVector,
};

use crate::certify::{self, BoundCause, CoverageData, PathCoverage};
use crate::cosim::{CoSim, CosimResult, StopReason};
use crate::report::{classify, Finding, VerifyReport};
use crate::voter::{Mismatch, SymbolicJudge};
use crate::SymbolicInstrMemory;

/// Constraint on generated instructions (the `klee_assume` hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InstrConstraint {
    /// Fully symbolic 32-bit words.
    #[default]
    None,
    /// Block the SYSTEM major opcode (CSR instructions, `ECALL`, `WFI`, …)
    /// — the paper's Table II configuration that filters the known CSR
    /// findings and restricts generation to RV32I.
    BlockSystem,
    /// Restrict generation to one major opcode (targeted exploration).
    OnlyOpcode(u32),
    /// Restrict generation to Zicsr instructions addressing the CSRs the
    /// VP implements *beyond* MicroRV32 (`mscratch`, `mcounteren`, the HPM
    /// ranges, the unprivileged counters, and the machine counters).
    /// Used with an instruction limit of 2 to surface the write-then-read
    /// mismatches of Table I without exploring the full squared space.
    ExtendedCsrOnly,
}

/// Configuration of a [`VerifySession`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// DUT behaviour switches.
    pub core_config: CoreConfig,
    /// Reference-model behaviour switches.
    pub iss_config: IssConfig,
    /// Optional seeded fault (Table II).
    pub inject: Option<InjectedError>,
    /// Instructions per path (the paper uses 1 and 2).
    pub instr_limit: u32,
    /// Core clock cycles per path (execution controller backstop).
    pub cycle_limit: u64,
    /// Width of the sliced symbolic register window (the paper argues 2
    /// suffices for RV32I: no instruction has more than two source
    /// registers).
    pub symbolic_regs: usize,
    /// Data memory size in 32-bit words (power of two).
    pub dmem_words: usize,
    /// Instruction generation constraint.
    pub constraint: InstrConstraint,
    /// Maximum number of explored paths.
    pub max_paths: usize,
    /// Maximum symbolic decisions per path before the path is culled
    /// (KLEE-style resource kill; counted as a partial path).
    pub max_decisions_per_path: usize,
    /// Frontier discipline.
    pub strategy: SearchStrategy,
    /// Emit a test vector per path (KLEE's test-case generation).
    pub emit_test_vectors: bool,
    /// Stop the exploration at the first mismatch (Table II mode) instead
    /// of cataloguing all findings (Table I mode).
    pub stop_at_first_mismatch: bool,
    /// Seed for randomised search strategies; parallel workers derive
    /// decorrelated per-worker seeds from it.
    pub seed: u64,
    /// Wall-clock budget for [`VerifySession::run_parallel`]; `None`
    /// means unbounded. Ignored by the sequential [`VerifySession::run`].
    pub deadline: Option<Duration>,
    /// Run the symbolic-IR well-formedness pass
    /// ([`SymExec::lint_path`]) over every explored path and surface the
    /// issues in [`VerifyReport::lint_issues`] (the CLI's `--lint` flag).
    pub lint_ir: bool,
    /// Path engine: [`EngineKind::Fork`] (default) snapshots the
    /// co-simulation state at fork points and resumes siblings from the
    /// clone; [`EngineKind::Reexec`] re-executes each path from the root
    /// replaying the recorded decision prefix. Both explore the same
    /// canonical path set and produce bit-identical reports — the CLI's
    /// `--engine` flag.
    pub engine: EngineKind,
    /// Project every path's condition onto the instruction fetch slots
    /// and carry the cubes — together with the projected legal decode
    /// domain — in [`VerifyReport::coverage`], ready for the coverage
    /// certifier ([`Certificate`](crate::Certificate)). Off by default:
    /// projection adds a small per-path cost.
    pub collect_coverage: bool,
    /// Route feasibility queries through the KLEE-style solver chain
    /// (independence slicing plus counterexample/model caching). Answers
    /// are identical either way — the CLI's `--no-solver-chain` flag
    /// disables it for benchmarking and debugging.
    pub solver_chain: bool,
    /// Restrict the *first* fetched instruction word to a decode-space
    /// cube, on top of [`SessionConfig::constraint`]. This is how a sliced
    /// verification job scopes one shard: a family of pairwise-disjoint
    /// slice cubes covering the domain partitions the run, and
    /// [`merge_slice_coverage`](crate::merge_slice_coverage) reassembles
    /// the per-slice coverage into the single-run certificate. Only the
    /// first fetch is sliced — later fetch slots must stay unsliced or the
    /// shard union would no longer cover the multi-instruction space.
    pub slice: Option<Pattern>,
    /// Log clausal proofs in every worker's solver and replay each answer
    /// through the independent checker (the CLI's `--audit` flag). The
    /// explored paths, report JSON and certificates are byte-identical
    /// audit on or off; auditing adds the certification counters in
    /// [`VerifyReport::proof_audit`] and the offline-verifiable conflict
    /// cones in [`VerifyReport::proof_audit_units`].
    pub audit: bool,
    /// Incremental solving: let the solver retain the propagation trail
    /// of the assumption prefix consecutive feasibility queries share.
    /// Answers, reports and certificates are byte-identical either way —
    /// the CLI's `--no-incremental` flag disables it for benchmarking.
    pub incremental: bool,
    /// Abstract-interpretation preflight in the solver chain: statically
    /// answer feasibility queries whose path-condition conjunction is
    /// forced, before any slicing or solver work. Answers, reports and
    /// certificates are byte-identical either way — the CLI's
    /// `--no-preflight` flag disables it for benchmarking. Ignored when
    /// [`SessionConfig::solver_chain`] is off.
    pub preflight: bool,
    /// Veritesting-style state merging in the fork engine: decode siblings
    /// whose post-instruction states are term-identical — and whose
    /// diverging fetch-slot decision bits the coverage projector proves
    /// disjoint from every demanded output bit, with an exact cube union —
    /// continue as one physical path and are expanded back into their
    /// individual path records at the end. Reports, certificates and
    /// findings are byte-identical merge on or off (the engine falls back
    /// to plain forking whenever the proof fails) — the CLI's `--no-merge`
    /// flag disables it for benchmarking and differential testing. Ignored
    /// (forced off) when [`SessionConfig::stop_at_first_mismatch`] is set:
    /// stop-early runs explore a scheduling-dependent subset, and merging
    /// changes the schedule. Only the fork engine merges;
    /// [`EngineKind::Reexec`] always explores one path at a time.
    pub merge: bool,
}

impl SessionConfig {
    /// Table I mode: shipped MicroRV32 vs. shipped VP, full RV32I+Zicsr
    /// instruction space, catalogue every finding.
    pub fn table1() -> SessionConfig {
        SessionConfig {
            core_config: CoreConfig::microrv32_v1(),
            iss_config: IssConfig::vp_v1(),
            inject: None,
            instr_limit: 1,
            cycle_limit: 64,
            symbolic_regs: 2,
            dmem_words: 16,
            constraint: InstrConstraint::None,
            max_paths: 100_000,
            max_decisions_per_path: 10_000,
            strategy: SearchStrategy::Dfs,
            emit_test_vectors: true,
            stop_at_first_mismatch: false,
            seed: 0x5eed_cafe,
            deadline: None,
            lint_ir: false,
            engine: EngineKind::Fork,
            collect_coverage: false,
            solver_chain: true,
            slice: None,
            audit: false,
            incremental: true,
            preflight: true,
            merge: true,
        }
    }

    /// Table II mode: corrected models (known findings filtered), RV32I
    /// only, stop at the first mismatch — the configuration used to time
    /// the detection of injected errors.
    pub fn rv32i_only() -> SessionConfig {
        SessionConfig {
            core_config: CoreConfig::fixed(),
            iss_config: IssConfig::fixed(),
            inject: None,
            instr_limit: 1,
            cycle_limit: 64,
            symbolic_regs: 2,
            dmem_words: 16,
            constraint: InstrConstraint::BlockSystem,
            max_paths: 100_000,
            max_decisions_per_path: 10_000,
            strategy: SearchStrategy::Dfs,
            emit_test_vectors: true,
            stop_at_first_mismatch: true,
            seed: 0x5eed_cafe,
            deadline: None,
            lint_ir: false,
            engine: EngineKind::Fork,
            collect_coverage: false,
            solver_chain: true,
            slice: None,
            audit: false,
            incremental: true,
            preflight: true,
            merge: true,
        }
    }
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig::table1()
    }
}

/// Error constructing a session from an invalid configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionError {
    message: String,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for SessionError {}

/// Per-path outcome collected by the session.
#[derive(Debug, Clone)]
struct PathRun {
    mismatch: Option<Mismatch>,
    stop: StopReason,
    instructions: u64,
    cycles: u64,
    instr_word: Option<u32>,
    witness: Option<TestVector>,
    lint_issues: Vec<String>,
    coverage: Vec<SlotCoverage>,
}

/// The end-to-end symbolic verification flow.
///
/// Owns a symbolic [`Engine`] and explores the co-simulation over the
/// symbolic instruction/register space; see the
/// [crate documentation](crate) for an example.
#[derive(Debug)]
pub struct VerifySession {
    config: SessionConfig,
}

impl VerifySession {
    /// Validates the configuration and creates a session.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError`] if the data memory size is not a power of
    /// two, the symbolic register window exceeds 31, or the limits are
    /// zero.
    pub fn new(config: SessionConfig) -> Result<VerifySession, SessionError> {
        if !config.dmem_words.is_power_of_two() {
            return Err(SessionError {
                message: format!(
                    "dmem_words must be a power of two, got {}",
                    config.dmem_words
                ),
            });
        }
        if config.symbolic_regs > 31 {
            return Err(SessionError {
                message: format!(
                    "symbolic_regs must be at most 31, got {}",
                    config.symbolic_regs
                ),
            });
        }
        if config.instr_limit == 0
            || config.cycle_limit == 0
            || config.max_paths == 0
            || config.max_decisions_per_path == 0
        {
            return Err(SessionError {
                message:
                    "instr_limit, cycle_limit, max_paths and max_decisions_per_path must be positive"
                        .to_string(),
            });
        }
        Ok(VerifySession { config })
    }

    /// The active configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Runs the symbolic exploration and aggregates the report.
    ///
    /// The path engine is selected by [`SessionConfig::engine`]; both
    /// engines drain the same canonical path set and yield bit-identical
    /// reports (enforced by the `engine_equivalence` integration tests).
    pub fn run(self) -> VerifyReport {
        self.run_seeded(None).0
    }

    /// [`VerifySession::run`] with solver-chain cache handoff: imports
    /// `warm` (a seed exported by an *identical* earlier run — same
    /// config, constraint, slice, engine and seed, see
    /// [`ChainSeed`]) before exploring, and exports this run's caches
    /// afterwards. The report is bit-identical warm or cold; only the
    /// solver work changes, which the report's chain statistics expose.
    pub fn run_seeded(self, warm: Option<&ChainSeed>) -> (VerifyReport, ChainSeed) {
        let start = Instant::now();
        let config = self.config;
        let stop_early = config.stop_at_first_mismatch;
        let domain = config
            .collect_coverage
            .then(|| project_domain(config.constraint, config.slice));
        match config.engine {
            EngineKind::Reexec => {
                let mut engine = Engine::new(engine_config(&config));
                if let Some(seed) = warm {
                    engine.import_chain_seed(seed);
                }
                let closure_config = config.clone();
                let outcome = engine.explore_until(
                    move |exec| run_one_path(exec, &closure_config),
                    move |path| stop_early && path.value.mismatch.is_some(),
                );
                let harvest = engine.export_chain_seed();
                let solver = engine.backend().stats();
                let cache = engine.backend().query_cache_stats();
                let chain = engine.backend().solver_chain_stats();
                let audit = engine.backend().proof_audit_stats();
                let audit_failure = engine.backend().proof_audit_failure().map(String::from);
                let audit_units = engine.take_audit_units();
                let report = merge_report(
                    outcome.paths,
                    outcome.frontier_exhausted,
                    outcome.merged_paths,
                    outcome.paths_dropped,
                    start,
                    solver,
                    cache,
                    chain,
                    audit,
                    audit_failure,
                    audit_units,
                    domain,
                );
                (report, harvest)
            }
            EngineKind::Fork => {
                let mut engine = ForkEngine::new(engine_config(&config));
                if let Some(seed) = warm {
                    engine.import_chain_seed(seed);
                }
                let task = SessionTask {
                    config: config.clone(),
                };
                let outcome = engine.explore_until(&task, move |path| {
                    stop_early && path.value.mismatch.is_some()
                });
                let harvest = engine.export_chain_seed();
                let solver = engine.backend().stats();
                let cache = engine.backend().query_cache_stats();
                let chain = engine.backend().solver_chain_stats();
                let audit = engine.backend().proof_audit_stats();
                let audit_failure = engine.backend().proof_audit_failure().map(String::from);
                let audit_units = engine.take_audit_units();
                let report = merge_report(
                    outcome.paths,
                    outcome.frontier_exhausted,
                    outcome.merged_paths,
                    outcome.paths_dropped,
                    start,
                    solver,
                    cache,
                    chain,
                    audit,
                    audit_failure,
                    audit_units,
                    domain,
                );
                (report, harvest)
            }
        }
    }

    /// Runs the symbolic exploration on `jobs` worker threads (each with
    /// its own engine and solver) and aggregates the report.
    ///
    /// For a frontier-drained configuration the report is identical to the
    /// sequential [`VerifySession::run`] whatever `jobs` is: the engine
    /// extracts witnesses from history-independent solvers, and both entry
    /// points merge paths in canonical decision order. Runs cut short —
    /// path budget, [`SessionConfig::deadline`], or
    /// [`SessionConfig::stop_at_first_mismatch`] — explore a
    /// scheduling-dependent subset and are only reproducible per path.
    pub fn run_parallel(self, jobs: usize) -> VerifyReport {
        self.run_parallel_with_progress(jobs, None)
    }

    /// [`VerifySession::run_parallel`] with structured progress events
    /// emitted on `progress` (a dropped receiver is tolerated).
    pub fn run_parallel_with_progress(
        self,
        jobs: usize,
        progress: Option<Sender<ProgressEvent>>,
    ) -> VerifyReport {
        let start = Instant::now();
        let config = self.config;
        let exec_config = ExecConfig {
            jobs,
            engine: engine_config(&config),
            deadline: config.deadline,
        };
        let stop_early = config.stop_at_first_mismatch;
        let domain = config
            .collect_coverage
            .then(|| project_domain(config.constraint, config.slice));
        match config.engine {
            EngineKind::Reexec => {
                let closure_config = config.clone();
                let outcome = explore_parallel(
                    &exec_config,
                    move |exec: &mut SymExec<'_>| run_one_path(exec, &closure_config),
                    move |path: &PathResult<PathRun>| stop_early && path.value.mismatch.is_some(),
                    progress,
                );
                let (solver, cache, chain, audit, audit_failure, audit_units) =
                    sum_worker_stats(&outcome.workers);
                merge_report(
                    outcome.paths,
                    outcome.frontier_exhausted,
                    outcome.merged_paths,
                    outcome.paths_dropped,
                    start,
                    solver,
                    cache,
                    chain,
                    audit,
                    audit_failure,
                    audit_units,
                    domain,
                )
            }
            EngineKind::Fork => {
                let task = SessionTask {
                    config: config.clone(),
                };
                let outcome = explore_parallel_fork(
                    &exec_config,
                    &task,
                    move |path: &PathResult<PathRun>| stop_early && path.value.mismatch.is_some(),
                    progress,
                );
                let (solver, cache, chain, audit, audit_failure, audit_units) =
                    sum_worker_stats(&outcome.workers);
                merge_report(
                    outcome.paths,
                    outcome.frontier_exhausted,
                    outcome.merged_paths,
                    outcome.paths_dropped,
                    start,
                    solver,
                    cache,
                    chain,
                    audit,
                    audit_failure,
                    audit_units,
                    domain,
                )
            }
        }
    }
}

/// Sums the per-worker solver, query-cache, solver-chain and proof-audit
/// counters for the report, and gathers the audited conflict cones.
#[allow(clippy::type_complexity)]
fn sum_worker_stats(
    workers: &[symcosim_exec::WorkerReport],
) -> (
    SolverStats,
    QueryCacheStats,
    SolverChainStats,
    ProofAuditStats,
    Option<String>,
    Vec<CoreReplayUnit>,
) {
    let mut solver = SolverStats::default();
    let mut cache = QueryCacheStats::default();
    let mut chain = SolverChainStats::default();
    let mut audit = ProofAuditStats::default();
    let mut audit_failure: Option<String> = None;
    let mut audit_units: Vec<CoreReplayUnit> = Vec::new();
    for worker in workers {
        solver.solves += worker.stats.solves;
        solver.decisions += worker.stats.decisions;
        solver.propagations += worker.stats.propagations;
        solver.conflicts += worker.stats.conflicts;
        solver.restarts += worker.stats.restarts;
        solver.learnt_clauses += worker.stats.learnt_clauses;
        solver.db_reductions += worker.stats.db_reductions;
        solver.learned_kept += worker.stats.learned_kept;
        cache = cache.merge(worker.cache);
        chain = chain.merge(worker.chain);
        audit = audit.merge(worker.audit);
        if audit_failure.is_none() {
            audit_failure.clone_from(&worker.audit_failure);
        }
        audit_units.extend(worker.audit_units.iter().cloned());
    }
    (solver, cache, chain, audit, audit_failure, audit_units)
}

/// The engine configuration a session config induces.
fn engine_config(config: &SessionConfig) -> EngineConfig {
    EngineConfig {
        strategy: config.strategy,
        max_paths: config.max_paths,
        max_decisions_per_path: config.max_decisions_per_path,
        emit_test_vectors: config.emit_test_vectors,
        seed: config.seed,
        max_resident_snapshots: EngineConfig::DEFAULT_MAX_RESIDENT_SNAPSHOTS,
        solver_chain: config.solver_chain,
        audit: config.audit,
        incremental: config.incremental,
        preflight: config.preflight,
        // Stop-early runs explore a scheduling-dependent subset; merging
        // changes which paths are in flight when the stop lands, so it is
        // forced off to keep Table II timing runs comparable.
        merge: config.merge && !config.stop_at_first_mismatch,
    }
}

/// Aggregates explored paths into the session report.
///
/// Shared by the sequential and parallel entry points. Paths are first put
/// into canonical order (lexicographic on decision vectors — explored
/// vectors are pairwise prefix-free, so the order is total and independent
/// of exploration scheduling); findings then deduplicate to one Table I
/// row per (subject, description) through a hash set.
#[allow(clippy::too_many_arguments)]
fn merge_report(
    mut paths: Vec<PathResult<PathRun>>,
    truncated: bool,
    merged_paths: usize,
    paths_dropped: usize,
    start: Instant,
    solver_stats: SolverStats,
    query_cache: QueryCacheStats,
    chain_stats: SolverChainStats,
    proof_audit: ProofAuditStats,
    proof_audit_failure: Option<String>,
    proof_audit_units: Vec<CoreReplayUnit>,
    domain: Option<(Vec<Pattern>, bool)>,
) -> VerifyReport {
    paths.sort_by(|a, b| a.decisions.cmp(&b.decisions));

    // Coverage rides through the same deterministic merge as the
    // findings: path records are already in canonical decision order, so
    // the certifier input — and hence the certificate — is bit-identical
    // across engines and worker counts.
    let coverage = domain.map(|(domain, domain_exact)| CoverageData {
        slot_prefix: certify::SLOT_PREFIX.to_string(),
        domain,
        domain_exact,
        truncated,
        paths: paths
            .iter()
            .map(|path| {
                let (certified, bound) = classify_path_coverage(path);
                PathCoverage {
                    decisions: path.decisions.clone(),
                    certified,
                    bound,
                    slots: path.value.coverage.clone(),
                }
            })
            .collect(),
    });

    let mut findings: Vec<Finding> = Vec::new();
    let mut seen: HashSet<(String, String)> = HashSet::new();
    let mut paths_complete = 0usize;
    let mut paths_partial = 0usize;
    let mut instructions = 0u64;
    let mut cycles = 0u64;
    let mut test_vectors = 0usize;
    let mut lint_issues: Vec<String> = Vec::new();
    let mut lint_seen: HashSet<String> = HashSet::new();

    for path in &paths {
        let run = &path.value;
        instructions += run.instructions;
        cycles += run.cycles;
        if path.test_vector.is_some() || run.witness.is_some() {
            test_vectors += 1;
        }
        match run.stop {
            StopReason::InstrLimit => paths_complete += 1,
            _ => paths_partial += 1,
        }
        if let Some(mismatch) = &run.mismatch {
            let mut finding = classify(run.instr_word, mismatch);
            finding.witness = run.witness.clone();
            if seen.insert(finding.dedup_key()) {
                findings.push(finding);
            }
        }
        for issue in &run.lint_issues {
            if lint_seen.insert(issue.clone()) {
                lint_issues.push(issue.clone());
            }
        }
    }

    VerifyReport {
        findings,
        paths_complete,
        paths_partial,
        instructions_executed: instructions,
        cycles,
        test_vectors,
        duration: start.elapsed(),
        truncated,
        merged_paths,
        paths_dropped,
        lint_issues,
        solver_stats,
        query_cache,
        chain_stats,
        proof_audit,
        proof_audit_failure,
        proof_audit_units,
        coverage,
    }
}

/// Classifies a path for the coverage certifier: certified paths fully
/// determined their behaviour class (ran to the instruction limit, or to
/// a voter mismatch — the mismatch *is* the class); feasible paths cut
/// short map to the bound that stopped them; infeasible paths cover no
/// words and are excluded.
fn classify_path_coverage(path: &PathResult<PathRun>) -> (bool, Option<BoundCause>) {
    match path.status {
        PathStatus::Complete => match path.value.stop {
            StopReason::InstrLimit | StopReason::Mismatch => (true, None),
            StopReason::CycleLimit => (false, Some(BoundCause::CycleLimit)),
            StopReason::PathDead => (false, None),
        },
        PathStatus::DecisionLimit => (false, Some(BoundCause::DecisionLimit)),
        PathStatus::Infeasible => (false, None),
    }
}

/// Projects an instruction-generation constraint (optionally intersected
/// with a first-fetch slice cube) onto a fresh fetch slot: the *legal
/// decode domain* the certifier checks coverage against. Runs the real
/// [`build_imem`] constraint closure on a scratch engine — the domain is
/// derived from the same code path every explored path went through,
/// never a hard-coded table. The certificate merge entry point
/// ([`merge_slice_coverage`](crate::merge_slice_coverage)) recomputes the
/// *full* domain through this same function, which is what makes merged
/// certificates byte-identical to single-process ones.
pub fn project_domain(constraint: InstrConstraint, slice: Option<Pattern>) -> (Vec<Pattern>, bool) {
    let mut engine = Engine::new(EngineConfig::default());
    let outcome = engine.run_prefix(Vec::new(), |exec: &mut SymExec<'_>| {
        let mut imem = build_imem(constraint, slice);
        let addr = exec.const_word(0);
        let _ = imem.fetch(exec, addr);
        exec.project_coverage(certify::SLOT_PREFIX)
    });
    match outcome.result.value.into_iter().next() {
        Some(slot) => (slot.cubes, slot.exact),
        // An unconstrained generator mentions the slot in no assumption:
        // every word is legal.
        None => (vec![Pattern::universe()], true),
    }
}

/// Builds the co-simulation one path runs on.
fn build_cosim<D: Domain>(dom: &mut D, config: &SessionConfig) -> CoSim<D> {
    let imem = build_imem(config.constraint, config.slice);
    CoSim::new(
        dom,
        config.core_config.clone(),
        config.iss_config.clone(),
        config.inject,
        imem,
        config.symbolic_regs,
        config.dmem_words,
        config.instr_limit,
        config.cycle_limit,
    )
}

/// Turns a finished co-simulation into the per-path record — shared by the
/// re-execution closure and the fork task.
fn finish_run<D: PathProbe>(
    exec: &mut D,
    config: &SessionConfig,
    cosim: &CoSim<D>,
    result: &CosimResult,
) -> PathRun {
    let (witness, instr_word) = if result.mismatch.is_some() {
        // Stable extraction (fresh solver per query): the witness depends
        // only on the path condition, so reports agree between sequential
        // and parallel exploration, and between the two path engines.
        let witness = exec.stable_witness_vector(&[]);
        let instr_word = cosim
            .last_instruction()
            .and_then(|term| exec.stable_concrete_witness(term, &[]))
            .map(|v| v as u32);
        (witness, instr_word)
    } else {
        (None, None)
    };
    let lint_issues = if config.lint_ir {
        exec.lint_path().iter().map(ToString::to_string).collect()
    } else {
        Vec::new()
    };
    let coverage = if config.collect_coverage {
        exec.project_coverage(certify::SLOT_PREFIX)
    } else {
        Vec::new()
    };
    PathRun {
        mismatch: result.mismatch.clone(),
        stop: result.stop,
        instructions: result.instructions,
        cycles: result.cycles,
        instr_word,
        witness,
        lint_issues,
        coverage,
    }
}

/// Runs one co-simulation path inside the re-execution engine.
fn run_one_path(exec: &mut SymExec<'_>, config: &SessionConfig) -> PathRun {
    let mut cosim = build_cosim(exec, config);
    let result = cosim.run(exec, &mut SymbolicJudge);
    finish_run(exec, config, &cosim, &result)
}

/// The verification flow as a [`ForkTask`]: the fork engine snapshots the
/// co-simulation between [`CoSim::step_instr`] boundaries instead of
/// re-executing the prefix.
struct SessionTask {
    config: SessionConfig,
}

/// Snapshot unit: everything one path mutates outside the executor.
#[derive(Clone)]
struct SessionState {
    cosim: CoSim<ForkExec>,
    /// The co-simulation outcome, stashed when the run finishes so
    /// [`ForkTask::expand_arm`] can rebuild the per-arm [`PathRun`] from a
    /// merged sibling's own constraint ledger. Merged arms reached `Done`
    /// in lockstep with byte-identical domain operations, so the outcome
    /// is shared; only the witness/coverage extraction in [`finish_run`]
    /// is per-arm.
    finished: Option<CosimResult>,
}

impl ForkTask for SessionTask {
    type State = SessionState;
    type Out = PathRun;

    fn start(&self, exec: &mut ForkExec) -> SessionState {
        SessionState {
            cosim: build_cosim(exec, &self.config),
            finished: None,
        }
    }

    fn step(&self, state: &mut SessionState, exec: &mut ForkExec) -> StepResult<PathRun> {
        match state.cosim.step_instr(exec, &mut SymbolicJudge) {
            None => StepResult::Continue,
            Some(result) => {
                let run = finish_run(exec, &self.config, &state.cosim, &result);
                state.finished = Some(result);
                StepResult::Done(run)
            }
        }
    }

    fn merge_capable(&self) -> bool {
        true
    }

    fn states_equal(&self, a: &SessionState, b: &SessionState) -> bool {
        a.finished.is_none() && b.finished.is_none() && a.cosim.merge_eq(&b.cosim)
    }

    fn merge_outputs(&self, state: &SessionState) -> Vec<TermId> {
        // The terms a finished path observes: the post-run PCs and
        // architectural register files the voter compares (the same output
        // frontier the merge-opportunity lint cones on), plus both data
        // memories (compared at end of run). The merge gate refuses to
        // merge siblings whose diverging fetch bits any of these demands.
        let cosim = &state.cosim;
        let mut outputs = vec![cosim.core.pc(), cosim.iss.pc()];
        outputs.extend_from_slice(&cosim.core.registers()[1..]);
        outputs.extend_from_slice(&cosim.iss.registers()[1..]);
        outputs.extend_from_slice(cosim.core_dmem.words());
        outputs.extend_from_slice(cosim.iss_dmem.words());
        outputs
    }

    fn expand_arm(&self, state: &SessionState, exec: &mut ForkExec) -> Option<PathRun> {
        let result = state.finished.as_ref()?;
        Some(finish_run(exec, &self.config, &state.cosim, result))
    }
}

/// Builds the instruction memory for the configured constraint, with the
/// optional job-slice cube scoped to the first fetched instruction.
///
/// The slice is encoded bit by bit (`field(instr, i, i) == v`): single-bit
/// equalities are trivially enumerable, so the coverage projector keeps
/// slot covers exact instead of widening.
fn build_imem<D: Domain>(
    constraint: InstrConstraint,
    slice: Option<Pattern>,
) -> SymbolicInstrMemory<D> {
    let imem = build_constrained_imem(constraint);
    match slice {
        None => imem,
        Some(cube) => imem.constrain_first(move |dom: &mut D, instr| {
            for bit_index in 0..32u32 {
                let bit = 1u32 << bit_index;
                if cube.mask & bit == 0 {
                    continue;
                }
                let lane = dom.field(instr, bit_index, bit_index);
                let want = dom.eq_const(lane, u32::from(cube.value & bit != 0));
                dom.assume(want);
            }
        }),
    }
}

/// [`build_imem`] without the slice hook.
fn build_constrained_imem<D: Domain>(constraint: InstrConstraint) -> SymbolicInstrMemory<D> {
    match constraint {
        InstrConstraint::None => SymbolicInstrMemory::new(),
        InstrConstraint::BlockSystem => {
            SymbolicInstrMemory::with_constraint(|dom: &mut D, instr| {
                let opcode = dom.field(instr, 6, 0);
                let system = dom.const_word(opcodes::SYSTEM);
                let not_system = dom.ne_w(opcode, system);
                dom.assume(not_system);
            })
        }
        InstrConstraint::OnlyOpcode(target) => {
            SymbolicInstrMemory::with_constraint(move |dom: &mut D, instr| {
                let opcode = dom.field(instr, 6, 0);
                let is_target = dom.eq_const(opcode, target & 0x7f);
                dom.assume(is_target);
            })
        }
        InstrConstraint::ExtendedCsrOnly => {
            SymbolicInstrMemory::with_constraint(|dom: &mut D, instr| {
                let opcode = dom.field(instr, 6, 0);
                let is_system = dom.eq_const(opcode, opcodes::SYSTEM);
                // Zicsr flavours only: funct3 ∉ {0b000, 0b100}.
                let funct3 = dom.field(instr, 14, 12);
                let zero = dom.const_word(0);
                let four = dom.const_word(4);
                let not_priv = dom.ne_w(funct3, zero);
                let not_reserved = dom.ne_w(funct3, four);
                let addr = dom.field(instr, 31, 20);
                let mut in_set = dom.const_bool(false);
                for csr in [0x340u32, 0x306, 0xb00, 0xb02, 0xb80, 0xb82] {
                    let hit = dom.eq_const(addr, csr);
                    in_set = dom.or_b(in_set, hit);
                }
                // Representative slices of the 29-register HPM families
                // keep the targeted sweep small; classification groups
                // them back into the full-family rows.
                for (lo, hi) in [
                    (0xb03u32, 0xb06),
                    (0xb83, 0xb86),
                    (0x323, 0x326),
                    (0xc00, 0xc02),
                    (0xc80, 0xc82),
                ] {
                    let lo_w = dom.const_word(lo);
                    let hi_w = dom.const_word(hi);
                    let ge = dom.uge(addr, lo_w);
                    let le = {
                        let gt = dom.ult(hi_w, addr);
                        dom.not_b(gt)
                    };
                    let within = dom.and_b(ge, le);
                    in_set = dom.or_b(in_set, within);
                }
                let zicsr = dom.and_b(not_priv, not_reserved);
                let shaped = dom.and_b(is_system, zicsr);
                let constrained = dom.and_b(shaped, in_set);
                dom.assume(constrained);
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_configs() {
        let mut config = SessionConfig::rv32i_only();
        config.dmem_words = 12;
        assert!(VerifySession::new(config).is_err());

        let mut config = SessionConfig::rv32i_only();
        config.symbolic_regs = 32;
        assert!(VerifySession::new(config).is_err());

        let mut config = SessionConfig::rv32i_only();
        config.instr_limit = 0;
        assert!(VerifySession::new(config).is_err());

        assert!(VerifySession::new(SessionConfig::rv32i_only()).is_ok());
    }

    #[test]
    fn presets_differ_in_the_documented_ways() {
        let t1 = SessionConfig::table1();
        let t2 = SessionConfig::rv32i_only();
        assert_eq!(t1.constraint, InstrConstraint::None);
        assert_eq!(t2.constraint, InstrConstraint::BlockSystem);
        assert!(!t1.stop_at_first_mismatch);
        assert!(t2.stop_at_first_mismatch);
        assert!(t1.inject.is_none() && t2.inject.is_none());
    }
}
