//! The offline proof-audit artifact (`symcosim-audit/1`).
//!
//! `symcosim-cli verify --audit --audit-json PATH` dumps the in-process
//! auditor's counters and every retained UNSAT [`CoreReplayUnit`] — a
//! self-contained conflict cone in DIMACS integers — as one document.
//! `symcosim-lint --audit PATH` re-verifies each unit by naive unit
//! propagation alone (no solver, no engine), mirroring the `--coverage`
//! offline re-certification path: the CI gate can check after the fact
//! that every cached UNSAT answer really is refuted by its cone.

use symcosim_symex::{CoreReplayUnit, ProofAuditStats};

use crate::json::{self, JsonValue, JsonWriter};

/// Schema identifier of the audit artifact.
pub const AUDIT_SCHEMA: &str = "symcosim-audit/1";

/// The dumped artifact: audit counters plus the retained replay units.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditDump {
    /// The in-process auditor's counters at the end of the run.
    pub stats: ProofAuditStats,
    /// Cores replayed past the in-memory retention cap — audited
    /// in-process but absent from [`AuditDump::units`].
    pub units_dropped: u64,
    /// Self-contained UNSAT conflict cones, offline-verifiable via
    /// [`CoreReplayUnit::verify`].
    pub units: Vec<CoreReplayUnit>,
}

impl AuditDump {
    /// Packages a finished run's audit state. The dropped count is the
    /// difference between cores replayed and units retained: every
    /// successful replay either kept its unit or fell past the cap.
    #[must_use]
    pub fn new(stats: ProofAuditStats, units: Vec<CoreReplayUnit>) -> AuditDump {
        AuditDump {
            stats,
            units_dropped: stats.cores.saturating_sub(units.len() as u64),
            units,
        }
    }

    /// Serialises the artifact as the `symcosim-audit/1` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        json::header(&mut w, AUDIT_SCHEMA);
        w.number_field("steps", self.stats.steps);
        w.number_field("models", self.stats.models);
        w.number_field("cores", self.stats.cores);
        w.number_field("bytes", self.stats.bytes);
        w.number_field("failures", self.stats.failures);
        w.number_field("units_dropped", self.units_dropped);
        w.array_field("units", self.units.len(), |w, i| {
            let unit = &self.units[i];
            w.open_object();
            w.array_field("core", unit.core.len(), |w, k| {
                w.int_value(unit.core[k]);
            });
            w.array_field("clauses", unit.clauses.len(), |w, k| {
                let clause = &unit.clauses[k];
                w.array_value(clause.len(), |w, pos| w.int_value(clause[pos]));
            });
            w.close_object();
        });
        w.close_object();
        w.finish()
    }

    /// Parses a dumped `symcosim-audit/1` document.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a wrong `schema` tag or a
    /// missing/ill-typed field.
    pub fn from_json(text: &str) -> Result<AuditDump, String> {
        let value = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        match value.get("schema").and_then(JsonValue::as_str) {
            Some(schema) if schema == AUDIT_SCHEMA => {}
            Some(schema) => return Err(format!("schema is {schema:?}, expected {AUDIT_SCHEMA:?}")),
            None => return Err(format!("missing schema tag (expected {AUDIT_SCHEMA:?})")),
        }
        let field = |name: &str| {
            value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{name} missing or not a number"))
        };
        let stats = ProofAuditStats {
            steps: field("steps")?,
            models: field("models")?,
            cores: field("cores")?,
            bytes: field("bytes")?,
            failures: field("failures")?,
        };
        let units_dropped = field("units_dropped")?;
        let mut units = Vec::new();
        for (index, entry) in value
            .get("units")
            .and_then(JsonValue::as_array)
            .ok_or("units missing or not an array")?
            .iter()
            .enumerate()
        {
            units.push(parse_unit(entry).map_err(|e| format!("unit {index}: {e}"))?);
        }
        Ok(AuditDump {
            stats,
            units_dropped,
            units,
        })
    }

    /// Re-verifies every retained unit offline. Returns the list of
    /// `(unit index, reason)` rejections — empty means every retained
    /// UNSAT answer is independently refuted by its conflict cone.
    #[must_use]
    pub fn verify_units(&self) -> Vec<(usize, String)> {
        self.units
            .iter()
            .enumerate()
            .filter_map(|(index, unit)| unit.verify().err().map(|reason| (index, reason)))
            .collect()
    }
}

fn parse_unit(value: &JsonValue) -> Result<CoreReplayUnit, String> {
    let lits = |value: &JsonValue, what: &str| -> Result<Vec<i64>, String> {
        value
            .as_array()
            .ok_or_else(|| format!("{what} is not an array"))?
            .iter()
            .map(|lit| {
                lit.as_i64()
                    .filter(|&l| l != 0)
                    .ok_or_else(|| format!("{what} holds a non-literal entry"))
            })
            .collect()
    };
    let core = lits(value.get("core").ok_or("core missing")?, "core")?;
    let mut clauses = Vec::new();
    for (index, entry) in value
        .get("clauses")
        .and_then(JsonValue::as_array)
        .ok_or("clauses missing or not an array")?
        .iter()
        .enumerate()
    {
        clauses.push(lits(entry, &format!("clause {index}"))?);
    }
    Ok(CoreReplayUnit { core, clauses })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditDump {
        AuditDump::new(
            ProofAuditStats {
                steps: 7,
                models: 3,
                cores: 2,
                bytes: 451,
                failures: 0,
            },
            vec![
                CoreReplayUnit {
                    core: vec![1, -2],
                    clauses: vec![vec![-1, 2], vec![2, 3], vec![-3]],
                },
                CoreReplayUnit {
                    core: vec![],
                    clauses: vec![vec![4], vec![-4]],
                },
            ],
        )
    }

    #[test]
    fn the_artifact_round_trips_through_json() {
        let dump = sample();
        let text = dump.to_json();
        let parsed = AuditDump::from_json(&text).expect("own output parses");
        assert_eq!(parsed, dump);
    }

    #[test]
    fn the_dropped_count_is_cores_minus_retained() {
        let stats = ProofAuditStats {
            cores: 5,
            ..ProofAuditStats::default()
        };
        let dump = AuditDump::new(stats, vec![CoreReplayUnit::default()]);
        assert_eq!(dump.units_dropped, 4);
    }

    #[test]
    fn a_wrong_schema_is_rejected() {
        let text = sample().to_json().replace(AUDIT_SCHEMA, "symcosim-cert/1");
        let err = AuditDump::from_json(&text).expect_err("wrong schema");
        assert!(err.contains(AUDIT_SCHEMA), "{err}");
    }

    #[test]
    fn a_zero_literal_is_rejected_not_misread() {
        let text = sample().to_json().replacen("-2", "0", 1);
        let err = AuditDump::from_json(&text).expect_err("zero literal");
        assert!(err.contains("non-literal"), "{err}");
    }

    #[test]
    fn verify_units_reports_a_tampered_cone_by_index() {
        let mut dump = sample();
        assert!(dump.verify_units().is_empty());
        // Drop the clause that closes the second unit's conflict.
        dump.units[1].clauses.pop();
        let rejected = dump.verify_units();
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].0, 1);
    }
}
