//! Exploration-coverage certifier: proves, with cube algebra and no
//! enumeration, that a finished run's paths partition the legal decode
//! space.
//!
//! The input is [`CoverageData`] — per-path ternary-cube projections of
//! the path conditions onto the symbolic instruction fetch slots
//! ([`SlotCoverage`]), plus the projected legal decode domain. From it,
//! [`Certificate::certify`] establishes three theorems per fetch slot:
//!
//! 1. **Completeness** — the union of the certified paths' covers
//!    contains the domain; any uncovered word is reported as a concrete
//!    hex counterexample.
//! 2. **Disjointness** — certified paths claim pairwise-disjoint words.
//!    Checked along the decision prefix tree: where two sibling subtrees
//!    diverge on an instruction-exact decision, their aggregated covers
//!    must not intersect.
//! 3. **Attribution** — every domain word not covered by a certified path
//!    is covered by a path stopped at an explicit bound (cycle or
//!    decision limit) or accounted to the run-level truncation flag;
//!    nothing is silently lost.
//!
//! A *certified* path is one that ran to its instruction limit (or to a
//!   voter mismatch — the mismatch *is* the path's behaviour class) under
//!   feasible constraints; infeasible paths cover no words and are
//!   excluded.
//!
//! All three theorems are cube-set computations over
//! [`PatternSet`] — the certifier never enumerates the 2^32 word space.
//! Because projection only ever widens (never shrinks) a path's cover,
//! a `complete` verdict is sound: uncovered counterexamples are real
//! gaps, and inexact covers are flagged per slot via
//! [`SlotCertificate::exact`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use symcosim_isa::{Pattern, PatternSet};
use symcosim_symex::{ProofAuditStats, SlotCoverage};

use crate::json::{self, JsonValue, JsonWriter};

/// Schema identifier of the certificate document.
pub const CERT_SCHEMA: &str = "symcosim-cert/1";

/// Name prefix of instruction fetch-slot symbols (see
/// [`SymbolicInstrMemory`](crate::SymbolicInstrMemory)).
pub const SLOT_PREFIX: &str = "imem_";

/// Cap on concrete witness words (counterexamples, overlap samples)
/// reported per slot.
const WITNESS_LIMIT: usize = 8;

/// Why a non-certified (but feasible) path stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundCause {
    /// The per-path core clock-cycle limit was hit.
    CycleLimit,
    /// The per-path symbolic decision limit was hit (KLEE-style resource
    /// kill).
    DecisionLimit,
}

impl BoundCause {
    /// Stable JSON spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BoundCause::CycleLimit => "cycle_limit",
            BoundCause::DecisionLimit => "decision_limit",
        }
    }

    /// Inverse of [`BoundCause::as_str`].
    #[must_use]
    pub fn parse(text: &str) -> Option<BoundCause> {
        match text {
            "cycle_limit" => Some(BoundCause::CycleLimit),
            "decision_limit" => Some(BoundCause::DecisionLimit),
            _ => None,
        }
    }
}

impl fmt::Display for BoundCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One explored path's contribution to the coverage argument.
#[derive(Debug, Clone, PartialEq)]
pub struct PathCoverage {
    /// Branch directions taken at symbolic decision points (the path's
    /// canonical identity).
    pub decisions: Vec<bool>,
    /// Whether the path ran to its instruction limit (or to a voter
    /// mismatch) under feasible constraints — only such paths certify
    /// decode-space coverage.
    pub certified: bool,
    /// For feasible-but-cut-short paths, the bound that stopped them.
    /// `None` on certified paths and on excluded (infeasible) paths.
    pub bound: Option<BoundCause>,
    /// Projection of the path condition onto each fetch slot it mentions.
    /// A slot not listed is unconstrained by the path (full cover).
    pub slots: Vec<SlotCoverage>,
}

impl PathCoverage {
    /// Whether the path is excluded from the argument entirely
    /// (infeasible: it covers no words).
    #[must_use]
    pub fn excluded(&self) -> bool {
        !self.certified && self.bound.is_none()
    }

    /// The path's cover for `slot` as a disjoint cube set; universe if the
    /// path does not constrain the slot.
    fn slot_set(&self, slot: &str) -> PatternSet {
        match self.slots.iter().find(|s| s.slot == slot) {
            None => PatternSet::universe(),
            Some(coverage) => {
                let mut set = PatternSet::empty();
                for cube in &coverage.cubes {
                    set.insert(cube);
                }
                set
            }
        }
    }
}

/// Everything the certifier needs from a finished run — carried in
/// [`VerifyReport::coverage`](crate::VerifyReport) and round-tripped
/// through the `symcosim-report/1` JSON dump.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageData {
    /// Fetch-slot symbol prefix the projections were taken against.
    pub slot_prefix: String,
    /// The legal decode domain as disjoint cubes — the projection of the
    /// session's instruction-generation constraint, *not* a hard-coded
    /// table.
    pub domain: Vec<Pattern>,
    /// Whether the domain projection is exact (no widening).
    pub domain_exact: bool,
    /// Whether the exploration stopped early with work remaining (path
    /// budget, deadline, or stop-at-first-mismatch).
    pub truncated: bool,
    /// Per-path records, in canonical (lexicographic decision) order.
    pub paths: Vec<PathCoverage>,
}

impl CoverageData {
    /// Writes the coverage fields into an already-open JSON object.
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.string_field("slot_prefix", &self.slot_prefix);
        w.bool_field("domain_exact", self.domain_exact);
        w.bool_field("truncated", self.truncated);
        write_cubes(w, "domain", &self.domain);
        w.array_field("paths", self.paths.len(), |w, i| {
            let path = &self.paths[i];
            w.open_object();
            w.string_field("decisions", &bits_to_string(&path.decisions));
            w.bool_field("certified", path.certified);
            match path.bound {
                Some(cause) => w.string_field("bound", cause.as_str()),
                None => w.null_field("bound"),
            }
            w.array_field("slots", path.slots.len(), |w, j| {
                let slot = &path.slots[j];
                w.open_object();
                w.string_field("slot", &slot.slot);
                w.bool_field("exact", slot.exact);
                w.array_field("instr_decisions", slot.instr_decisions.len(), |w, k| {
                    w.number_value(u64::from(slot.instr_decisions[k]));
                });
                write_cubes(w, "cubes", &slot.cubes);
                w.close_object();
            });
            w.close_object();
        });
    }

    /// Parses the coverage object written by [`CoverageData::write_fields`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed or missing field.
    pub fn from_json(value: &JsonValue) -> Result<CoverageData, String> {
        let slot_prefix = value
            .get("slot_prefix")
            .and_then(JsonValue::as_str)
            .ok_or("coverage.slot_prefix missing")?
            .to_string();
        let domain_exact = value
            .get("domain_exact")
            .and_then(JsonValue::as_bool)
            .ok_or("coverage.domain_exact missing")?;
        let truncated = value
            .get("truncated")
            .and_then(JsonValue::as_bool)
            .ok_or("coverage.truncated missing")?;
        let domain = parse_cubes(value.get("domain").ok_or("coverage.domain missing")?)?;
        let mut paths = Vec::new();
        for entry in value
            .get("paths")
            .and_then(JsonValue::as_array)
            .ok_or("coverage.paths missing")?
        {
            paths.push(parse_path(entry)?);
        }
        Ok(CoverageData {
            slot_prefix,
            domain,
            domain_exact,
            truncated,
            paths,
        })
    }
}

fn parse_path(value: &JsonValue) -> Result<PathCoverage, String> {
    let decisions = bits_from_string(
        value
            .get("decisions")
            .and_then(JsonValue::as_str)
            .ok_or("path.decisions missing")?,
    )?;
    let certified = value
        .get("certified")
        .and_then(JsonValue::as_bool)
        .ok_or("path.certified missing")?;
    let bound = match value.get("bound").ok_or("path.bound missing")? {
        JsonValue::Null => None,
        JsonValue::String(text) => {
            Some(BoundCause::parse(text).ok_or_else(|| format!("unknown bound cause {text:?}"))?)
        }
        _ => return Err("path.bound must be null or a string".to_string()),
    };
    let mut slots = Vec::new();
    for entry in value
        .get("slots")
        .and_then(JsonValue::as_array)
        .ok_or("path.slots missing")?
    {
        let slot = entry
            .get("slot")
            .and_then(JsonValue::as_str)
            .ok_or("slot.slot missing")?
            .to_string();
        let exact = entry
            .get("exact")
            .and_then(JsonValue::as_bool)
            .ok_or("slot.exact missing")?;
        let mut instr_decisions = Vec::new();
        for item in entry
            .get("instr_decisions")
            .and_then(JsonValue::as_array)
            .ok_or("slot.instr_decisions missing")?
        {
            let index = item.as_u64().ok_or("instr_decisions entry not a number")?;
            instr_decisions
                .push(u32::try_from(index).map_err(|_| "instr_decisions entry too large")?);
        }
        let cubes = parse_cubes(entry.get("cubes").ok_or("slot.cubes missing")?)?;
        slots.push(SlotCoverage {
            slot,
            cubes,
            exact,
            instr_decisions,
        });
    }
    Ok(PathCoverage {
        decisions,
        certified,
        bound,
        slots,
    })
}

/// Emits `"name": [{"mask": "0x…", "value": "0x…"}, …]`.
fn write_cubes(w: &mut JsonWriter, name: &str, cubes: &[Pattern]) {
    w.array_field(name, cubes.len(), |w, i| {
        w.open_object();
        w.string_field("mask", &hex(cubes[i].mask));
        w.string_field("value", &hex(cubes[i].value));
        w.close_object();
    });
}

fn parse_cubes(value: &JsonValue) -> Result<Vec<Pattern>, String> {
    let mut cubes = Vec::new();
    for entry in value.as_array().ok_or("cube list is not an array")? {
        let mask = parse_hex(
            entry
                .get("mask")
                .and_then(JsonValue::as_str)
                .ok_or("cube.mask missing")?,
        )?;
        let cube_value = parse_hex(
            entry
                .get("value")
                .and_then(JsonValue::as_str)
                .ok_or("cube.value missing")?,
        )?;
        cubes.push(Pattern::new(mask, cube_value));
    }
    Ok(cubes)
}

fn hex(word: u32) -> String {
    format!("{word:#010x}")
}

fn parse_hex(text: &str) -> Result<u32, String> {
    let digits = text
        .strip_prefix("0x")
        .ok_or_else(|| format!("expected 0x-prefixed hex, got {text:?}"))?;
    u32::from_str_radix(digits, 16).map_err(|e| format!("bad hex word {text:?}: {e}"))
}

fn bits_to_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn bits_from_string(text: &str) -> Result<Vec<bool>, String> {
    text.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("bad decision bit {other:?}")),
        })
        .collect()
}

/// The certifier's overall conclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The certified paths cover the whole legal decode domain and are
    /// pairwise disjoint: the run partitions the decode space.
    Complete,
    /// Every uncovered domain word is attributed to an explicit bound
    /// (a bounded path's cover, or the run-level truncation flag).
    Bounded,
    /// An uncovered domain word has no attribution, or two certified
    /// paths claim the same word — the coverage argument does not hold.
    Failed,
}

impl Verdict {
    /// Stable JSON spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Complete => "complete",
            Verdict::Bounded => "bounded",
            Verdict::Failed => "failed",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The per-slot coverage theorem instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotCertificate {
    /// Fetch-slot symbol name (e.g. `imem_00000000`).
    pub slot: String,
    /// Words in the legal decode domain.
    pub domain_words: u64,
    /// Domain words covered by certified paths.
    pub certified_words: u64,
    /// Domain words uncovered by certified paths but attributed to a
    /// bounded path's cover.
    pub bounded_words: u64,
    /// Domain words with no attribution at all.
    pub residual_words: u64,
    /// Whether every certified path's projection (and the domain
    /// projection) was exact — if not, the cover is a sound
    /// over-approximation and `complete` means "no *provable* gap".
    pub exact: bool,
    /// Concrete unattributed words (capped), sorted ascending.
    pub counterexamples: Vec<u32>,
    /// Concrete words claimed by two certified sibling subtrees at an
    /// instruction-exact divergence (capped), sorted ascending.
    pub overlaps: Vec<u32>,
}

/// The result of certifying one run: the coverage theorems and their
/// verdict, serialisable as the `symcosim-cert/1` document.
///
/// Deliberately excludes wall-clock timings, engine choice, job counts
/// and solver statistics so the two path engines — and any worker count —
/// produce byte-identical certificates for the same exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Overall conclusion (worst across slots).
    pub verdict: Verdict,
    /// Fetch-slot symbol prefix.
    pub slot_prefix: String,
    /// Run-level truncation flag carried from the session.
    pub truncated: bool,
    /// Paths whose covers certify coverage.
    pub paths_certified: usize,
    /// Feasible paths stopped at an explicit bound.
    pub paths_bounded: usize,
    /// Infeasible paths (cover nothing, excluded).
    pub paths_excluded: usize,
    /// The legal decode domain cubes.
    pub domain: Vec<Pattern>,
    /// Whether the domain cubes are the exact constraint projection.
    pub domain_exact: bool,
    /// Per-slot theorem instances, in slot-name order.
    pub slots: Vec<SlotCertificate>,
    /// Proof-audit counters of the run that produced the coverage, when
    /// independent answer checking was on ([`SessionConfig::audit`]).
    /// Deliberately excluded from [`Certificate::to_json`] — like solver
    /// statistics — so certificates stay byte-identical audit on/off.
    ///
    /// [`SessionConfig::audit`]: crate::SessionConfig::audit
    pub proof_audit: Option<ProofAuditStats>,
}

impl Certificate {
    /// Runs the full certification over collected coverage data.
    #[must_use]
    pub fn certify(data: &CoverageData) -> Certificate {
        let mut domain_set = PatternSet::empty();
        for cube in &data.domain {
            domain_set.insert(cube);
        }

        let certified: Vec<&PathCoverage> = data.paths.iter().filter(|p| p.certified).collect();
        let bounded: Vec<&PathCoverage> = data
            .paths
            .iter()
            .filter(|p| !p.certified && p.bound.is_some())
            .collect();
        let paths_excluded = data.paths.len() - certified.len() - bounded.len();

        let mut slot_names: BTreeSet<&str> = BTreeSet::new();
        for path in &data.paths {
            for slot in &path.slots {
                slot_names.insert(&slot.slot);
            }
        }

        let mut slots = Vec::new();
        let mut any_overlap = false;
        let mut any_residual = false;
        let mut any_bounded_words = false;
        for name in slot_names {
            let mut certified_cover = PatternSet::empty();
            for path in &certified {
                certified_cover.union_with(&path.slot_set(name));
            }
            let mut bounded_cover = PatternSet::empty();
            for path in &bounded {
                bounded_cover.union_with(&path.slot_set(name));
            }

            let certified_words = certified_cover.intersect_set(&domain_set).count();
            let mut residual = domain_set.clone();
            residual.subtract_set(&certified_cover);
            let bounded_words = residual.intersect_set(&bounded_cover).count();
            residual.subtract_set(&bounded_cover);
            residual.sort_cubes();
            let residual_words = residual.count();
            let mut counterexamples: Vec<u32> = residual
                .cubes()
                .iter()
                .take(WITNESS_LIMIT)
                .map(Pattern::sample)
                .collect();
            counterexamples.sort_unstable();

            let exact = data.domain_exact
                && certified.iter().all(|path| {
                    path.slots
                        .iter()
                        .find(|s| s.slot == name)
                        .is_none_or(|s| s.exact)
                });

            let mut overlaps = Vec::new();
            subtree_cover(&certified, name, 0, &mut overlaps);
            overlaps.sort_unstable();
            overlaps.dedup();
            overlaps.truncate(WITNESS_LIMIT);

            any_overlap |= !overlaps.is_empty();
            any_residual |= residual_words > 0;
            any_bounded_words |= bounded_words > 0;
            slots.push(SlotCertificate {
                slot: name.to_string(),
                domain_words: domain_set.count(),
                certified_words,
                bounded_words,
                residual_words,
                exact,
                counterexamples,
                overlaps,
            });
        }

        // A run whose certified paths never constrain any fetch slot
        // covers everything trivially — unless there is no certified path
        // at all, in which case the whole domain is unaccounted.
        let nothing_explored = slots.is_empty() && certified.is_empty() && !domain_set.is_empty();

        let verdict = if any_overlap {
            Verdict::Failed
        } else if any_residual || nothing_explored {
            if data.truncated || (nothing_explored && !bounded.is_empty()) {
                Verdict::Bounded
            } else {
                Verdict::Failed
            }
        } else if any_bounded_words || data.truncated {
            Verdict::Bounded
        } else {
            Verdict::Complete
        };

        Certificate {
            verdict,
            slot_prefix: data.slot_prefix.clone(),
            truncated: data.truncated,
            paths_certified: certified.len(),
            paths_bounded: bounded.len(),
            paths_excluded,
            domain: data.domain.clone(),
            domain_exact: data.domain_exact,
            slots,
            proof_audit: None,
        }
    }

    /// Attaches the run's proof-audit counters (in-memory section only;
    /// see [`Certificate::proof_audit`]).
    #[must_use]
    pub fn with_proof_audit(mut self, stats: ProofAuditStats) -> Certificate {
        self.proof_audit = Some(stats);
        self
    }

    /// Number of reportable findings — overlap witnesses plus, on a
    /// failed verdict, the uncovered counterexamples (at least one, so a
    /// failure is never silent). Zero on `complete` and `bounded`.
    #[must_use]
    pub fn findings(&self) -> usize {
        let overlaps: usize = self.slots.iter().map(|s| s.overlaps.len()).sum();
        if self.verdict == Verdict::Failed {
            let uncovered: usize = self.slots.iter().map(|s| s.counterexamples.len()).sum();
            (overlaps + uncovered).max(1)
        } else {
            overlaps
        }
    }

    /// Serialises the certificate as the `symcosim-cert/1` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        json::header(&mut w, CERT_SCHEMA);
        w.string_field("verdict", self.verdict.as_str());
        w.string_field("slot_prefix", &self.slot_prefix);
        w.bool_field("truncated", self.truncated);
        w.number_field("paths_certified", self.paths_certified as u64);
        w.number_field("paths_bounded", self.paths_bounded as u64);
        w.number_field("paths_excluded", self.paths_excluded as u64);
        w.bool_field("domain_exact", self.domain_exact);
        write_cubes(&mut w, "domain", &self.domain);
        w.array_field("slots", self.slots.len(), |w, i| {
            let slot = &self.slots[i];
            w.open_object();
            w.string_field("slot", &slot.slot);
            w.number_field("domain_words", slot.domain_words);
            w.number_field("certified_words", slot.certified_words);
            w.number_field("bounded_words", slot.bounded_words);
            w.number_field("residual_words", slot.residual_words);
            w.bool_field("exact", slot.exact);
            w.array_field("counterexamples", slot.counterexamples.len(), |w, k| {
                w.string_value(&hex(slot.counterexamples[k]));
            });
            w.array_field("overlaps", slot.overlaps.len(), |w, k| {
                w.string_value(&hex(slot.overlaps[k]));
            });
            w.close_object();
        });
        w.number_field("findings", self.findings() as u64);
        w.string_field(
            "status",
            if self.findings() == 0 {
                "clean"
            } else {
                "findings"
            },
        );
        w.close_object();
        w.finish()
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "coverage certificate: {} ({} certified, {} bounded, {} excluded paths{})",
            self.verdict,
            self.paths_certified,
            self.paths_bounded,
            self.paths_excluded,
            if self.truncated {
                ", truncated run"
            } else {
                ""
            },
        )?;
        for slot in &self.slots {
            writeln!(
                f,
                "  {}: {}/{} words certified, {} bounded, {} unattributed{}",
                slot.slot,
                slot.certified_words,
                slot.domain_words,
                slot.bounded_words,
                slot.residual_words,
                if slot.exact { "" } else { " (widened cover)" },
            )?;
            for word in &slot.counterexamples {
                writeln!(f, "    uncovered: {}", hex(*word))?;
            }
            for word in &slot.overlaps {
                writeln!(f, "    double-claimed: {}", hex(*word))?;
            }
        }
        if let Some(audit) = &self.proof_audit {
            writeln!(f, "  proof audit: {audit}")?;
        }
        Ok(())
    }
}

/// Recursive disjointness check along the decision prefix tree.
///
/// Returns the union of the subtree's covers for `slot`. At the first
/// depth `d` where the group diverges, if `d` is an instruction-exact
/// decision (recorded in any member's
/// [`SlotCoverage::instr_decisions`]) the two halves' aggregated covers
/// must be disjoint; intersection samples are pushed into `overlaps`.
fn subtree_cover(
    paths: &[&PathCoverage],
    slot: &str,
    depth: usize,
    overlaps: &mut Vec<u32>,
) -> PatternSet {
    if paths.len() <= 1 {
        return paths
            .first()
            .map_or_else(PatternSet::empty, |p| p.slot_set(slot));
    }
    // Advance past the shared prefix to the first divergence. Explored
    // decision vectors are pairwise prefix-free, so one exists.
    let mut d = depth;
    loop {
        let first = paths[0].decisions.get(d);
        if first.is_none() || paths.iter().any(|p| p.decisions.get(d) != first) {
            break;
        }
        d += 1;
    }
    let (zeros, ones): (Vec<&PathCoverage>, Vec<&PathCoverage>) = paths
        .iter()
        .copied()
        .partition(|p| p.decisions.get(d) == Some(&false));
    if zeros.is_empty() || ones.is_empty() {
        // Malformed input (duplicate or prefix-nested decision vectors):
        // no legitimate split exists, so stop rather than recurse forever.
        // The union is still sound for the parent's own check.
        let mut union = PatternSet::empty();
        for path in paths {
            union.union_with(&path.slot_set(slot));
        }
        return union;
    }
    let cover_zeros = subtree_cover(&zeros, slot, d + 1, overlaps);
    let cover_ones = subtree_cover(&ones, slot, d + 1, overlaps);

    let instr_exact = paths.iter().any(|p| {
        p.slots
            .iter()
            .any(|s| s.slot == slot && s.instr_decisions.contains(&(d as u32)))
    });
    if instr_exact {
        let intersection = cover_zeros.intersect_set(&cover_ones);
        for cube in intersection.cubes().iter().take(WITNESS_LIMIT) {
            overlaps.push(cube.sample());
        }
    }

    let mut union = cover_zeros;
    union.union_with(&cover_ones);
    union
}

// --- distributed certificate merging -----------------------------------

/// One shard of a sliced verification run: the slice cube the shard was
/// scoped to ([`SessionConfig::slice`](crate::SessionConfig)) and the
/// coverage it collected.
#[derive(Debug, Clone)]
pub struct CoverageSlice {
    /// The first-fetch decode-space cube the shard ran under.
    pub cube: Pattern,
    /// The shard's collected coverage
    /// ([`VerifyReport::coverage`](crate::VerifyReport)).
    pub data: CoverageData,
}

/// Why a family of coverage slices cannot be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// No slices were supplied.
    NoSlices,
    /// Two slice cubes share at least one instruction word, so a path
    /// could be claimed twice.
    OverlappingSlices {
        /// First offending cube.
        a: Pattern,
        /// Second offending cube.
        b: Pattern,
        /// A concrete word both cubes cover.
        witness: u32,
    },
    /// The slice cubes leave part of the legal decode domain uncovered.
    ResidualCube {
        /// A maximal uncovered cube.
        cube: Pattern,
        /// A concrete uncovered word inside it.
        witness: u32,
    },
    /// The slices were collected against different slot prefixes.
    SlotPrefixMismatch {
        /// Prefix of the first slice.
        expected: String,
        /// The diverging prefix.
        found: String,
    },
    /// Two slices disagree on the status of the same canonical path —
    /// impossible for shards of one deterministic run, so the inputs do
    /// not belong to the same job.
    InconsistentPath {
        /// The canonical decision vector of the conflicting path.
        decisions: Vec<bool>,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoSlices => write!(f, "no coverage slices to merge"),
            MergeError::OverlappingSlices { a, b, witness } => write!(
                f,
                "slice cubes mask={:08x} value={:08x} and mask={:08x} value={:08x} overlap \
                 (witness word {witness:#010x})",
                a.mask, a.value, b.mask, b.value
            ),
            MergeError::ResidualCube { cube, witness } => write!(
                f,
                "slice union misses domain cube mask={:08x} value={:08x} \
                 (witness word {witness:#010x})",
                cube.mask, cube.value
            ),
            MergeError::SlotPrefixMismatch { expected, found } => {
                write!(f, "slot prefix mismatch: `{expected}` vs `{found}`")
            }
            MergeError::InconsistentPath { decisions } => {
                write!(
                    f,
                    "slices disagree on the status of path {}",
                    decisions
                        .iter()
                        .map(|&d| if d { '1' } else { '0' })
                        .collect::<String>()
                )
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Path record accumulated across slices during a merge.
struct MergedPath {
    certified: bool,
    bound: Option<BoundCause>,
    excluded_only: bool,
    /// Union-in-progress per slot: cover, exactness, instruction-relevant
    /// decision positions.
    slots: Vec<(String, PatternSet, bool, Vec<u32>)>,
}

/// Merges per-slice coverage into the coverage of the whole run, after
/// statically proving — by cube algebra alone, no enumeration — that the
/// slice cubes are pairwise disjoint and their union covers every word of
/// the legal decode `domain`. Certifying the result yields a certificate
/// **byte-identical** to the single-process run's whenever the slot
/// projections are exact (they are for every RV32I opcode space; widened
/// covers may decompose differently per slice).
///
/// `domain`/`domain_exact` must be the *full* run's legal decode domain —
/// obtain it from [`project_domain`](crate::project_domain) with no slice,
/// the same code path a single-process run derives its domain from.
///
/// Shards of one deterministic run explore decision vectors that are
/// exactly the feasible subsets of the full run's vectors (forced
/// decisions are still recorded, so per-path identity is slice-invariant):
/// merging groups records by vector, unions their slot covers, and keeps
/// the strongest status. An infeasible record whose vector strictly
/// prefixes another group is a slice-root artefact — the slice cube
/// killing a shard's path early — and is dropped; the single run never saw
/// it.
///
/// # Errors
///
/// Returns a [`MergeError`] when the slices are empty, overlap, leave a
/// residual domain cube, mix slot prefixes, or disagree on a path.
pub fn merge_slice_coverage(
    domain: Vec<Pattern>,
    domain_exact: bool,
    slices: &[CoverageSlice],
) -> Result<CoverageData, MergeError> {
    let first = slices.first().ok_or(MergeError::NoSlices)?;
    let slot_prefix = first.data.slot_prefix.clone();
    for slice in &slices[1..] {
        if slice.data.slot_prefix != slot_prefix {
            return Err(MergeError::SlotPrefixMismatch {
                expected: slot_prefix,
                found: slice.data.slot_prefix.clone(),
            });
        }
    }

    // Proof obligation 1: pairwise disjointness. Every word is claimed by
    // at most one slice.
    for (i, a) in slices.iter().enumerate() {
        for b in &slices[i + 1..] {
            if let Some(shared) = a.cube.intersect(&b.cube) {
                return Err(MergeError::OverlappingSlices {
                    a: a.cube,
                    b: b.cube,
                    witness: shared.sample(),
                });
            }
        }
    }

    // Proof obligation 2: the union covers the domain. Every legal word is
    // claimed by at least one slice.
    let mut residual = PatternSet::empty();
    for cube in &domain {
        residual.insert(cube);
    }
    for slice in slices {
        residual.subtract(&slice.cube);
    }
    if let Some(cube) = residual.cubes().first() {
        return Err(MergeError::ResidualCube {
            cube: *cube,
            witness: cube.sample(),
        });
    }

    // Group path records by canonical decision vector.
    let mut groups: BTreeMap<Vec<bool>, MergedPath> = BTreeMap::new();
    for slice in slices {
        for path in &slice.data.paths {
            let entry = groups
                .entry(path.decisions.clone())
                .or_insert_with(|| MergedPath {
                    certified: false,
                    bound: None,
                    excluded_only: true,
                    slots: Vec::new(),
                });
            if path.excluded() {
                continue;
            }
            if entry.excluded_only {
                entry.certified = path.certified;
                entry.bound = path.bound;
                entry.excluded_only = false;
            } else if entry.certified != path.certified || entry.bound != path.bound {
                return Err(MergeError::InconsistentPath {
                    decisions: path.decisions.clone(),
                });
            }
            for slot in &path.slots {
                let merged = match entry.slots.iter_mut().find(|(name, ..)| *name == slot.slot) {
                    Some(merged) => merged,
                    None => {
                        entry.slots.push((
                            slot.slot.clone(),
                            PatternSet::empty(),
                            true,
                            Vec::new(),
                        ));
                        entry.slots.last_mut().expect("just pushed")
                    }
                };
                for cube in &slot.cubes {
                    merged.1.insert(cube);
                }
                merged.2 &= slot.exact;
                for &d in &slot.instr_decisions {
                    if !merged.3.contains(&d) {
                        merged.3.push(d);
                    }
                }
            }
        }
    }

    // Drop slice-root artefacts: infeasible records whose vector strictly
    // prefixes a surviving group only exist because a slice cube emptied a
    // whole shard — the unsliced run never recorded them.
    let vectors: Vec<Vec<bool>> = groups.keys().cloned().collect();
    let artefact = |v: &Vec<bool>| {
        vectors
            .iter()
            .any(|other| other.len() > v.len() && other[..v.len()] == v[..])
    };
    groups.retain(|vector, merged| !(merged.excluded_only && artefact(vector)));

    let paths = groups
        .into_iter()
        .map(|(decisions, merged)| {
            let slots = merged
                .slots
                .into_iter()
                .filter(|(_, cover, _, instr_decisions)| {
                    // A cover grown back to the full universe constrains
                    // nothing; the single run leaves such slots unlisted.
                    cover.count() != 1u64 << 32 || !instr_decisions.is_empty()
                })
                .map(|(slot, mut cover, exact, mut instr_decisions)| {
                    cover.sort_cubes();
                    instr_decisions.sort_unstable();
                    SlotCoverage {
                        slot,
                        cubes: cover.cubes().to_vec(),
                        exact,
                        instr_decisions,
                    }
                })
                .collect();
            PathCoverage {
                decisions,
                certified: merged.certified,
                bound: merged.bound,
                slots,
            }
        })
        .collect();

    Ok(CoverageData {
        slot_prefix,
        domain,
        domain_exact,
        truncated: slices.iter().any(|s| s.data.truncated),
        paths,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A certified path constraining bit 0 of the slot to `bit`.
    fn half_path(bit: bool) -> PathCoverage {
        PathCoverage {
            decisions: vec![bit],
            certified: true,
            bound: None,
            slots: vec![SlotCoverage {
                slot: "imem_00000000".to_string(),
                cubes: vec![Pattern::new(1, u32::from(bit))],
                exact: true,
                instr_decisions: vec![0],
            }],
        }
    }

    fn two_half_data() -> CoverageData {
        CoverageData {
            slot_prefix: SLOT_PREFIX.to_string(),
            domain: vec![Pattern::universe()],
            domain_exact: true,
            truncated: false,
            paths: vec![half_path(false), half_path(true)],
        }
    }

    #[test]
    fn disjoint_halves_certify_complete() {
        let cert = Certificate::certify(&two_half_data());
        assert_eq!(cert.verdict, Verdict::Complete);
        assert_eq!(cert.findings(), 0);
        assert_eq!(cert.paths_certified, 2);
        let slot = &cert.slots[0];
        assert_eq!(slot.domain_words, 1 << 32);
        assert_eq!(slot.certified_words, 1 << 32);
        assert_eq!(slot.residual_words, 0);
        assert!(slot.exact);
        assert!(slot.counterexamples.is_empty() && slot.overlaps.is_empty());
    }

    #[test]
    fn a_dropped_path_fails_with_a_counterexample() {
        let mut data = two_half_data();
        data.paths.pop(); // lose the odd-words half
        let cert = Certificate::certify(&data);
        assert_eq!(cert.verdict, Verdict::Failed);
        assert!(cert.findings() >= 1);
        let slot = &cert.slots[0];
        assert_eq!(slot.residual_words, 1 << 31);
        // Every reported counterexample really is uncovered (odd word).
        assert!(!slot.counterexamples.is_empty());
        assert!(slot.counterexamples.iter().all(|w| w & 1 == 1));
    }

    #[test]
    fn a_bounded_path_attributes_its_region() {
        let mut data = two_half_data();
        data.paths[1].certified = false;
        data.paths[1].bound = Some(BoundCause::CycleLimit);
        let cert = Certificate::certify(&data);
        assert_eq!(cert.verdict, Verdict::Bounded);
        assert_eq!(cert.findings(), 0);
        let slot = &cert.slots[0];
        assert_eq!(slot.certified_words, 1 << 31);
        assert_eq!(slot.bounded_words, 1 << 31);
        assert_eq!(slot.residual_words, 0);
    }

    #[test]
    fn a_truncated_run_downgrades_missing_coverage_to_bounded() {
        let mut data = two_half_data();
        data.paths.pop();
        data.truncated = true;
        let cert = Certificate::certify(&data);
        assert_eq!(cert.verdict, Verdict::Bounded);
        assert_eq!(cert.findings(), 0);
    }

    #[test]
    fn overlapping_sibling_claims_fail_with_a_witness() {
        let mut data = two_half_data();
        // Tamper the second path into claiming every word.
        data.paths[1].slots[0].cubes = vec![Pattern::universe()];
        let cert = Certificate::certify(&data);
        assert_eq!(cert.verdict, Verdict::Failed);
        let slot = &cert.slots[0];
        assert!(!slot.overlaps.is_empty());
        // The witness word is genuinely claimed by both paths.
        for word in &slot.overlaps {
            assert!(data
                .paths
                .iter()
                .all(|p| p.slot_set("imem_00000000").covers(*word)));
        }
    }

    #[test]
    fn branches_on_register_values_may_share_words() {
        // Two certified paths diverging on a *non*-instruction decision
        // (e.g. a register-dependent branch) legitimately cover the same
        // instruction words.
        let mut data = two_half_data();
        for path in &mut data.paths {
            path.slots[0].cubes = vec![Pattern::universe()];
            path.slots[0].instr_decisions.clear();
        }
        let cert = Certificate::certify(&data);
        assert_eq!(cert.verdict, Verdict::Complete);
        assert!(cert.slots[0].overlaps.is_empty());
    }

    #[test]
    fn infeasible_paths_are_excluded_not_counted_against() {
        let mut data = two_half_data();
        data.paths.push(PathCoverage {
            decisions: vec![true, true],
            certified: false,
            bound: None,
            slots: Vec::new(),
        });
        let cert = Certificate::certify(&data);
        assert_eq!(cert.verdict, Verdict::Complete);
        assert_eq!(cert.paths_excluded, 1);
    }

    #[test]
    fn widened_covers_are_flagged_inexact_but_still_sound() {
        let mut data = two_half_data();
        data.paths[0].slots[0].exact = false;
        let cert = Certificate::certify(&data);
        assert_eq!(cert.verdict, Verdict::Complete);
        assert!(!cert.slots[0].exact);
    }

    #[test]
    fn coverage_data_round_trips_through_json() {
        let mut data = two_half_data();
        data.paths[1].certified = false;
        data.paths[1].bound = Some(BoundCause::DecisionLimit);
        let mut w = JsonWriter::new();
        w.open_object();
        data.write_fields(&mut w);
        w.close_object();
        let text = w.finish();
        let value = JsonValue::parse(&text).expect("own output parses");
        let parsed = CoverageData::from_json(&value).expect("own output round-trips");
        assert_eq!(parsed, data);
    }

    #[test]
    fn certificate_json_has_the_versioned_header_and_verdict() {
        let cert = Certificate::certify(&two_half_data());
        let text = cert.to_json();
        let value = JsonValue::parse(&text).expect("certificate parses");
        assert_eq!(
            value.get("schema").and_then(JsonValue::as_str),
            Some(CERT_SCHEMA)
        );
        assert_eq!(
            value.get("tool").and_then(JsonValue::as_str),
            Some("symcosim")
        );
        assert_eq!(
            value.get("verdict").and_then(JsonValue::as_str),
            Some("complete")
        );
        assert_eq!(
            value.get("status").and_then(JsonValue::as_str),
            Some("clean")
        );
        assert_eq!(value.get("findings").and_then(JsonValue::as_u64), Some(0));
    }

    #[test]
    fn empty_runs_fail_unless_attributed() {
        let empty = CoverageData {
            slot_prefix: SLOT_PREFIX.to_string(),
            domain: vec![Pattern::universe()],
            domain_exact: true,
            truncated: false,
            paths: Vec::new(),
        };
        assert_eq!(Certificate::certify(&empty).verdict, Verdict::Failed);
        let truncated = CoverageData {
            truncated: true,
            ..empty
        };
        assert_eq!(Certificate::certify(&truncated).verdict, Verdict::Bounded);
    }
}
