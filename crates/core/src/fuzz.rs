//! Random co-simulation baseline (the fuzzing comparator).
//!
//! The paper positions symbolic execution against the authors' earlier
//! coverage-guided fuzzing flow (the paper's reference \[10\]): both drive the same
//! ISS-vs-RTL co-simulation, but the fuzzer feeds *random concrete*
//! instruction words and register seeds instead of symbolic ones. This
//! module provides that baseline over the identical [`CoSim`] harness, so
//! the benchmark comparing time-to-detection is apples to apples.

use std::time::{Duration, Instant};

use symcosim_iss::IssConfig;
use symcosim_microrv32::{CoreConfig, InjectedError};
use symcosim_symex::ConcreteDomain;
use symcosim_testkit::Rng;

use crate::cosim::CoSim;
use crate::voter::{ConcreteJudge, Mismatch};
use crate::SymbolicInstrMemory;

/// Configuration of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// DUT behaviour switches.
    pub core_config: CoreConfig,
    /// Reference-model behaviour switches.
    pub iss_config: IssConfig,
    /// Optional seeded fault.
    pub inject: Option<InjectedError>,
    /// Instructions per run.
    pub instr_limit: u32,
    /// Clock-cycle backstop per run.
    pub cycle_limit: u64,
    /// Registers `x1..=x<n>` seeded with random values each run.
    pub random_regs: usize,
    /// Data memory size in words (power of two).
    pub dmem_words: usize,
    /// Reject SYSTEM-opcode instructions (RV32I-only generation).
    pub block_system: bool,
    /// RNG seed (campaigns are deterministic).
    pub seed: u64,
    /// Give up after this many runs.
    pub max_runs: u64,
}

impl FuzzConfig {
    /// RV32I-only fuzzing against corrected models — the concrete twin of
    /// [`SessionConfig::rv32i_only`](crate::SessionConfig::rv32i_only).
    pub fn rv32i_only() -> FuzzConfig {
        FuzzConfig {
            core_config: CoreConfig::fixed(),
            iss_config: IssConfig::fixed(),
            inject: None,
            instr_limit: 1,
            cycle_limit: 64,
            random_regs: 2,
            dmem_words: 16,
            block_system: true,
            seed: 0x0dd_b1a5,
            max_runs: 2_000_000,
        }
    }
}

/// Result of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The first mismatch found, if any.
    pub mismatch: Option<Mismatch>,
    /// Co-simulation runs performed.
    pub runs: u64,
    /// Instructions executed across both models.
    pub instructions: u64,
    /// Wall-clock time spent.
    pub duration: Duration,
}

impl FuzzOutcome {
    /// Whether the campaign found a mismatch.
    pub fn found(&self) -> bool {
        self.mismatch.is_some()
    }
}

/// Executes one concrete co-simulation with explicit inputs.
fn run_inputs(
    config: &FuzzConfig,
    words: &[u32],
    regs: &[u32],
    memory: &[u32],
) -> crate::CosimResult {
    let mut dom = ConcreteDomain::new();
    let words: Vec<u32> = words.to_vec();
    let imem = SymbolicInstrMemory::with_generator(move |_dom, index| {
        words.get(index as usize).copied().unwrap_or(0x13) // NOP fallback
    });
    let mut cosim = CoSim::new(
        &mut dom,
        config.core_config.clone(),
        config.iss_config.clone(),
        config.inject,
        imem,
        0,
        config.dmem_words,
        config.instr_limit,
        config.cycle_limit,
    );
    for (i, value) in regs.iter().enumerate() {
        cosim.core.set_register(i + 1, *value);
        cosim.iss.set_register(i + 1, *value);
    }
    for (i, value) in memory.iter().enumerate() {
        cosim.core_dmem.set_word(i, *value);
        cosim.iss_dmem.set_word(i, *value);
    }
    cosim.run(&mut dom, &mut ConcreteJudge)
}

/// Samples one instruction word respecting the generation constraint.
fn random_word(rng: &mut Rng, block_system: bool) -> u32 {
    loop {
        let word: u32 = rng.next_u32();
        if !block_system || word & 0x7f != symcosim_isa::opcodes::SYSTEM {
            return word;
        }
    }
}

/// Runs a purely random fuzzing campaign until a mismatch or the run
/// budget is hit.
///
/// # Panics
///
/// Panics if `config.dmem_words` is not a power of two or
/// `config.random_regs` exceeds 31.
pub fn run(config: &FuzzConfig) -> FuzzOutcome {
    let start = Instant::now();
    let mut rng = Rng::seed(config.seed);
    let mut instructions = 0u64;

    for run_index in 0..config.max_runs {
        let words: Vec<u32> = (0..config.instr_limit)
            .map(|_| random_word(&mut rng, config.block_system))
            .collect();
        let regs: Vec<u32> = (0..config.random_regs).map(|_| rng.next_u32()).collect();
        let memory: Vec<u32> = (0..config.dmem_words).map(|_| rng.next_u32()).collect();
        let result = run_inputs(config, &words, &regs, &memory);
        instructions += result.instructions;
        if result.mismatch.is_some() {
            return FuzzOutcome {
                mismatch: result.mismatch,
                runs: run_index + 1,
                instructions,
                duration: start.elapsed(),
            };
        }
    }

    FuzzOutcome {
        mismatch: None,
        runs: config.max_runs,
        instructions,
        duration: start.elapsed(),
    }
}

/// The decode-identity of an instruction word: opcode, `funct3` and
/// `funct7` (the bits that select behaviour, ignoring operands).
fn decode_class(word: u32) -> u32 {
    word & 0xfe00_707f
}

/// Runs a coverage-guided fuzzing campaign (the flavour of the paper's
/// prior-work comparator): inputs that reach a new decode class join a
/// corpus and are mutated preferentially, biasing generation towards
/// instruction variety instead of uniform randomness.
///
/// # Panics
///
/// Panics if `config.dmem_words` is not a power of two or
/// `config.random_regs` exceeds 31.
pub fn run_coverage_guided(config: &FuzzConfig) -> FuzzOutcome {
    let start = Instant::now();
    let mut rng = Rng::seed(config.seed);
    let mut instructions = 0u64;
    let mut corpus: Vec<Vec<u32>> = Vec::new();
    let mut seen_classes = std::collections::HashSet::new();

    for run_index in 0..config.max_runs {
        // 50/50: mutate a corpus entry or generate fresh.
        let words: Vec<u32> = if !corpus.is_empty() && rng.chance(1, 2) {
            let parent = &corpus[rng.index(corpus.len())];
            parent
                .iter()
                .map(|&w| {
                    let mut word = w;
                    for _ in 0..1 + rng.below(3) {
                        word ^= 1 << rng.below(32);
                    }
                    if config.block_system && word & 0x7f == symcosim_isa::opcodes::SYSTEM {
                        word ^= 0x40; // knock it out of the SYSTEM opcode
                    }
                    word
                })
                .collect()
        } else {
            (0..config.instr_limit)
                .map(|_| random_word(&mut rng, config.block_system))
                .collect()
        };
        let regs: Vec<u32> = (0..config.random_regs).map(|_| rng.next_u32()).collect();
        let memory: Vec<u32> = (0..config.dmem_words).map(|_| rng.next_u32()).collect();
        let result = run_inputs(config, &words, &regs, &memory);
        instructions += result.instructions;
        if result.mismatch.is_some() {
            return FuzzOutcome {
                mismatch: result.mismatch,
                runs: run_index + 1,
                instructions,
                duration: start.elapsed(),
            };
        }
        // Coverage feedback: new decode classes earn a corpus slot.
        if words.iter().any(|&w| seen_classes.insert(decode_class(w))) {
            corpus.push(words);
            if corpus.len() > 256 {
                corpus.remove(0);
            }
        }
    }

    FuzzOutcome {
        mismatch: None,
        runs: config.max_runs,
        instructions,
        duration: start.elapsed(),
    }
}

/// Which phase of a [`run_hybrid`] campaign found the mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridPhase {
    /// The fuzzing prepass found it.
    Fuzzing,
    /// The symbolic exploration found it.
    Symbolic,
}

/// Outcome of a hybrid campaign.
#[derive(Debug)]
pub struct HybridOutcome {
    /// The fuzzing prepass result.
    pub fuzz: FuzzOutcome,
    /// The symbolic report, if the prepass came up empty.
    pub report: Option<crate::VerifyReport>,
    /// Which phase found a mismatch, if any.
    pub found_by: Option<HybridPhase>,
}

/// The paper's future-work *hybrid* flow: a cheap coverage-guided fuzzing
/// prepass catches shallow bugs in milliseconds; if it comes up empty
/// within `fuzz_budget` runs, the complete symbolic exploration takes
/// over for the corner cases.
pub fn run_hybrid(
    fuzz_config: &FuzzConfig,
    session_config: crate::SessionConfig,
    fuzz_budget: u64,
) -> HybridOutcome {
    let mut prepass = fuzz_config.clone();
    prepass.max_runs = fuzz_budget;
    let fuzz = run_coverage_guided(&prepass);
    if fuzz.found() {
        return HybridOutcome {
            fuzz,
            report: None,
            found_by: Some(HybridPhase::Fuzzing),
        };
    }
    let session = crate::VerifySession::new(session_config).expect("valid session config");
    let report = session.run();
    let found_by = report.first_mismatch().map(|_| HybridPhase::Symbolic);
    HybridOutcome {
        fuzz,
        report: Some(report),
        found_by,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_microrv32::InjectedError;

    #[test]
    fn finds_a_gross_injected_error_quickly() {
        let mut config = FuzzConfig::rv32i_only();
        // E3 corrupts every odd ADDI result: random fuzzing hits it fast.
        config.inject = Some(InjectedError::E3AddiStuckAt0Lsb);
        config.max_runs = 200_000;
        let outcome = run(&config);
        assert!(outcome.found(), "fuzzer should find E3 within the budget");
        assert!(outcome.runs > 0);
        assert!(outcome.instructions > 0);
    }

    #[test]
    fn clean_configuration_finds_nothing() {
        let mut config = FuzzConfig::rv32i_only();
        config.max_runs = 500;
        let outcome = run(&config);
        assert!(
            !outcome.found(),
            "corrected models must agree: {:?}",
            outcome.mismatch
        );
        assert_eq!(outcome.runs, 500);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let mut config = FuzzConfig::rv32i_only();
        config.inject = Some(InjectedError::E6BneBehavesLikeBeq);
        config.max_runs = 500_000;
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a.found(), b.found());
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn coverage_guided_finds_decode_corner_case() {
        let mut config = FuzzConfig::rv32i_only();
        config.inject = Some(InjectedError::E3AddiStuckAt0Lsb);
        config.max_runs = 500_000;
        let outcome = run_coverage_guided(&config);
        assert!(outcome.found(), "coverage-guided fuzzing should find E3");
    }

    #[test]
    fn hybrid_falls_back_to_symbolic_for_hard_bugs() {
        // E0 needs a reserved encoding: the fuzzing prepass (tiny budget)
        // misses it, the symbolic phase finds it.
        let mut fuzz_config = FuzzConfig::rv32i_only();
        fuzz_config.inject = Some(InjectedError::E0SlliDecodeDontCare);
        let mut session_config = crate::SessionConfig::rv32i_only();
        session_config.inject = Some(InjectedError::E0SlliDecodeDontCare);
        let outcome = run_hybrid(&fuzz_config, session_config, 2_000);
        assert_eq!(outcome.found_by, Some(HybridPhase::Symbolic));
        assert!(!outcome.fuzz.found());
    }

    #[test]
    fn hybrid_prefers_the_cheap_phase_for_shallow_bugs() {
        let mut fuzz_config = FuzzConfig::rv32i_only();
        fuzz_config.inject = Some(InjectedError::E3AddiStuckAt0Lsb);
        let mut session_config = crate::SessionConfig::rv32i_only();
        session_config.inject = Some(InjectedError::E3AddiStuckAt0Lsb);
        let outcome = run_hybrid(&fuzz_config, session_config, 500_000);
        assert_eq!(outcome.found_by, Some(HybridPhase::Fuzzing));
        assert!(outcome.report.is_none(), "symbolic phase skipped");
    }
}
