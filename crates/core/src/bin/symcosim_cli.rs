//! The `symcosim` command-line driver.
//!
//! ```text
//! symcosim-cli verify [--full] [--limit N] [--paths N] [--window N]
//!                     [--audit] [--audit-json PATH]
//! symcosim-cli inject <E0..E9> [--limit N] [--fuzz | --hybrid]
//! symcosim-cli fuzz [--runs N] [--coverage] [--inject Ek]
//! symcosim asm  (assembles stdin to hex words)
//! ```

use std::error::Error;
use std::io::{IsTerminal, Read};

use symcosim_core::fuzz::{self, FuzzConfig};
use symcosim_core::{
    merge_slice_coverage, project_domain, AuditDump, Certificate, CoverageSlice, EngineKind,
    InstrConstraint, ProgressEvent, SessionConfig, VerifyReport, VerifySession,
};
use symcosim_isa::pattern::partition_universe;
use symcosim_microrv32::InjectedError;

const USAGE: &str = "\
symcosim — symbolic co-simulation for RISC-V processor verification

USAGE:
    symcosim-cli verify [--full] [--limit N] [--paths N] [--window N]
                        [--jobs N] [--seed N] [--engine fork|reexec] [--lint]
                        [--opcode HEX] [--certify] [--slices N]
                        [--report-json PATH] [--no-solver-chain]
                        [--no-incremental] [--no-preflight] [--no-merge]
                        [--audit] [--audit-json PATH]
        Verify the shipped MicroRV32 against the shipped VP ISS and print
        the classified findings. --full allows CSR instructions (default);
        pass --rv32i-only to block them. --window sets the number of
        symbolic registers (default 2). --jobs explores paths on N worker
        threads (same report, any N); --seed seeds randomised search.
        --engine selects the path engine: fork (default) resumes sibling
        paths from copy-on-write snapshots, reexec replays each decision
        prefix from the root — both produce the identical report.
        --lint runs the symbolic-IR well-formedness pass over every path
        and appends the issues to the report.
        --opcode restricts generation to one major opcode (hex, e.g. 0x63).
        --certify projects every path onto the instruction space and
        audits the run in-process: the certificate proves the explored
        paths partition the legal decode space (exit code 1 if they do
        not). --report-json dumps the machine-readable symcosim-report/1
        document (including the coverage section `symcosim-lint
        --coverage` re-certifies) to PATH; both flags imply coverage
        collection. --slices N (requires --certify) shards the decode
        space into N cube-disjoint slices, verifies each in its own
        session and certifies the merged coverage — the printed
        certificate is byte-identical to the unsliced run's (the
        symcosim-serve daemon distributes the same shards across
        processes). --no-solver-chain bypasses the KLEE-style solver
        chain (independence slicing, counterexample and model caches) —
        the report is identical, only slower; for benchmarking.
        --no-incremental makes every SAT query restart from an empty
        trail instead of reusing the established assumption prefix —
        again identical, only slower; for benchmarking.
        --no-preflight disables the chain's abstract-interpretation
        preflight, so statically-forced queries reach the caches and
        solver again — identical report, only slower; for benchmarking.
        --no-merge disables veritesting-style state merging in the fork
        engine, so decode siblings that rejoin at the post-instruction
        state are explored as separate physical paths — the report and
        certificate are byte-identical, only slower; for benchmarking.
        --audit turns on proof-carrying solving: the SAT solver logs
        clausal (RUP) proofs and an independent checker certifies every
        answer — models by evaluation, UNSAT cores by conflict-cone
        replay. The report and certificate are byte-identical with and
        without it; a rejected answer exits 1. --audit-json dumps the
        retained replay units as a symcosim-audit/1 document that
        `symcosim-lint --audit` re-verifies offline (implies --audit).

    symcosim-cli inject <E0..E9> [--limit N] [--jobs N] [--seed N]
                        [--engine fork|reexec] [--fuzz] [--hybrid]
                        [--no-solver-chain] [--no-incremental]
                        [--no-preflight] [--no-merge]
        Seed one of the paper's Table II faults into the core and hunt it
        symbolically (default), by fuzzing (--fuzz), or hybrid (--hybrid).

    symcosim-cli fuzz [--runs N] [--seed N] [--coverage] [--inject Ek]
        Run the concrete fuzzing baseline against corrected models.

    symcosim-cli asm
        Assemble RV32I+Zicsr text from stdin, print one hex word per line.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&args) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    match args.first().map(String::as_str) {
        Some("verify") => cmd_verify(&args[1..]),
        Some("inject") => cmd_inject(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("asm") => cmd_asm(),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}").into()),
    }
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<u64>, Box<dyn Error>> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        let value = args
            .get(pos + 1)
            .ok_or_else(|| format!("{flag} expects a value"))?;
        return Ok(Some(value.parse()?));
    }
    Ok(None)
}

fn flag_string(args: &[String], flag: &str) -> Result<Option<String>, Box<dyn Error>> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        let value = args
            .get(pos + 1)
            .ok_or_else(|| format!("{flag} expects a value"))?;
        return Ok(Some(value.clone()));
    }
    Ok(None)
}

fn flag_engine(args: &[String]) -> Result<Option<EngineKind>, Box<dyn Error>> {
    if let Some(pos) = args.iter().position(|a| a == "--engine") {
        let value = args.get(pos + 1).ok_or("--engine expects a value")?;
        let kind = EngineKind::parse(value)
            .ok_or_else(|| format!("unknown engine {value:?} (expected fork or reexec)"))?;
        return Ok(Some(kind));
    }
    Ok(None)
}

/// Runs the session sequentially or, with `--jobs` ≥ 2, on worker threads
/// with a live status line on stderr (when stderr is a terminal).
fn run_session(session: VerifySession, jobs: usize) -> VerifyReport {
    if jobs <= 1 {
        return session.run();
    }
    if !std::io::stderr().is_terminal() {
        return session.run_parallel(jobs);
    }
    let (sender, receiver) = std::sync::mpsc::channel();
    let printer = std::thread::spawn(move || {
        for event in receiver {
            match event {
                ProgressEvent::PathDone {
                    paths_done,
                    queued,
                    elapsed_ms,
                    ..
                } => eprint!(
                    "\r[{:>5}.{}s] {paths_done} paths explored, {queued} queued    ",
                    elapsed_ms / 1000,
                    elapsed_ms % 1000 / 100
                ),
                ProgressEvent::Finished { .. } => eprint!("\r{:64}\r", ""),
                _ => {}
            }
        }
    });
    let report = session.run_parallel_with_progress(jobs, Some(sender));
    let _ = printer.join();
    report
}

fn parse_error(token: &str) -> Result<InjectedError, Box<dyn Error>> {
    InjectedError::ALL
        .into_iter()
        .find(|e| e.id().eq_ignore_ascii_case(token))
        .ok_or_else(|| format!("unknown error id {token:?} (expected E0..E9)").into())
}

fn cmd_verify(args: &[String]) -> Result<(), Box<dyn Error>> {
    let mut config = SessionConfig::table1();
    if args.iter().any(|a| a == "--rv32i-only") {
        config.constraint = InstrConstraint::BlockSystem;
    }
    if let Some(limit) = flag_value(args, "--limit")? {
        config.instr_limit = limit as u32;
        config.cycle_limit = 64 * limit;
    }
    if let Some(paths) = flag_value(args, "--paths")? {
        config.max_paths = paths as usize;
    }
    if let Some(window) = flag_value(args, "--window")? {
        config.symbolic_regs = window as usize;
    }
    if let Some(seed) = flag_value(args, "--seed")? {
        config.seed = seed;
    }
    if args.iter().any(|a| a == "--lint") {
        config.lint_ir = true;
    }
    if let Some(engine) = flag_engine(args)? {
        config.engine = engine;
    }
    if let Some(opcode) = flag_string(args, "--opcode")? {
        let digits = opcode.strip_prefix("0x").unwrap_or(&opcode);
        let word =
            u32::from_str_radix(digits, 16).map_err(|e| format!("bad --opcode {opcode:?}: {e}"))?;
        config.constraint = InstrConstraint::OnlyOpcode(word);
    }
    if args.iter().any(|a| a == "--no-solver-chain") {
        config.solver_chain = false;
    }
    if args.iter().any(|a| a == "--no-incremental") {
        config.incremental = false;
    }
    if args.iter().any(|a| a == "--no-preflight") {
        config.preflight = false;
    }
    if args.iter().any(|a| a == "--no-merge") {
        config.merge = false;
    }
    let certify = args.iter().any(|a| a == "--certify");
    let report_json = flag_string(args, "--report-json")?;
    if certify || report_json.is_some() {
        config.collect_coverage = true;
    }
    let audit_json = flag_string(args, "--audit-json")?;
    if args.iter().any(|a| a == "--audit") || audit_json.is_some() {
        config.audit = true;
    }
    let jobs = flag_value(args, "--jobs")?.unwrap_or(1) as usize;
    let slices = flag_value(args, "--slices")?.unwrap_or(1) as usize;
    if slices > 1 {
        if !certify {
            return Err("--slices shards the coverage proof; it requires --certify".into());
        }
        if report_json.is_some() {
            return Err(
                "--slices produces per-slice reports; --report-json only fits a single run".into(),
            );
        }
        return cmd_verify_sliced(config, slices, jobs, audit_json);
    }
    let audit = config.audit;
    let report = run_session(VerifySession::new(config)?, jobs);
    print!("{report}");
    if let Some(path) = report_json {
        std::fs::write(&path, report.to_json())?;
        println!("report dumped to {path}");
    }
    if let Some(path) = audit_json {
        let dump = AuditDump::new(report.proof_audit, report.proof_audit_units.clone());
        std::fs::write(&path, dump.to_json())?;
        println!("audit artifact dumped to {path}");
    }
    if certify {
        let coverage = report
            .coverage
            .as_ref()
            .expect("--certify collects coverage");
        let mut certificate = Certificate::certify(coverage);
        if audit {
            certificate = certificate.with_proof_audit(report.proof_audit);
        }
        print!("{certificate}");
        if certificate.findings() > 0 {
            // Uncovered decode words or double-claimed paths: the run's
            // coverage argument does not hold.
            std::process::exit(1);
        }
    }
    if report.proof_audit_failure.is_some() {
        // An answer the solver gave could not be independently certified
        // (the report's Display already named the first rejection).
        std::process::exit(1);
    }
    Ok(())
}

/// `verify --certify --slices N`: verify each cube-disjoint decode-space
/// slice in its own session, prove the slices partition the legal domain
/// and certify the merged coverage. The certificate is byte-identical to
/// the unsliced run's.
fn cmd_verify_sliced(
    config: SessionConfig,
    slices: usize,
    jobs: usize,
    audit_json: Option<String>,
) -> Result<(), Box<dyn Error>> {
    let cubes = partition_universe(slices);
    let mut parts = Vec::with_capacity(cubes.len());
    let mut audit_stats = symcosim_core::ProofAuditStats::default();
    let mut audit_units = Vec::new();
    let mut audit_failure = None;
    for (index, cube) in cubes.iter().enumerate() {
        let mut slice_config = config.clone();
        slice_config.slice = Some(*cube);
        let mut report = run_session(VerifySession::new(slice_config)?, jobs);
        println!(
            "slice {}/{} (mask={:08x} value={:08x}): {} paths, {} findings",
            index + 1,
            cubes.len(),
            cube.mask,
            cube.value,
            report.paths_complete + report.paths_partial,
            report.findings.len(),
        );
        audit_stats = audit_stats.merge(report.proof_audit);
        audit_units.append(&mut report.proof_audit_units);
        if audit_failure.is_none() {
            audit_failure = report.proof_audit_failure.clone();
        }
        parts.push(CoverageSlice {
            cube: *cube,
            data: report.coverage.expect("--certify collects coverage"),
        });
    }
    if let Some(path) = audit_json {
        let dump = AuditDump::new(audit_stats, audit_units);
        std::fs::write(&path, dump.to_json())?;
        println!("audit artifact dumped to {path}");
    }
    let (domain, domain_exact) = project_domain(config.constraint, None);
    let merged = merge_slice_coverage(domain, domain_exact, &parts)
        .map_err(|error| format!("slice merge rejected: {error}"))?;
    let mut certificate = Certificate::certify(&merged);
    if config.audit {
        certificate = certificate.with_proof_audit(audit_stats);
    }
    print!("{certificate}");
    if let Some(failure) = audit_failure {
        println!("proof audit FAILURE: {failure}");
        std::process::exit(1);
    }
    if certificate.findings() > 0 {
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_inject(args: &[String]) -> Result<(), Box<dyn Error>> {
    let id = args.first().ok_or("inject expects an error id (E0..E9)")?;
    let error = parse_error(id)?;
    println!("injected fault: {error}");

    if args.iter().any(|a| a == "--fuzz") {
        let mut config = FuzzConfig::rv32i_only();
        config.inject = Some(error);
        let outcome = fuzz::run_coverage_guided(&config);
        report_fuzz(&outcome);
        return Ok(());
    }

    let mut session = SessionConfig::rv32i_only();
    session.inject = Some(error);
    if let Some(limit) = flag_value(args, "--limit")? {
        session.instr_limit = limit as u32;
        session.cycle_limit = 64 * limit;
    }
    if let Some(seed) = flag_value(args, "--seed")? {
        session.seed = seed;
    }
    if let Some(engine) = flag_engine(args)? {
        session.engine = engine;
    }
    if args.iter().any(|a| a == "--no-solver-chain") {
        session.solver_chain = false;
    }
    if args.iter().any(|a| a == "--no-incremental") {
        session.incremental = false;
    }
    if args.iter().any(|a| a == "--no-preflight") {
        session.preflight = false;
    }
    if args.iter().any(|a| a == "--no-merge") {
        session.merge = false;
    }
    let jobs = flag_value(args, "--jobs")?.unwrap_or(1) as usize;

    if args.iter().any(|a| a == "--hybrid") {
        let mut fuzz_config = FuzzConfig::rv32i_only();
        fuzz_config.inject = Some(error);
        let outcome = fuzz::run_hybrid(&fuzz_config, session, 50_000);
        match outcome.found_by {
            Some(phase) => println!("found by the {phase:?} phase"),
            None => println!("not found"),
        }
        report_fuzz(&outcome.fuzz);
        if let Some(report) = outcome.report {
            print!("{report}");
        }
        return Ok(());
    }

    let report = run_session(VerifySession::new(session)?, jobs);
    print!("{report}");
    match report.first_mismatch() {
        Some(finding) => {
            if let Some(witness) = &finding.witness {
                println!("reproducer: {witness}");
            }
        }
        None => println!("fault not found within the configured budget"),
    }
    Ok(())
}

fn cmd_fuzz(args: &[String]) -> Result<(), Box<dyn Error>> {
    let mut config = FuzzConfig::rv32i_only();
    if let Some(runs) = flag_value(args, "--runs")? {
        config.max_runs = runs;
    }
    if let Some(seed) = flag_value(args, "--seed")? {
        config.seed = seed;
    }
    if let Some(pos) = args.iter().position(|a| a == "--inject") {
        let id = args.get(pos + 1).ok_or("--inject expects an error id")?;
        config.inject = Some(parse_error(id)?);
    }
    let outcome = if args.iter().any(|a| a == "--coverage") {
        fuzz::run_coverage_guided(&config)
    } else {
        fuzz::run(&config)
    };
    report_fuzz(&outcome);
    Ok(())
}

fn report_fuzz(outcome: &fuzz::FuzzOutcome) {
    match &outcome.mismatch {
        Some(mismatch) => println!(
            "mismatch after {} runs ({} instructions, {:.2?}): {mismatch}",
            outcome.runs, outcome.instructions, outcome.duration
        ),
        None => println!(
            "no mismatch in {} runs ({} instructions, {:.2?})",
            outcome.runs, outcome.instructions, outcome.duration
        ),
    }
}

fn cmd_asm() -> Result<(), Box<dyn Error>> {
    let mut source = String::new();
    std::io::stdin().read_to_string(&mut source)?;
    let words = symcosim_isa::asm::assemble(&source)?;
    for word in words {
        println!("{word:08x}");
    }
    Ok(())
}
