//! Concrete replay of test vectors.
//!
//! Every mismatch found symbolically comes with a [`TestVector`] — a full
//! concrete assignment to the symbolic inputs (instruction words, the
//! sliced register window, the data memory). [`replay`] feeds that vector
//! into a *concrete* co-simulation of the same configuration, which must
//! deterministically reproduce the mismatch. This is the KLEE `.ktest`
//! replay flow, and the strongest possible check that a symbolic finding
//! is real.

use symcosim_symex::{ConcreteDomain, TestVector};

use crate::cosim::{CoSim, CosimResult};
use crate::voter::ConcreteJudge;
use crate::{SessionConfig, SymbolicInstrMemory};

/// Replays a test vector concretely under `config`.
///
/// The vector's `imem_*` entries feed the instruction stream in generation
/// order, `reg_x<i>` entries seed both register files, and `dmem_<i>`
/// entries seed both data memories. Returns the concrete co-simulation
/// result; for a vector extracted from a mismatch path, the result carries
/// the reproduced mismatch.
///
/// # Example
///
/// ```
/// use symcosim_core::{replay, SessionConfig, VerifySession};
/// use symcosim_microrv32::InjectedError;
///
/// # fn main() -> Result<(), symcosim_core::SessionError> {
/// let mut config = SessionConfig::rv32i_only();
/// config.inject = Some(InjectedError::E3AddiStuckAt0Lsb);
/// let report = VerifySession::new(config.clone())?.run();
/// let finding = report.first_mismatch().expect("found");
/// let vector = finding.witness.as_ref().expect("witness emitted");
/// let rerun = replay(&config, vector);
/// assert!(rerun.mismatch.is_some(), "the vector reproduces the bug");
/// # Ok(())
/// # }
/// ```
pub fn replay(config: &SessionConfig, vector: &TestVector) -> CosimResult {
    let mut dom = ConcreteDomain::new();
    let instrs: Vec<u32> = vector
        .entries()
        .iter()
        .filter(|e| e.name.starts_with("imem_"))
        .map(|e| e.value as u32)
        .collect();
    let imem = SymbolicInstrMemory::with_generator(move |_dom, index| {
        instrs.get(index as usize).copied().unwrap_or(0)
    });
    let mut cosim = CoSim::new(
        &mut dom,
        config.core_config.clone(),
        config.iss_config.clone(),
        config.inject,
        imem,
        0, // registers are seeded from the vector below
        config.dmem_words,
        config.instr_limit,
        config.cycle_limit,
    );
    for entry in vector.entries() {
        if let Some(index) = entry
            .name
            .strip_prefix("reg_x")
            .and_then(|s| s.parse().ok())
        {
            let index: usize = index;
            if index < 32 {
                cosim.core.set_register(index, entry.value as u32);
                cosim.iss.set_register(index, entry.value as u32);
            }
        } else if let Some(index) = entry
            .name
            .strip_prefix("dmem_")
            .and_then(|s| s.parse().ok())
        {
            let index: usize = index;
            cosim.core_dmem.set_word(index, entry.value as u32);
            cosim.iss_dmem.set_word(index, entry.value as u32);
        }
    }
    cosim.run(&mut dom, &mut ConcreteJudge)
}
