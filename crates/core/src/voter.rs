//! The voter: detects functional mismatches between core and ISS.

use std::fmt;

use symcosim_rtl::RvfiRecord;
use symcosim_symex::{ConcreteDomain, Domain, PathProbe};

/// Which architectural observation disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MismatchKind {
    /// One model trapped and the other did not, or the causes differ
    /// (`None` = no trap, `Some(cause)` = trapped with that `mcause`).
    TrapDisagreement {
        /// The RTL core's outcome.
        core: Option<u32>,
        /// The ISS's outcome.
        iss: Option<u32>,
    },
    /// The post-instruction program counters can differ.
    PcMismatch,
    /// The reported destination register indices can differ.
    RdAddrMismatch,
    /// The reported destination register write values can differ.
    RdValueMismatch,
    /// Architectural register `index` can differ after the instruction.
    RegFileMismatch {
        /// Register index (1..32).
        index: usize,
    },
    /// Data memory word `word_index` can differ at the end of the run.
    MemoryMismatch {
        /// Word index within the data memory.
        word_index: usize,
    },
}

impl fmt::Display for MismatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MismatchKind::TrapDisagreement { core, iss } => {
                let show = |o: &Option<u32>| match o {
                    None => "no trap".to_string(),
                    Some(cause) => format!("trap (cause {cause})"),
                };
                write!(
                    f,
                    "trap disagreement: core {}, iss {}",
                    show(core),
                    show(iss)
                )
            }
            MismatchKind::PcMismatch => f.write_str("next-PC mismatch"),
            MismatchKind::RdAddrMismatch => f.write_str("destination register index mismatch"),
            MismatchKind::RdValueMismatch => f.write_str("destination register value mismatch"),
            MismatchKind::RegFileMismatch { index } => {
                write!(f, "register file mismatch at x{index}")
            }
            MismatchKind::MemoryMismatch { word_index } => {
                write!(f, "data memory mismatch at word {word_index}")
            }
        }
    }
}

/// A functional difference between the two models, found on one path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// What disagreed.
    pub kind: MismatchKind,
    /// Zero-based index of the instruction that exposed it.
    pub instr_index: u64,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instruction {}: {}", self.instr_index, self.kind)
    }
}

/// Domain-specific mismatch oracle.
///
/// The voter builds *can-these-differ* conditions; how they are discharged
/// depends on the domain: concretely it is a plain comparison, symbolically
/// a satisfiability query against the path condition. `commit` pins a
/// discovered mismatch into the path so the extracted test vector
/// reproduces it.
pub trait Judge<D: Domain> {
    /// Can `cond` be true under the current path?
    fn possibly_true(&mut self, dom: &mut D, cond: D::Bool) -> bool;
    /// Pins `cond` (already known possible) into the path condition.
    fn commit(&mut self, dom: &mut D, cond: D::Bool);
}

/// Concrete-domain judge: conditions are plain booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConcreteJudge;

impl Judge<ConcreteDomain> for ConcreteJudge {
    fn possibly_true(&mut self, _dom: &mut ConcreteDomain, cond: bool) -> bool {
        cond
    }

    fn commit(&mut self, _dom: &mut ConcreteDomain, _cond: bool) {}
}

/// Symbolic-domain judge: conditions go to the solver.
///
/// Blanket over [`PathProbe`], so the same judge serves the re-execution
/// executor ([`SymExec`](symcosim_symex::SymExec)) and the fork-engine
/// executor ([`ForkExec`](symcosim_symex::ForkExec)).
#[derive(Debug, Clone, Copy, Default)]
pub struct SymbolicJudge;

impl<D: PathProbe> Judge<D> for SymbolicJudge {
    fn possibly_true(&mut self, dom: &mut D, cond: symcosim_symex::TermId) -> bool {
        dom.check_sat(cond)
    }

    fn commit(&mut self, dom: &mut D, cond: symcosim_symex::TermId) {
        dom.add_constraint(cond);
    }
}

/// Compares per-instruction retirement behaviour of the two models.
///
/// Modelled on the paper's RVFI-based voter: trap outcome, old/new PC and
/// the destination register write are checked, plus (strictly stronger) the
/// entire architectural register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Voter {
    /// Compare the post-instruction PC.
    pub compare_pc: bool,
    /// Compare the RVFI destination-register fields.
    pub compare_rd: bool,
    /// Compare all 32 architectural registers.
    pub compare_regfile: bool,
}

impl Default for Voter {
    fn default() -> Voter {
        Voter {
            compare_pc: true,
            compare_rd: true,
            compare_regfile: true,
        }
    }
}

impl Voter {
    /// Creates the default (full-comparison) voter.
    pub fn new() -> Voter {
        Voter::default()
    }

    /// Compares one retirement; returns the first mismatch found.
    #[allow(clippy::too_many_arguments)]
    pub fn compare_step<D, J>(
        &self,
        dom: &mut D,
        judge: &mut J,
        instr_index: u64,
        core_retire: &RvfiRecord<D::Word>,
        iss_retire: &RvfiRecord<D::Word>,
        core_regs: &[D::Word; 32],
        iss_regs: &[D::Word; 32],
    ) -> Option<Mismatch>
    where
        D: Domain,
        J: Judge<D>,
    {
        // Trap outcome is concrete control flow: compare directly.
        let core_trap = core_retire
            .trap
            .then_some(core_retire.trap_cause.unwrap_or(0));
        let iss_trap = iss_retire
            .trap
            .then_some(iss_retire.trap_cause.unwrap_or(0));
        if core_trap != iss_trap {
            return Some(Mismatch {
                kind: MismatchKind::TrapDisagreement {
                    core: core_trap,
                    iss: iss_trap,
                },
                instr_index,
            });
        }

        if self.compare_pc {
            let ne = dom.ne_w(core_retire.pc_wdata, iss_retire.pc_wdata);
            if judge.possibly_true(dom, ne) {
                judge.commit(dom, ne);
                return Some(Mismatch {
                    kind: MismatchKind::PcMismatch,
                    instr_index,
                });
            }
        }

        if self.compare_rd && !core_retire.trap {
            let ne = dom.ne_w(core_retire.rd_addr, iss_retire.rd_addr);
            if judge.possibly_true(dom, ne) {
                judge.commit(dom, ne);
                return Some(Mismatch {
                    kind: MismatchKind::RdAddrMismatch,
                    instr_index,
                });
            }
            let ne = dom.ne_w(core_retire.rd_wdata, iss_retire.rd_wdata);
            if judge.possibly_true(dom, ne) {
                judge.commit(dom, ne);
                return Some(Mismatch {
                    kind: MismatchKind::RdValueMismatch,
                    instr_index,
                });
            }
        }

        if self.compare_regfile {
            for index in 1..32 {
                let ne = dom.ne_w(core_regs[index], iss_regs[index]);
                if judge.possibly_true(dom, ne) {
                    judge.commit(dom, ne);
                    return Some(Mismatch {
                        kind: MismatchKind::RegFileMismatch { index },
                        instr_index,
                    });
                }
            }
        }

        None
    }

    /// Compares the two data memories at the end of a run.
    pub fn compare_memory<D, J>(
        &self,
        dom: &mut D,
        judge: &mut J,
        instr_index: u64,
        core_words: &[D::Word],
        iss_words: &[D::Word],
    ) -> Option<Mismatch>
    where
        D: Domain,
        J: Judge<D>,
    {
        debug_assert_eq!(core_words.len(), iss_words.len());
        for (word_index, (a, b)) in core_words.iter().zip(iss_words).enumerate() {
            let ne = dom.ne_w(*a, *b);
            if judge.possibly_true(dom, ne) {
                judge.commit(dom, ne);
                return Some(Mismatch {
                    kind: MismatchKind::MemoryMismatch { word_index },
                    instr_index,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(pc_wdata: u32, rd_addr: u32, rd_wdata: u32, trap: Option<u32>) -> RvfiRecord<u32> {
        RvfiRecord {
            valid: true,
            order: 0,
            insn: 0x13,
            trap: trap.is_some(),
            trap_cause: trap,
            pc_rdata: 0,
            pc_wdata,
            rd_addr,
            rd_wdata,
        }
    }

    #[test]
    fn equal_records_produce_no_mismatch() {
        let mut dom = ConcreteDomain::new();
        let voter = Voter::new();
        let regs = [0u32; 32];
        let a = record(4, 1, 42, None);
        let result = voter.compare_step(
            &mut dom,
            &mut ConcreteJudge,
            0,
            &a,
            &a.clone(),
            &regs,
            &regs,
        );
        assert!(result.is_none());
    }

    #[test]
    fn trap_disagreement_detected_first() {
        let mut dom = ConcreteDomain::new();
        let voter = Voter::new();
        let regs = [0u32; 32];
        let core = record(0, 0, 0, Some(2));
        let iss = record(4, 1, 42, None);
        let m = voter
            .compare_step(&mut dom, &mut ConcreteJudge, 3, &core, &iss, &regs, &regs)
            .expect("mismatch");
        assert_eq!(
            m.kind,
            MismatchKind::TrapDisagreement {
                core: Some(2),
                iss: None
            }
        );
        assert_eq!(m.instr_index, 3);
    }

    #[test]
    fn differing_causes_disagree() {
        let mut dom = ConcreteDomain::new();
        let voter = Voter::new();
        let regs = [0u32; 32];
        let core = record(0, 0, 0, Some(2));
        let iss = record(0, 0, 0, Some(4));
        let m = voter
            .compare_step(&mut dom, &mut ConcreteJudge, 0, &core, &iss, &regs, &regs)
            .expect("mismatch");
        assert!(matches!(m.kind, MismatchKind::TrapDisagreement { .. }));
    }

    #[test]
    fn pc_then_rd_then_regfile_order() {
        let mut dom = ConcreteDomain::new();
        let voter = Voter::new();
        let regs = [0u32; 32];
        let base = record(4, 1, 42, None);

        let pc_diff = record(8, 1, 42, None);
        let m = voter
            .compare_step(
                &mut dom,
                &mut ConcreteJudge,
                0,
                &pc_diff,
                &base,
                &regs,
                &regs,
            )
            .expect("pc mismatch");
        assert_eq!(m.kind, MismatchKind::PcMismatch);

        let rd_diff = record(4, 2, 42, None);
        let m = voter
            .compare_step(
                &mut dom,
                &mut ConcreteJudge,
                0,
                &rd_diff,
                &base,
                &regs,
                &regs,
            )
            .expect("rd mismatch");
        assert_eq!(m.kind, MismatchKind::RdAddrMismatch);

        let val_diff = record(4, 1, 43, None);
        let m = voter
            .compare_step(
                &mut dom,
                &mut ConcreteJudge,
                0,
                &val_diff,
                &base,
                &regs,
                &regs,
            )
            .expect("value mismatch");
        assert_eq!(m.kind, MismatchKind::RdValueMismatch);

        let mut core_regs = regs;
        core_regs[7] = 1;
        let m = voter
            .compare_step(
                &mut dom,
                &mut ConcreteJudge,
                0,
                &base,
                &base.clone(),
                &core_regs,
                &regs,
            )
            .expect("regfile mismatch");
        assert_eq!(m.kind, MismatchKind::RegFileMismatch { index: 7 });
    }

    #[test]
    fn memory_comparison() {
        let mut dom = ConcreteDomain::new();
        let voter = Voter::new();
        let a = [1u32, 2, 3];
        let b = [1u32, 9, 3];
        let m = voter
            .compare_memory(&mut dom, &mut ConcreteJudge, 5, &a, &b)
            .expect("memory mismatch");
        assert_eq!(m.kind, MismatchKind::MemoryMismatch { word_index: 1 });
        assert!(voter
            .compare_memory(&mut dom, &mut ConcreteJudge, 5, &a, &a)
            .is_none());
    }

    #[test]
    fn display_is_informative() {
        let m = Mismatch {
            kind: MismatchKind::TrapDisagreement {
                core: Some(2),
                iss: None,
            },
            instr_index: 1,
        };
        let text = m.to_string();
        assert!(text.contains("instruction 1"));
        assert!(text.contains("cause 2"));
    }
}
