//! Symbolic co-simulation for cross-level processor verification.
//!
//! This crate is the paper's contribution: it wires the cycle-accurate
//! MicroRV32-equivalent core ([`symcosim-microrv32`]) and the reference ISS
//! ([`symcosim-iss`]) into one co-simulation, makes the instruction stream
//! and a sliced window of the register file symbolic, explores the joint
//! state space with the symbolic engine ([`symcosim-symex`]), and compares
//! retirement behaviour with a voter. Every functional difference between
//! the two models becomes a [`Finding`] with a concrete reproducing
//! [`TestVector`](symcosim_symex::TestVector).
//!
//! The building blocks mirror Section IV of the paper:
//!
//! * [`SymbolicInstrMemory`] — the shared, read-only, lazily generated
//!   symbolic instruction memory (cached per address so both models always
//!   see identical instructions),
//! * [`SymbolicDataMemory`] — per-model data memories initialised with the
//!   *same* symbolic words,
//! * sliced symbolic registers ([`SessionConfig::symbolic_regs`]) — `x0`
//!   hardwired, a small window of symbolic registers, the rest concrete,
//! * the [`Voter`] — compares trap outcome, PC, destination-register write
//!   and the full architectural register file after every instruction,
//! * the execution controller — instruction and cycle limits per path
//!   ([`SessionConfig::instr_limit`], [`SessionConfig::cycle_limit`]),
//! * [`VerifySession`] — the top-level flow: explore, vote, classify,
//!   report,
//! * [`fuzz`] — the random/concrete baseline the paper's prior work used,
//!   for head-to-head benchmarks.
//!
//! # Example
//!
//! ```
//! use symcosim_core::{SessionConfig, VerifySession};
//! use symcosim_microrv32::InjectedError;
//!
//! # fn main() -> Result<(), symcosim_core::SessionError> {
//! let mut config = SessionConfig::rv32i_only();
//! config.inject = Some(InjectedError::E6BneBehavesLikeBeq);
//! let report = VerifySession::new(config)?.run();
//! let finding = report.first_mismatch().expect("the injected bug is found");
//! println!("found: {finding}");
//! # Ok(())
//! # }
//! ```
//!
//! [`symcosim-microrv32`]: ../symcosim_microrv32/index.html
//! [`symcosim-iss`]: ../symcosim_iss/index.html
//! [`symcosim-symex`]: ../symcosim_symex/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod certify;
mod cosim;
pub mod fuzz;
pub mod job;
pub mod json;
mod memory;
mod replay;
mod report;
mod session;
mod voter;

pub use audit::{AuditDump, AUDIT_SCHEMA};
pub use certify::{
    merge_slice_coverage, BoundCause, Certificate, CoverageData, CoverageSlice, MergeError,
    PathCoverage, SlotCertificate, Verdict,
};
pub use cosim::{CoSim, CosimOutcome, CosimResult, StopReason};
pub use job::{JobSpec, JOB_SCHEMA};
pub use memory::{IssDataBus, SymbolicDataMemory, SymbolicInstrMemory};
pub use replay::replay;
pub use report::{Finding, FindingClass, VerifyReport, REPORT_SCHEMA};
pub use session::{project_domain, InstrConstraint, SessionConfig, SessionError, VerifySession};
pub use symcosim_exec::ProgressEvent;
pub use symcosim_symex::{ChainSeed, CoreReplayUnit, EngineKind, ProofAuditStats, QueryCacheStats};
pub use voter::{ConcreteJudge, Judge, Mismatch, MismatchKind, SymbolicJudge, Voter};
