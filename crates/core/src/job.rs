//! The `symcosim-job/1` document: a verification job as submitted to the
//! `symcosim-serve` daemon (`POST /jobs`).
//!
//! A job names a session preset plus the handful of knobs the service
//! exposes, and a slice count: the daemon shards the decode space into
//! that many cube-disjoint slices
//! ([`partition_universe`](symcosim_isa::pattern::partition_universe)),
//! runs one slice-scoped session per cube, and merges the per-slice
//! coverage back into the single-run certificate
//! ([`merge_slice_coverage`](crate::merge_slice_coverage)). The canonical
//! JSON form doubles as the warm-cache identity: the solver-chain seed
//! store is keyed on ([`JobSpec::config_hash`], slice cube), which is
//! exactly the condition under which replaying a cached chain is sound.

use symcosim_symex::EngineKind;

use crate::json::{self, JsonValue, JsonWriter};
use crate::session::{InstrConstraint, SessionConfig};

/// Schema identifier of the job document.
pub const JOB_SCHEMA: &str = "symcosim-job/1";

/// A verification job, the unit of work the service accepts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Session preset: `"rv32i-only"` (corrected models) or `"table1"`
    /// (shipped models, catalogue mode).
    pub preset: String,
    /// Restrict generation to one major opcode
    /// ([`InstrConstraint::OnlyOpcode`]); `None` keeps the preset's
    /// constraint.
    pub opcode: Option<u32>,
    /// Instructions per path.
    pub instr_limit: u32,
    /// Path budget per slice.
    pub max_paths: usize,
    /// Path engine.
    pub engine: EngineKind,
    /// Exploration seed.
    pub seed: u64,
    /// Route queries through the solver chain.
    pub solver_chain: bool,
    /// Independently audit every certificate-bearing solver answer
    /// ([`SessionConfig::audit`]).
    pub audit: bool,
    /// Number of cube-disjoint decode-space slices to shard the job into.
    pub slices: usize,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            preset: "rv32i-only".to_string(),
            opcode: None,
            instr_limit: 1,
            max_paths: 100_000,
            engine: EngineKind::Fork,
            seed: 0x5eed_cafe,
            solver_chain: true,
            audit: false,
            slices: 1,
        }
    }
}

impl JobSpec {
    /// The job as its canonical `symcosim-job/1` document. Field order and
    /// formatting are stable, so equal specs serialise identically — the
    /// property [`JobSpec::config_hash`] relies on.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        json::header(&mut w, JOB_SCHEMA);
        w.string_field("preset", &self.preset);
        match self.opcode {
            Some(opcode) => w.number_field("opcode", u64::from(opcode)),
            None => w.null_field("opcode"),
        }
        w.number_field("instr_limit", u64::from(self.instr_limit));
        w.number_field("max_paths", self.max_paths as u64);
        w.string_field(
            "engine",
            match self.engine {
                EngineKind::Reexec => "reexec",
                EngineKind::Fork => "fork",
            },
        );
        w.number_field("seed", self.seed);
        w.bool_field("solver_chain", self.solver_chain);
        w.bool_field("audit", self.audit);
        w.number_field("slices", self.slices as u64);
        w.close_object();
        w.finish()
    }

    /// Parses a job document. Every field except `schema` is optional and
    /// falls back to [`JobSpec::default`], so clients may submit minimal
    /// bodies like `{"schema": "symcosim-job/1", "opcode": 99,
    /// "slices": 2}`.
    ///
    /// # Errors
    ///
    /// Returns a message when the schema tag is missing/wrong or a field
    /// has the wrong type or an unknown value.
    pub fn from_json(value: &JsonValue) -> Result<JobSpec, String> {
        match value.get("schema").and_then(JsonValue::as_str) {
            Some(JOB_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported schema `{other}`")),
            None => return Err(format!("missing schema tag (expected `{JOB_SCHEMA}`)")),
        }
        let mut spec = JobSpec::default();
        if let Some(preset) = value.get("preset") {
            spec.preset = preset
                .as_str()
                .ok_or("preset must be a string")?
                .to_string();
        }
        if let Some(opcode) = value.get("opcode") {
            spec.opcode = match opcode.as_u64() {
                Some(raw) => {
                    if raw > 0x7f {
                        return Err(format!("opcode {raw:#x} exceeds the 7-bit field"));
                    }
                    Some(raw as u32)
                }
                None if matches!(opcode, JsonValue::Null) => None,
                None => return Err("opcode must be a number or null".to_string()),
            };
        }
        if let Some(limit) = value.get("instr_limit") {
            spec.instr_limit = limit.as_u64().ok_or("instr_limit must be a number")? as u32;
        }
        if let Some(paths) = value.get("max_paths") {
            spec.max_paths = paths.as_u64().ok_or("max_paths must be a number")? as usize;
        }
        if let Some(engine) = value.get("engine") {
            spec.engine = match engine.as_str() {
                Some("fork") => EngineKind::Fork,
                Some("reexec") => EngineKind::Reexec,
                Some(other) => return Err(format!("unknown engine `{other}`")),
                None => return Err("engine must be a string".to_string()),
            };
        }
        if let Some(seed) = value.get("seed") {
            spec.seed = seed.as_u64().ok_or("seed must be a number")?;
        }
        if let Some(chain) = value.get("solver_chain") {
            spec.solver_chain = chain.as_bool().ok_or("solver_chain must be a boolean")?;
        }
        if let Some(audit) = value.get("audit") {
            spec.audit = audit.as_bool().ok_or("audit must be a boolean")?;
        }
        if let Some(slices) = value.get("slices") {
            spec.slices = slices.as_u64().ok_or("slices must be a number")? as usize;
        }
        if spec.slices == 0 || spec.slices > 256 {
            return Err(format!("slices must be in 1..=256, got {}", spec.slices));
        }
        Ok(spec)
    }

    /// The session configuration one slice of this job runs under (the
    /// slice cube itself is set by the scheduler via
    /// [`SessionConfig::slice`]). Coverage collection is always on — the
    /// service's whole output is the certificate.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown preset.
    pub fn session_config(&self) -> Result<SessionConfig, String> {
        let mut config = match self.preset.as_str() {
            "rv32i-only" => SessionConfig::rv32i_only(),
            "table1" => SessionConfig::table1(),
            other => return Err(format!("unknown preset `{other}`")),
        };
        if let Some(opcode) = self.opcode {
            config.constraint = InstrConstraint::OnlyOpcode(opcode);
        }
        config.instr_limit = self.instr_limit;
        config.max_paths = self.max_paths;
        config.engine = self.engine;
        config.seed = self.seed;
        config.solver_chain = self.solver_chain;
        config.audit = self.audit;
        config.collect_coverage = true;
        config.stop_at_first_mismatch = false;
        Ok(config)
    }

    /// FNV-1a hash of the canonical job document with the slice count
    /// normalised out: a slice run depends only on the session
    /// configuration and its own cube, never on how many sibling slices
    /// exist, so seeds transfer between e.g. a 2-slice and a 4-slice
    /// submission of the same job wherever the cubes coincide. The audit
    /// flag is deliberately *not* normalised: a warm slice replays cached
    /// answers instead of solving, and an audited job must re-derive its
    /// answers so the auditor can certify each one — inheriting an
    /// unaudited job's caches would put unchecked answers behind an
    /// audited certificate.
    #[must_use]
    pub fn config_hash(&self) -> u64 {
        let canonical = JobSpec {
            slices: 1,
            ..self.clone()
        };
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in canonical.to_json().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_isa::opcodes;

    #[test]
    fn job_document_round_trips() {
        let spec = JobSpec {
            preset: "table1".to_string(),
            opcode: Some(opcodes::BRANCH & 0x7f),
            instr_limit: 2,
            max_paths: 500,
            engine: EngineKind::Reexec,
            seed: 42,
            solver_chain: false,
            audit: true,
            slices: 3,
        };
        let json = spec.to_json();
        assert!(json.contains("\"schema\": \"symcosim-job/1\""));
        let parsed = JobSpec::from_json(&JsonValue::parse(&json).expect("document parses"))
            .expect("round trip");
        assert_eq!(parsed, spec);
    }

    #[test]
    fn minimal_document_fills_defaults() {
        let value = JsonValue::parse(r#"{"schema": "symcosim-job/1", "opcode": 99, "slices": 2}"#)
            .expect("parses");
        let spec = JobSpec::from_json(&value).expect("minimal body accepted");
        assert_eq!(spec.opcode, Some(0x63));
        assert_eq!(spec.slices, 2);
        assert_eq!(spec.preset, "rv32i-only");
        assert_eq!(spec.engine, EngineKind::Fork);
    }

    #[test]
    fn invalid_documents_are_rejected() {
        let reject = |body: &str| {
            let value = JsonValue::parse(body).expect("parses");
            JobSpec::from_json(&value).expect_err("must reject")
        };
        assert!(reject(r#"{"opcode": 99}"#).contains("schema"));
        assert!(reject(r#"{"schema": "symcosim-job/2"}"#).contains("unsupported"));
        assert!(reject(r#"{"schema": "symcosim-job/1", "opcode": 300}"#).contains("7-bit"));
        assert!(reject(r#"{"schema": "symcosim-job/1", "slices": 0}"#).contains("slices"));
        assert!(reject(r#"{"schema": "symcosim-job/1", "engine": "warp"}"#).contains("engine"));
        assert!(
            JobSpec::from_json(&JsonValue::parse("{\"schema\": \"symcosim-job/1\"}").unwrap())
                .is_ok()
        );
    }

    #[test]
    fn config_hash_ignores_slice_count_only() {
        let base = JobSpec::default();
        let mut resliced = base.clone();
        resliced.slices = 8;
        assert_eq!(base.config_hash(), resliced.config_hash());

        // Audited jobs must not inherit an unaudited job's warm caches:
        // replayed answers would reach the certificate unaudited.
        let mut audited = base.clone();
        audited.audit = true;
        assert_ne!(base.config_hash(), audited.config_hash());

        let mut reseeded = base.clone();
        reseeded.seed = 7;
        assert_ne!(base.config_hash(), reseeded.config_hash());

        let mut other_engine = base.clone();
        other_engine.engine = EngineKind::Reexec;
        assert_ne!(base.config_hash(), other_engine.config_hash());
    }

    #[test]
    fn session_config_applies_overrides() {
        let mut spec = JobSpec {
            opcode: Some(opcodes::BRANCH & 0x7f),
            max_paths: 77,
            ..JobSpec::default()
        };
        let config = spec.session_config().expect("valid");
        assert_eq!(
            config.constraint,
            InstrConstraint::OnlyOpcode(opcodes::BRANCH & 0x7f)
        );
        assert_eq!(config.max_paths, 77);
        assert!(config.collect_coverage);
        assert!(!config.stop_at_first_mismatch);

        spec.preset = "nope".to_string();
        assert!(spec.session_config().is_err());
    }
}
