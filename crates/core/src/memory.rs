//! Symbolic instruction and data memories.

use std::sync::{Arc, Mutex};

use symcosim_rtl::Strobe;
use symcosim_symex::Domain;

/// The shared, read-only symbolic instruction memory.
///
/// Instructions are generated lazily: the first fetch of an address marks a
/// fresh 32-bit word symbolic (KLEE's `klee_make_symbolic`) and caches it,
/// so the RTL core and the ISS are always supplied with the *same*
/// instruction for the same address — the paper's guard against false
/// mismatches. An optional constraint callback (the `klee_assume` hook) is
/// applied to every newly generated instruction.
///
/// Addresses may be symbolic; lookup then resolves through
/// [`decide`](Domain::decide), forking over the cached associations.
pub struct SymbolicInstrMemory<D: Domain> {
    entries: Vec<(D::Word, D::Word)>,
    generated: u32,
    constraint: Option<ConstraintFn<D>>,
    /// Applied only to the *first* generated instruction, after
    /// `constraint`. Job slicing hangs its decode-space cube here: slicing
    /// every fetch would shrink the later slots too, so the slice unions
    /// would no longer cover the multi-instruction space.
    first_constraint: Option<ConstraintFn<D>>,
    generator: Option<GeneratorFn<D>>,
    program: Option<Vec<u32>>,
}

/// A per-instruction generation constraint (the `klee_assume` hook).
/// Shared (`Arc`) so snapshots of the memory clone cheaply.
type ConstraintFn<D> = Arc<dyn Fn(&mut D, <D as Domain>::Word) + Send + Sync>;
/// A custom instruction generator (fuzzing and replay feed words here).
/// Clones share the generator — acceptable because generators are only
/// used by concrete fuzz/replay runs, which never snapshot.
type GeneratorFn<D> = Arc<Mutex<dyn FnMut(&mut D, u32) -> <D as Domain>::Word + Send>>;

impl<D: Domain> std::fmt::Debug for SymbolicInstrMemory<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolicInstrMemory")
            .field("cached", &self.entries.len())
            .field("generated", &self.generated)
            .field("constrained", &self.constraint.is_some())
            .field("first_constrained", &self.first_constraint.is_some())
            .finish()
    }
}

// Manual impl: the closures are behind `Arc` precisely so snapshotting
// engines can clone the memory without `D: Clone` or cloneable closures.
impl<D: Domain> Clone for SymbolicInstrMemory<D> {
    fn clone(&self) -> SymbolicInstrMemory<D> {
        SymbolicInstrMemory {
            entries: self.entries.clone(),
            generated: self.generated,
            constraint: self.constraint.clone(),
            first_constraint: self.first_constraint.clone(),
            generator: self.generator.clone(),
            program: self.program.clone(),
        }
    }
}

impl<D: Domain> SymbolicInstrMemory<D> {
    /// Creates an empty instruction memory.
    pub fn new() -> SymbolicInstrMemory<D> {
        SymbolicInstrMemory {
            entries: Vec::new(),
            generated: 0,
            constraint: None,
            first_constraint: None,
            generator: None,
            program: None,
        }
    }

    /// Installs a generation constraint, applied to each fresh
    /// instruction via [`Domain::assume`].
    pub fn with_constraint(
        constraint: impl Fn(&mut D, D::Word) + Send + Sync + 'static,
    ) -> SymbolicInstrMemory<D> {
        SymbolicInstrMemory {
            constraint: Some(Arc::new(constraint)),
            ..SymbolicInstrMemory::new()
        }
    }

    /// Installs a constraint applied (after the per-instruction one) only
    /// to the first generated instruction. Verification-job slicing scopes
    /// its decode-space cube to the first fetch through this hook; see the
    /// field docs for why later fetches must stay unsliced.
    #[must_use]
    pub fn constrain_first(
        mut self,
        constraint: impl Fn(&mut D, D::Word) + Send + Sync + 'static,
    ) -> SymbolicInstrMemory<D> {
        self.first_constraint = Some(Arc::new(constraint));
        self
    }

    /// Replaces the symbolic generator with a custom one (the fuzzing
    /// baseline supplies random concrete words here). The closure receives
    /// the generation index.
    pub fn with_generator(
        generator: impl FnMut(&mut D, u32) -> D::Word + Send + 'static,
    ) -> SymbolicInstrMemory<D> {
        SymbolicInstrMemory {
            generator: Some(Arc::new(Mutex::new(generator))),
            ..SymbolicInstrMemory::new()
        }
    }

    /// Backs the instruction memory with a concrete program (word 0 at
    /// address 0); fetch addresses wrap modulo the program length. Used
    /// for directed program-level co-simulation (e.g. assembled with
    /// [`symcosim_isa::asm::assemble`](../symcosim_isa/asm/fn.assemble.html)).
    ///
    /// Fetches with *symbolic* addresses fall back to symbolic generation;
    /// program mode is intended for concrete-domain runs, where every
    /// fetch address is concrete.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty.
    pub fn from_program(words: Vec<u32>) -> SymbolicInstrMemory<D> {
        assert!(
            !words.is_empty(),
            "program must contain at least one instruction"
        );
        SymbolicInstrMemory {
            program: Some(words),
            ..SymbolicInstrMemory::new()
        }
    }

    /// Number of instructions generated so far.
    pub fn generated(&self) -> u32 {
        self.generated
    }

    /// Term-identical equality for veritesting-style state merging: the
    /// cached address/instruction associations and counters must be equal
    /// term for term, and the constraint/generator hooks must be the
    /// *same* shared closures (`Arc` pointer identity — snapshot clones of
    /// one memory always share them; independently built memories never
    /// merge, which is the sound direction).
    pub fn merge_eq(&self, other: &SymbolicInstrMemory<D>) -> bool
    where
        D::Word: PartialEq,
    {
        fn hook_eq<T: ?Sized>(a: &Option<Arc<T>>, b: &Option<Arc<T>>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
        }
        self.entries == other.entries
            && self.generated == other.generated
            && self.program == other.program
            && hook_eq(&self.constraint, &other.constraint)
            && hook_eq(&self.first_constraint, &other.first_constraint)
            && hook_eq(&self.generator, &other.generator)
    }

    /// Fetches the instruction at `addr`, generating it if needed.
    pub fn fetch(&mut self, dom: &mut D, addr: D::Word) -> D::Word {
        if let (Some(program), Some(concrete)) = (&self.program, dom.word_value(addr)) {
            let word = program[(concrete as usize / 4) % program.len()];
            return dom.const_word(word);
        }
        for (cached_addr, instr) in &self.entries {
            let same = dom.eq_w(addr, *cached_addr);
            if dom.decide(same) {
                return *instr;
            }
        }
        let instr = match &self.generator {
            Some(generator) => generator.lock().expect("generator lock")(dom, self.generated),
            None => {
                let name = match dom.word_value(addr) {
                    Some(concrete) => format!("imem_{concrete:08x}"),
                    None => format!("imem_sym_{}", self.generated),
                };
                dom.fresh_word(&name)
            }
        };
        if let Some(constraint) = &self.constraint {
            constraint(dom, instr);
        }
        if self.generated == 0 {
            if let Some(constraint) = &self.first_constraint {
                constraint(dom, instr);
            }
        }
        self.entries.push((addr, instr));
        self.generated += 1;
        instr
    }
}

impl<D: Domain> Default for SymbolicInstrMemory<D> {
    fn default() -> SymbolicInstrMemory<D> {
        SymbolicInstrMemory::new()
    }
}

/// A small word-addressed data memory initialised with symbolic values.
///
/// The co-simulation creates *two* instances from one
/// [`SymbolicDataMemory::new_pair`] call, so the core's and the ISS's
/// memories start with identical symbolic contents (the paper's guard
/// against false mismatches). Accesses with symbolic addresses select and
/// update through if-then-else chains, never forking.
#[derive(Debug)]
pub struct SymbolicDataMemory<D: Domain> {
    words: Vec<D::Word>,
}

// Manual impl: a derived Clone would demand `D: Clone`, and the
// fork-engine executor that snapshots these memories is not cloneable.
impl<D: Domain> Clone for SymbolicDataMemory<D> {
    fn clone(&self) -> SymbolicDataMemory<D> {
        SymbolicDataMemory {
            words: self.words.clone(),
        }
    }
}

impl<D: Domain> SymbolicDataMemory<D> {
    /// Creates two memories of `num_words` words with identical fresh
    /// symbolic contents (`dmem_0` …).
    ///
    /// # Panics
    ///
    /// Panics unless `num_words` is a power of two.
    pub fn new_pair(
        dom: &mut D,
        num_words: usize,
    ) -> (SymbolicDataMemory<D>, SymbolicDataMemory<D>) {
        assert!(
            num_words.is_power_of_two(),
            "memory size must be a power of two"
        );
        let words: Vec<D::Word> = (0..num_words)
            .map(|i| dom.fresh_word(&format!("dmem_{i}")))
            .collect();
        (
            SymbolicDataMemory {
                words: words.clone(),
            },
            SymbolicDataMemory { words },
        )
    }

    /// Creates a single zero-initialised memory (fuzzing baseline uses
    /// concrete seeds instead of symbols).
    ///
    /// # Panics
    ///
    /// Panics unless `num_words` is a power of two.
    pub fn new_zeroed(dom: &mut D, num_words: usize) -> SymbolicDataMemory<D> {
        assert!(
            num_words.is_power_of_two(),
            "memory size must be a power of two"
        );
        let zero = dom.const_word(0);
        SymbolicDataMemory {
            words: vec![zero; num_words],
        }
    }

    /// Number of 32-bit words.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Term-identical equality for veritesting-style state merging: every
    /// word must be the same hash-consed term handle.
    pub fn merge_eq(&self, other: &SymbolicDataMemory<D>) -> bool
    where
        D::Word: PartialEq,
    {
        self.words == other.words
    }

    /// The raw word storage (voter end-of-run comparison).
    pub fn words(&self) -> &[D::Word] {
        &self.words
    }

    /// Overwrites a word (test setup).
    pub fn set_word(&mut self, index: usize, value: D::Word) {
        let len = self.words.len();
        self.words[index % len] = value;
    }

    /// Selects the word containing byte address `addr` (an ite chain for
    /// symbolic addresses).
    pub fn read_word(&self, dom: &mut D, addr: D::Word) -> D::Word {
        let index = self.index_of(dom, addr);
        if let Some(i) = dom.word_value(index) {
            return self.words[i as usize];
        }
        let mut value = self.words[0];
        for (i, word) in self.words.iter().enumerate().skip(1) {
            let hit = dom.eq_const(index, i as u32);
            value = dom.ite(hit, *word, value);
        }
        value
    }

    /// Replaces lanes of the word containing byte address `addr`:
    /// `word = (word & !mask) | (data & mask)`.
    pub fn write_word_masked(&mut self, dom: &mut D, addr: D::Word, data: D::Word, mask: u32) {
        let index = self.index_of(dom, addr);
        let mask_w = dom.const_word(mask);
        let inv_mask = dom.const_word(!mask);
        if let Some(i) = dom.word_value(index) {
            let kept = dom.and(self.words[i as usize], inv_mask);
            let incoming = dom.and(data, mask_w);
            self.words[i as usize] = dom.or(kept, incoming);
            return;
        }
        for i in 0..self.words.len() {
            let hit = dom.eq_const(index, i as u32);
            let kept = dom.and(self.words[i], inv_mask);
            let incoming = dom.and(data, mask_w);
            let merged = dom.or(kept, incoming);
            self.words[i] = dom.ite(hit, merged, self.words[i]);
        }
    }

    /// Services a strobe-based DBus access (the RTL-core side).
    ///
    /// For loads the returned word carries the selected lanes in place,
    /// as the bus protocol requires.
    pub fn strobe_access(
        &mut self,
        dom: &mut D,
        addr: D::Word,
        write: bool,
        data: D::Word,
        strobe: Strobe,
    ) -> D::Word {
        let mut mask = 0u32;
        for lane in 0..4 {
            if strobe.lanes() & (1 << lane) != 0 {
                mask |= 0xff << (lane * 8);
            }
        }
        if write {
            self.write_word_masked(dom, addr, data, mask);
            dom.const_word(0)
        } else {
            let word = self.read_word(dom, addr);
            dom.and_const(word, mask)
        }
    }

    /// Loads `width_bytes` bytes at byte address `addr`, zero-extended
    /// (the ISS side; handles word-boundary crossings byte by byte).
    pub fn load_bytes(&mut self, dom: &mut D, addr: D::Word, width_bytes: u32) -> D::Word {
        let mut value = dom.const_word(0);
        for i in 0..width_bytes {
            let offset = dom.const_word(i);
            let byte_addr = dom.add(addr, offset);
            let word = self.read_word(dom, byte_addr);
            let lane = dom.and_const(byte_addr, 0x3);
            let shift = dom.shl_const(lane, 3);
            let shifted = dom.lshr(word, shift);
            let byte = dom.and_const(shifted, 0xff);
            let positioned = dom.shl_const(byte, i * 8);
            value = dom.or(value, positioned);
        }
        value
    }

    /// Stores the low `width_bytes` bytes of `value` at byte address
    /// `addr` (the ISS side).
    pub fn store_bytes(&mut self, dom: &mut D, addr: D::Word, value: D::Word, width_bytes: u32) {
        for i in 0..width_bytes {
            let offset = dom.const_word(i);
            let byte_addr = dom.add(addr, offset);
            let lane = dom.and_const(byte_addr, 0x3);
            let byte = dom.lshr_const(value, i * 8);
            let byte = dom.and_const(byte, 0xff);
            let shift = dom.shl_const(lane, 3);
            let positioned = dom.shl(byte, shift);
            // Build a per-lane mask: 0xff << (lane*8). The lane is possibly
            // symbolic, so shift a constant 0xff by the symbolic amount.
            let ff = dom.const_word(0xff);
            let lane_mask = dom.shl(ff, shift);
            self.write_word_masked_sym(dom, byte_addr, positioned, lane_mask);
        }
    }

    /// Like [`write_word_masked`](Self::write_word_masked) but with a
    /// possibly symbolic mask word.
    fn write_word_masked_sym(&mut self, dom: &mut D, addr: D::Word, data: D::Word, mask: D::Word) {
        let index = self.index_of(dom, addr);
        let inv_mask = dom.not_w(mask);
        if let Some(i) = dom.word_value(index) {
            let kept = dom.and(self.words[i as usize], inv_mask);
            let incoming = dom.and(data, mask);
            self.words[i as usize] = dom.or(kept, incoming);
            return;
        }
        for i in 0..self.words.len() {
            let hit = dom.eq_const(index, i as u32);
            let kept = dom.and(self.words[i], inv_mask);
            let incoming = dom.and(data, mask);
            let merged = dom.or(kept, incoming);
            self.words[i] = dom.ite(hit, merged, self.words[i]);
        }
    }

    fn index_of(&self, dom: &mut D, addr: D::Word) -> D::Word {
        let word_index = dom.lshr_const(addr, 2);
        dom.and_const(word_index, (self.words.len() - 1) as u32)
    }
}

/// The ISS bus adapter over a [`SymbolicDataMemory`].
#[derive(Debug)]
pub struct IssDataBus<'m, D: Domain> {
    memory: &'m mut SymbolicDataMemory<D>,
}

impl<'m, D: Domain> IssDataBus<'m, D> {
    /// Wraps a memory as the ISS's data port.
    pub fn new(memory: &'m mut SymbolicDataMemory<D>) -> IssDataBus<'m, D> {
        IssDataBus { memory }
    }
}

impl<D: Domain> symcosim_iss::IssBus<D> for IssDataBus<'_, D> {
    fn load(&mut self, dom: &mut D, addr: D::Word, width_bytes: u32) -> D::Word {
        self.memory.load_bytes(dom, addr, width_bytes)
    }

    fn store(&mut self, dom: &mut D, addr: D::Word, value: D::Word, width_bytes: u32) {
        self.memory.store_bytes(dom, addr, value, width_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_symex::ConcreteDomain;

    type Dom = ConcreteDomain;

    #[test]
    fn instruction_cache_returns_same_word_per_address() {
        let mut dom = Dom::new();
        let mut imem: SymbolicInstrMemory<Dom> = SymbolicInstrMemory::new();
        let a = imem.fetch(&mut dom, 0);
        let b = imem.fetch(&mut dom, 0);
        assert_eq!(a, b);
        assert_eq!(imem.generated(), 1);
        imem.fetch(&mut dom, 4);
        assert_eq!(imem.generated(), 2);
    }

    #[test]
    fn data_memory_pair_starts_identical() {
        let mut dom = Dom::new();
        let (a, b) = SymbolicDataMemory::new_pair(&mut dom, 8);
        assert_eq!(a.words(), b.words());
        assert_eq!(a.num_words(), 8);
    }

    #[test]
    fn strobe_access_reads_and_writes_lanes() {
        let mut dom = Dom::new();
        let mut mem: SymbolicDataMemory<Dom> = SymbolicDataMemory::new_zeroed(&mut dom, 8);
        mem.strobe_access(&mut dom, 4, true, 0xdead_beef, Strobe::WORD);
        let full = mem.strobe_access(&mut dom, 4, false, 0, Strobe::WORD);
        assert_eq!(full, 0xdead_beef);
        let half = mem.strobe_access(
            &mut dom,
            4,
            false,
            0,
            Strobe::from_lanes(0b1100).expect("legal"),
        );
        assert_eq!(half, 0xdead_0000, "lanes stay in place");
        mem.strobe_access(
            &mut dom,
            4,
            true,
            0x0000_5500,
            Strobe::from_lanes(0b0010).expect("legal"),
        );
        let full = mem.strobe_access(&mut dom, 4, false, 0, Strobe::WORD);
        assert_eq!(full, 0xdead_55ef);
    }

    #[test]
    fn byte_interface_crosses_word_boundaries() {
        let mut dom = Dom::new();
        let mut mem: SymbolicDataMemory<Dom> = SymbolicDataMemory::new_zeroed(&mut dom, 8);
        mem.store_bytes(&mut dom, 2, 0xaabb_ccdd, 4); // spans words 0 and 1
        assert_eq!(mem.words()[0], 0xccdd_0000);
        assert_eq!(mem.words()[1], 0x0000_aabb);
        let value = mem.load_bytes(&mut dom, 2, 4);
        assert_eq!(value, 0xaabb_ccdd);
        let half = mem.load_bytes(&mut dom, 3, 2);
        assert_eq!(half, 0xbbcc);
    }

    #[test]
    fn addresses_wrap_by_masking() {
        let mut dom = Dom::new();
        let mut mem: SymbolicDataMemory<Dom> = SymbolicDataMemory::new_zeroed(&mut dom, 4);
        mem.store_bytes(&mut dom, 16, 0x11, 1); // wraps to word 0
        assert_eq!(mem.words()[0], 0x11);
    }
}
