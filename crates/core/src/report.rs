//! Finding classification and the verification report.
//!
//! Reproduces the result taxonomy of Table I: every mismatch is attributed
//! to an instruction or CSR (column *Instruction & CSR*), described
//! (column *Description*), and classified (column *R*) as an RTL error
//! (`E`), an ISS error (`E*`) or a permitted-implementation mismatch (`M`).

use std::fmt;
use std::time::Duration;

use symcosim_isa::{decode, Csr, CsrClass, Instr, Trap};
use symcosim_symex::{
    CoreReplayUnit, ProofAuditStats, QueryCacheStats, SolverChainStats, SolverStats, TestVector,
};

use crate::certify::CoverageData;
use crate::json::{self, JsonWriter};
use crate::voter::{Mismatch, MismatchKind};

/// Table I's *R* column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FindingClass {
    /// `E` — an error in the RTL core.
    RtlError,
    /// `E*` — an error in the reference ISS.
    IssError,
    /// `M` — an implementation mismatch permitted by the ISA.
    ImplMismatch,
    /// The classifier could not attribute the finding.
    Unclassified,
}

impl fmt::Display for FindingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            FindingClass::RtlError => "E",
            FindingClass::IssError => "E*",
            FindingClass::ImplMismatch => "M",
            FindingClass::Unclassified => "?",
        };
        f.write_str(text)
    }
}

/// One classified verification finding (a Table I row).
#[derive(Debug, Clone)]
pub struct Finding {
    /// The underlying voter mismatch.
    pub mismatch: Mismatch,
    /// Classification (Table I column *R*).
    pub class: FindingClass,
    /// The responsible instruction or CSR (Table I column 1).
    pub subject: String,
    /// Short description (Table I column *Description*).
    pub label: String,
    /// Disassembly of a triggering instruction (Table I column *Example*).
    pub example: Option<String>,
    /// Concrete inputs reproducing the finding.
    pub witness: Option<TestVector>,
}

impl Finding {
    /// Deduplication key: one Table I row per (subject, description).
    pub fn dedup_key(&self) -> (String, String) {
        (self.subject.clone(), self.label.clone())
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} — {}", self.class, self.subject, self.label)?;
        if let Some(example) = &self.example {
            write!(f, " (e.g. `{example}`)")?;
        }
        Ok(())
    }
}

/// Classifies a mismatch, given the concrete witness instruction word.
pub(crate) fn classify(instr_word: Option<u32>, mismatch: &Mismatch) -> Finding {
    let (class, subject, label, example) = classify_parts(instr_word, &mismatch.kind);
    Finding {
        mismatch: mismatch.clone(),
        class,
        subject,
        label,
        example,
        witness: None,
    }
}

fn mnemonic(instr: &Instr) -> String {
    instr
        .to_string()
        .split_whitespace()
        .next()
        .unwrap_or("?")
        .to_uppercase()
}

fn classify_parts(
    instr_word: Option<u32>,
    kind: &MismatchKind,
) -> (FindingClass, String, String, Option<String>) {
    let Some(word) = instr_word else {
        return (
            FindingClass::Unclassified,
            "?".to_string(),
            kind.to_string(),
            None,
        );
    };
    let decoded = decode(word);
    let example = decoded
        .as_ref()
        .map(|i| i.to_string())
        .unwrap_or(format!("{word:#010x}"));

    let illegal = Trap::IllegalInstruction.cause();
    match decoded {
        Err(_) => match kind {
            MismatchKind::TrapDisagreement {
                core: None,
                iss: Some(c),
            } if *c == illegal => (
                FindingClass::RtlError,
                "illegal encoding".to_string(),
                "Missing illegal-instruction trap".to_string(),
                Some(example),
            ),
            MismatchKind::TrapDisagreement {
                core: Some(c),
                iss: None,
            } if *c == illegal => (
                FindingClass::IssError,
                "illegal encoding".to_string(),
                "Spurious illegal-instruction trap in VP".to_string(),
                Some(example),
            ),
            _ => (
                FindingClass::Unclassified,
                "illegal encoding".to_string(),
                kind.to_string(),
                Some(example),
            ),
        },
        Ok(instr) => {
            let subject = mnemonic(&instr);
            match instr {
                Instr::Load { .. } | Instr::Store { .. } => {
                    let misaligned_causes = [
                        Trap::LoadAddressMisaligned.cause(),
                        Trap::StoreAddressMisaligned.cause(),
                    ];
                    if let MismatchKind::TrapDisagreement { core, iss } = kind {
                        let involves_alignment = [core, iss]
                            .into_iter()
                            .flatten()
                            .any(|c| misaligned_causes.contains(c));
                        if involves_alignment {
                            return (
                                FindingClass::ImplMismatch,
                                subject,
                                "Missing alignment check".to_string(),
                                Some(example),
                            );
                        }
                    }
                    (
                        FindingClass::RtlError,
                        subject,
                        format!("{kind}"),
                        Some(example),
                    )
                }
                Instr::Wfi => (
                    FindingClass::RtlError,
                    "WFI".to_string(),
                    "Missing WFI instruction".to_string(),
                    Some(example),
                ),
                Instr::Csr { csr, .. } | Instr::CsrImm { csr, .. } => {
                    classify_csr(Csr(csr), kind, example)
                }
                _ => (
                    FindingClass::RtlError,
                    subject,
                    format!("{kind}"),
                    Some(example),
                ),
            }
        }
    }
}

fn classify_csr(
    csr: Csr,
    kind: &MismatchKind,
    example: String,
) -> (FindingClass, String, String, Option<String>) {
    let example = Some(example);
    let Some(name) = csr.name() else {
        // Completely unarchitected CSR address: the access itself must trap.
        return (
            FindingClass::RtlError,
            "unimpl. CSRs".to_string(),
            "Missing trap at access".to_string(),
            example,
        );
    };
    let subject = name.to_string();

    // The two VP bugs: spurious traps on medeleg/mideleg reads.
    if csr == Csr::MEDELEG || csr == Csr::MIDELEG {
        return (
            FindingClass::IssError,
            subject.clone(),
            format!("VP traps at {subject} read"),
            example,
        );
    }

    // CSR families the RTL core simply does not implement: any observable
    // difference there is an implementation mismatch (Table I's "unimpl."
    // rows), regardless of how it manifested.
    match csr.class() {
        CsrClass::UnprivilegedCounter => {
            return (
                FindingClass::ImplMismatch,
                subject,
                "unimpl. Unprivileged CSR".to_string(),
                example,
            )
        }
        CsrClass::MachineHpmCounter | CsrClass::MachineHpmEvent => {
            // Group the 29-register families into one row each, as the
            // paper's Table I does ("mhpmcounter3-31").
            let family = if (0xb03..=0xb1f).contains(&csr.addr()) {
                "mhpmcounter3-31"
            } else if (0xb83..=0xb9f).contains(&csr.addr()) {
                "mhpmcounter3-31h"
            } else {
                "mhpmevent3-31"
            };
            return (
                FindingClass::ImplMismatch,
                family.to_string(),
                "unimpl. Privileged CSR".to_string(),
                example,
            );
        }
        _ if csr == Csr::MSCRATCH || csr == Csr::MCOUNTEREN => {
            return (
                FindingClass::ImplMismatch,
                subject,
                "unimpl. Privileged CSR".to_string(),
                example,
            )
        }
        _ => {}
    }

    let counters = [
        Csr::MIP,
        Csr::MCYCLE,
        Csr::MINSTRET,
        Csr::MCYCLEH,
        Csr::MINSTRETH,
    ];
    match kind {
        MismatchKind::TrapDisagreement {
            core: Some(_),
            iss: None,
        } if counters.contains(&csr) => (
            FindingClass::RtlError,
            subject,
            "Trap at write access".to_string(),
            example,
        ),
        MismatchKind::TrapDisagreement {
            core: None,
            iss: Some(_),
        } if csr.is_read_only() => (
            FindingClass::RtlError,
            subject,
            "Missing trap at write".to_string(),
            example,
        ),
        _ => match csr.class() {
            CsrClass::MachineCounter => (
                FindingClass::ImplMismatch,
                subject,
                "Cycle Count Mismatch".to_string(),
                example,
            ),
            _ => (
                FindingClass::Unclassified,
                subject,
                kind.to_string(),
                example,
            ),
        },
    }
}

/// Aggregate result of a verification session.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Unique classified findings, in canonical path order (lexicographic
    /// on the discovering path's decision vector — identical for
    /// sequential and parallel exploration).
    pub findings: Vec<Finding>,
    /// Paths that ran to the instruction limit without incident.
    pub paths_complete: usize,
    /// Paths cut short: mismatches, cycle limits, infeasible assumptions
    /// (the paper's *partial paths*).
    pub paths_partial: usize,
    /// Instructions executed across both models and all paths.
    pub instructions_executed: u64,
    /// Core clock cycles across all paths.
    pub cycles: u64,
    /// Test vectors generated.
    pub test_vectors: usize,
    /// Wall-clock duration of the exploration.
    pub duration: Duration,
    /// `true` if the exploration stopped early (path budget or
    /// stop-at-first-mismatch) with work remaining.
    pub truncated: bool,
    /// Path records recovered from veritesting-style merged physical
    /// paths (zero when [`SessionConfig::merge`](crate::SessionConfig::merge)
    /// is off or the engine is [`EngineKind::Reexec`](crate::EngineKind)).
    /// Every merged record is expanded back to its unmerged byte-identical
    /// form, so — like the duration and solver statistics — this counter
    /// is excluded from [`to_json`](VerifyReport::to_json): report dumps
    /// are byte-identical merge on or off.
    pub merged_paths: usize,
    /// Frontier jobs still queued when a truncated exploration stopped —
    /// a lower bound on the paths the truncation dropped (an unexplored
    /// job can fork further). Zero when the frontier drained. Scheduling-
    /// dependent on truncated parallel runs, so — like the duration — it
    /// is excluded from [`to_json`](VerifyReport::to_json).
    pub paths_dropped: usize,
    /// Symbolic-IR well-formedness issues found by the per-path lint pass
    /// (deduplicated, canonical path order). Empty unless
    /// [`SessionConfig::lint_ir`](crate::SessionConfig::lint_ir) is set.
    pub lint_issues: Vec<String>,
    /// SAT-solver statistics, summed over all workers' persistent solvers.
    pub solver_stats: SolverStats,
    /// Feasibility-query memoisation counters, summed over all workers.
    pub query_cache: QueryCacheStats,
    /// Solver-chain slicing and caching counters, summed over all
    /// workers. All zeros when the chain is disabled
    /// ([`SessionConfig::solver_chain`](crate::SessionConfig::solver_chain)).
    pub chain_stats: SolverChainStats,
    /// Proof-audit certification counters, summed over all workers. All
    /// zeros unless
    /// [`SessionConfig::audit`](crate::SessionConfig::audit) is set.
    /// Like the duration and solver statistics, excluded from
    /// [`to_json`](VerifyReport::to_json) so report dumps are
    /// byte-identical audit on or off.
    pub proof_audit: ProofAuditStats,
    /// The first answer the proof auditor refused to certify, if any
    /// (`proof_audit.failures` counts them all).
    pub proof_audit_failure: Option<String>,
    /// Self-contained conflict cones certified during the run, ready to
    /// be dumped as a `symcosim-audit/1` artifact and re-verified offline
    /// (`symcosim-lint --audit`). Excluded from
    /// [`to_json`](VerifyReport::to_json).
    pub proof_audit_units: Vec<CoreReplayUnit>,
    /// Per-path decode-space coverage projections plus the projected
    /// legal domain — the coverage certifier's input. `None` unless
    /// [`SessionConfig::collect_coverage`](crate::SessionConfig::collect_coverage)
    /// is set.
    pub coverage: Option<CoverageData>,
}

/// Schema identifier of the session-report JSON dump.
pub const REPORT_SCHEMA: &str = "symcosim-report/1";

impl VerifyReport {
    /// The first finding, if any mismatch was discovered.
    pub fn first_mismatch(&self) -> Option<&Finding> {
        self.findings.first()
    }

    /// Total paths explored.
    pub fn total_paths(&self) -> usize {
        self.paths_complete + self.paths_partial
    }

    /// Serialises the report as the `symcosim-report/1` document —
    /// the machine-readable surface `symcosim-lint --coverage`
    /// re-certifies. Wall-clock duration and solver statistics
    /// (including the solver-chain counters) are deliberately excluded
    /// so the dump is identical across engines, worker counts and
    /// machines.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        json::header(&mut w, REPORT_SCHEMA);
        w.number_field("paths_complete", self.paths_complete as u64);
        w.number_field("paths_partial", self.paths_partial as u64);
        w.number_field("instructions_executed", self.instructions_executed);
        w.number_field("cycles", self.cycles);
        w.number_field("test_vectors", self.test_vectors as u64);
        w.bool_field("truncated", self.truncated);
        w.array_field("findings", self.findings.len(), |w, i| {
            let finding = &self.findings[i];
            w.open_object();
            w.string_field("class", &finding.class.to_string());
            w.string_field("subject", &finding.subject);
            w.string_field("label", &finding.label);
            match &finding.example {
                Some(example) => w.string_field("example", example),
                None => w.null_field("example"),
            }
            w.close_object();
        });
        w.array_field("lint_issues", self.lint_issues.len(), |w, i| {
            w.string_value(&self.lint_issues[i]);
        });
        match &self.coverage {
            Some(coverage) => {
                w.object_field("coverage");
                coverage.write_fields(&mut w);
                w.close_object();
            }
            None => w.null_field("coverage"),
        }
        w.close_object();
        w.finish()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} findings, {} paths ({} complete, {} partial), {} instructions, {} test vectors, {:.2?}",
            self.findings.len(),
            self.total_paths(),
            self.paths_complete,
            self.paths_partial,
            self.instructions_executed,
            self.test_vectors,
            self.duration,
        )?;
        // The stats structs' `Display` impls carry every counter the
        // `--progress-json` worker_done events emit (round-trip gated in
        // `exec::progress`), so the report never under-reports a field.
        writeln!(
            f,
            "solver: {}; query cache: {}",
            self.solver_stats, self.query_cache,
        )?;
        writeln!(f, "solver chain: {}", self.chain_stats)?;
        if self.proof_audit != ProofAuditStats::default() {
            writeln!(f, "proof audit: {}", self.proof_audit)?;
        }
        if let Some(failure) = &self.proof_audit_failure {
            writeln!(f, "proof audit FAILURE: {failure}")?;
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        if !self.lint_issues.is_empty() {
            writeln!(f, "{} IR well-formedness issues:", self.lint_issues.len())?;
            for issue in &self.lint_issues {
                writeln!(f, "  {issue}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_isa::{encode, CsrOp, Reg};

    fn trap_mismatch(core: Option<u32>, iss: Option<u32>) -> Mismatch {
        Mismatch {
            kind: MismatchKind::TrapDisagreement { core, iss },
            instr_index: 0,
        }
    }

    #[test]
    fn classifies_alignment_mismatch() {
        // lw x0, 1(x0) with ISS trapping on misalignment.
        let word = encode(&Instr::Load {
            kind: symcosim_isa::LoadKind::Lw,
            rd: Reg::X0,
            rs1: Reg::X0,
            imm: 1,
        });
        let finding = classify(
            Some(word),
            &trap_mismatch(None, Some(Trap::LoadAddressMisaligned.cause())),
        );
        assert_eq!(finding.class, FindingClass::ImplMismatch);
        assert_eq!(finding.subject, "LW");
        assert_eq!(finding.label, "Missing alignment check");
    }

    #[test]
    fn classifies_wfi_error() {
        let word = encode(&Instr::Wfi);
        let finding = classify(Some(word), &trap_mismatch(Some(2), None));
        assert_eq!(finding.class, FindingClass::RtlError);
        assert_eq!(finding.label, "Missing WFI instruction");
    }

    #[test]
    fn classifies_vp_delegation_bug() {
        let word = encode(&Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X1,
            rs1: Reg::X0,
            csr: 0x303,
        });
        let finding = classify(Some(word), &trap_mismatch(None, Some(2)));
        assert_eq!(finding.class, FindingClass::IssError);
        assert_eq!(finding.subject, "mideleg");
        assert!(finding.label.contains("VP traps"));
    }

    #[test]
    fn classifies_counter_write_trap() {
        let word = encode(&Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            rs1: Reg::X0,
            csr: 0xb00,
        });
        let finding = classify(Some(word), &trap_mismatch(Some(2), None));
        assert_eq!(finding.class, FindingClass::RtlError);
        assert_eq!(finding.label, "Trap at write access");
    }

    #[test]
    fn classifies_readonly_write_miss() {
        let word = encode(&Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            rs1: Reg::X0,
            csr: 0xf11,
        });
        let finding = classify(Some(word), &trap_mismatch(None, Some(2)));
        assert_eq!(finding.class, FindingClass::RtlError);
        assert_eq!(finding.subject, "mvendorid");
        assert_eq!(finding.label, "Missing trap at write");
    }

    #[test]
    fn classifies_unimplemented_csr_families() {
        let unarch = encode(&Instr::CsrImm {
            op: CsrOp::Rw,
            rd: Reg::X0,
            uimm: 0,
            csr: 0x400,
        });
        let finding = classify(Some(unarch), &trap_mismatch(None, Some(2)));
        assert_eq!(finding.class, FindingClass::RtlError);
        assert_eq!(finding.label, "Missing trap at access");

        let cycle = encode(&Instr::CsrImm {
            op: CsrOp::Rs,
            rd: Reg::X1,
            uimm: 0,
            csr: 0xc00,
        });
        let finding = classify(
            Some(cycle),
            &Mismatch {
                kind: MismatchKind::RdValueMismatch,
                instr_index: 0,
            },
        );
        assert_eq!(finding.class, FindingClass::ImplMismatch);
        assert_eq!(finding.label, "unimpl. Unprivileged CSR");

        let hpm = encode(&Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            rs1: Reg::X0,
            csr: 0xb10,
        });
        let finding = classify(
            Some(hpm),
            &Mismatch {
                kind: MismatchKind::RdValueMismatch,
                instr_index: 0,
            },
        );
        assert_eq!(finding.label, "unimpl. Privileged CSR");

        let mscratch = encode(&Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X1,
            rs1: Reg::X2,
            csr: 0x340,
        });
        let finding = classify(
            Some(mscratch),
            &Mismatch {
                kind: MismatchKind::RdValueMismatch,
                instr_index: 0,
            },
        );
        assert_eq!(finding.label, "unimpl. Privileged CSR");
    }

    #[test]
    fn classifies_cycle_count_mismatch() {
        let word = encode(&Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X1,
            rs1: Reg::X0,
            csr: 0xb00,
        });
        let finding = classify(
            Some(word),
            &Mismatch {
                kind: MismatchKind::RdValueMismatch,
                instr_index: 0,
            },
        );
        assert_eq!(finding.class, FindingClass::ImplMismatch);
        assert_eq!(finding.label, "Cycle Count Mismatch");
    }

    #[test]
    fn classifies_plain_alu_divergence_as_rtl_error() {
        let word = encode(&Instr::Addi {
            rd: Reg::X1,
            rs1: Reg::X0,
            imm: 1,
        });
        let finding = classify(
            Some(word),
            &Mismatch {
                kind: MismatchKind::RdValueMismatch,
                instr_index: 0,
            },
        );
        assert_eq!(finding.class, FindingClass::RtlError);
        assert_eq!(finding.subject, "ADDI");
    }

    #[test]
    fn missing_word_is_unclassified() {
        let finding = classify(
            None,
            &Mismatch {
                kind: MismatchKind::PcMismatch,
                instr_index: 0,
            },
        );
        assert_eq!(finding.class, FindingClass::Unclassified);
    }
}
