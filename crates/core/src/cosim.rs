//! The co-simulation main loop.

use symcosim_iss::{Iss, IssConfig};
use symcosim_microrv32::{Core, CoreConfig, InjectedError};
use symcosim_rtl::{DBusResponse, IBusResponse};
use symcosim_symex::Domain;

use crate::memory::IssDataBus;
use crate::voter::{Judge, Mismatch, Voter};
use crate::{SymbolicDataMemory, SymbolicInstrMemory};

/// Why a co-simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The instruction limit was reached without a mismatch.
    InstrLimit,
    /// The per-path cycle limit was hit (execution controller).
    CycleLimit,
    /// The voter found a mismatch.
    Mismatch,
    /// The symbolic path died (infeasible assumption or engine limit).
    PathDead,
}

/// Result of one co-simulation run (one path in symbolic mode).
#[derive(Debug, Clone)]
pub struct CosimResult {
    /// The mismatch, if one was found.
    pub mismatch: Option<Mismatch>,
    /// Instructions executed, counted across both models (as the paper
    /// counts executed instructions).
    pub instructions: u64,
    /// Core clock cycles consumed.
    pub cycles: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Alias kept for API clarity in the facade crate.
pub type CosimOutcome = CosimResult;

/// One configured co-simulation: core + ISS + shared symbolic memories.
///
/// [`CoSim::run`] drives the core cycle by cycle, services its instruction
/// and data buses from the symbolic memories, lets the ISS execute the same
/// instruction stream, and votes after every retirement. In symbolic mode
/// this happens inside an [`Engine::explore`](symcosim_symex::Engine)
/// closure; in concrete mode it is the fuzzing baseline's inner loop.
///
/// The loop is exposed at instruction granularity too:
/// [`CoSim::step_instr`] advances one retire-and-vote round, and `run` is
/// just its loop. The fork engine snapshots (clones) the whole `CoSim`
/// between steps, which is why every field is plain data.
#[derive(Debug)]
pub struct CoSim<D: Domain> {
    /// The device under test.
    pub core: Core<D>,
    /// The reference model.
    pub iss: Iss<D>,
    /// Shared instruction memory.
    pub imem: SymbolicInstrMemory<D>,
    /// The core's data memory.
    pub core_dmem: SymbolicDataMemory<D>,
    /// The ISS's data memory (same initial contents).
    pub iss_dmem: SymbolicDataMemory<D>,
    voter: Voter,
    instr_limit: u32,
    cycle_limit: u64,
    compare_memory: bool,
    last_insn: Option<D::Word>,
    // Loop state, kept in fields so a clone resumes mid-run.
    next_instr: u64,
    instructions: u64,
    pending_fetch: Option<D::Word>,
    pending_data: Option<D::Word>,
}

// Manual impl: a derived Clone would demand `D: Clone`, and the
// fork-engine executor that drives snapshots is not cloneable.
impl<D: Domain> Clone for CoSim<D> {
    fn clone(&self) -> CoSim<D> {
        CoSim {
            core: self.core.clone(),
            iss: self.iss.clone(),
            imem: self.imem.clone(),
            core_dmem: self.core_dmem.clone(),
            iss_dmem: self.iss_dmem.clone(),
            voter: self.voter.clone(),
            instr_limit: self.instr_limit,
            cycle_limit: self.cycle_limit,
            compare_memory: self.compare_memory,
            last_insn: self.last_insn,
            next_instr: self.next_instr,
            instructions: self.instructions,
            pending_fetch: self.pending_fetch,
            pending_data: self.pending_data,
        }
    }
}

impl<D: Domain> CoSim<D> {
    /// Builds a co-simulation with symbolic data memories and sliced
    /// symbolic registers.
    ///
    /// `symbolic_regs` registers starting at `x1` are initialised with
    /// fresh symbols (`reg_x1`, …) shared between core and ISS; the rest
    /// stay zero — the paper's register slicing.
    ///
    /// # Panics
    ///
    /// Panics if `dmem_words` is not a power of two or `symbolic_regs`
    /// exceeds 31.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        dom: &mut D,
        core_config: CoreConfig,
        iss_config: IssConfig,
        inject: Option<InjectedError>,
        imem: SymbolicInstrMemory<D>,
        symbolic_regs: usize,
        dmem_words: usize,
        instr_limit: u32,
        cycle_limit: u64,
    ) -> CoSim<D> {
        assert!(symbolic_regs <= 31, "at most 31 registers can be symbolic");
        let mut core = match inject {
            Some(error) => Core::with_injected_error(dom, core_config, error),
            None => Core::new(dom, core_config),
        };
        let mut iss = Iss::new(dom, iss_config);
        for i in 1..=symbolic_regs {
            let value = dom.fresh_word(&format!("reg_x{i}"));
            core.set_register(i, value);
            iss.set_register(i, value);
        }
        let (core_dmem, iss_dmem) = SymbolicDataMemory::new_pair(dom, dmem_words);
        CoSim {
            core,
            iss,
            imem,
            core_dmem,
            iss_dmem,
            voter: Voter::new(),
            instr_limit,
            cycle_limit,
            compare_memory: true,
            last_insn: None,
            next_instr: 0,
            instructions: 0,
            pending_fetch: None,
            pending_data: None,
        }
    }

    /// The instruction word of the most recent core retirement — the
    /// instruction a mismatch should be attributed to.
    pub fn last_instruction(&self) -> Option<D::Word> {
        self.last_insn
    }

    /// Term-identical equality for veritesting-style state merging: true
    /// when both models, both memories and the whole loop state agree
    /// component by component, with every symbolic value the *same*
    /// hash-consed term handle. Two such co-simulations perform literally
    /// identical domain operations from here on, which is the property the
    /// merging fork engine ([`ForkTask::states_equal`]) needs to keep
    /// per-arm path records byte-identical to their unmerged runs. Never a
    /// semantic check: distinct terms with equal values compare unequal,
    /// and the engine simply keeps those paths apart.
    ///
    /// [`ForkTask::states_equal`]: symcosim_symex::ForkTask::states_equal
    pub fn merge_eq(&self, other: &CoSim<D>) -> bool
    where
        D::Word: PartialEq,
    {
        self.core.merge_eq(&other.core)
            && self.iss.merge_eq(&other.iss)
            && self.imem.merge_eq(&other.imem)
            && self.core_dmem.merge_eq(&other.core_dmem)
            && self.iss_dmem.merge_eq(&other.iss_dmem)
            && self.voter == other.voter
            && self.instr_limit == other.instr_limit
            && self.cycle_limit == other.cycle_limit
            && self.compare_memory == other.compare_memory
            && self.last_insn == other.last_insn
            && self.next_instr == other.next_instr
            && self.instructions == other.instructions
            && self.pending_fetch == other.pending_fetch
            && self.pending_data == other.pending_data
    }

    /// Replaces the voter (e.g. to disable the register-file comparison).
    pub fn set_voter(&mut self, voter: Voter) {
        self.voter = voter;
    }

    /// Disables the end-of-run data-memory comparison.
    pub fn set_compare_memory(&mut self, enabled: bool) {
        self.compare_memory = enabled;
    }

    /// Runs the co-simulation until mismatch, limit, or path death.
    pub fn run<J: Judge<D>>(&mut self, dom: &mut D, judge: &mut J) -> CosimResult {
        loop {
            if let Some(result) = self.step_instr(dom, judge) {
                return result;
            }
        }
    }

    /// Advances the co-simulation by one instruction: drives the core to
    /// its next retirement, lets the ISS follow, and votes. Once the
    /// instruction limit is reached, the next call performs the end-of-run
    /// memory comparison and yields the final result.
    ///
    /// Returns `Some` when the run is over, `None` while it can continue.
    /// This is the fork engine's snapshot boundary: the whole `CoSim` is
    /// cloneable between calls.
    pub fn step_instr<J: Judge<D>>(&mut self, dom: &mut D, judge: &mut J) -> Option<CosimResult> {
        if self.next_instr >= self.instr_limit as u64 {
            return Some(self.finish(dom, judge));
        }
        let instr_index = self.next_instr;

        // --- Drive the RTL core to its next retirement. -----------------
        let core_retire = loop {
            if dom.is_dead() {
                return Some(self.result(None, StopReason::PathDead));
            }
            if self.core.cycles() >= self.cycle_limit {
                return Some(self.result(None, StopReason::CycleLimit));
            }
            let zero = dom.const_word(0);
            let ibus_rsp = IBusResponse {
                instruction_ready: self.pending_fetch.is_some(),
                instruction: self.pending_fetch.take().unwrap_or(zero),
            };
            let dbus_rsp = DBusResponse {
                data_ready: self.pending_data.is_some(),
                read_data: self.pending_data.take().unwrap_or(zero),
            };
            let out = self.core.cycle(dom, ibus_rsp, dbus_rsp);
            if out.ibus.fetch_enable {
                self.pending_fetch = Some(self.imem.fetch(dom, out.ibus.address));
            }
            if out.dbus.enable {
                self.pending_data = Some(self.core_dmem.strobe_access(
                    dom,
                    out.dbus.address,
                    out.dbus.write,
                    out.dbus.write_data,
                    out.dbus.strobe,
                ));
            }
            if let Some(retire) = out.rvfi {
                break retire;
            }
        };
        self.instructions += 1;
        self.last_insn = Some(core_retire.insn);

        // --- The ISS follows with the same instruction stream. ----------
        let iss_pc = self.iss.pc();
        let iss_instr = self.imem.fetch(dom, iss_pc);
        let iss_retire = {
            let mut bus = IssDataBus::new(&mut self.iss_dmem);
            self.iss.step(dom, &mut bus, iss_instr)
        };
        self.instructions += 1;
        if dom.is_dead() {
            return Some(self.result(None, StopReason::PathDead));
        }

        // --- Vote. ------------------------------------------------------
        let core_regs = *self.core.registers();
        let iss_regs = *self.iss.registers();
        if let Some(mismatch) = self.voter.compare_step(
            dom,
            judge,
            instr_index,
            &core_retire,
            &iss_retire,
            &core_regs,
            &iss_regs,
        ) {
            return Some(self.result(Some(mismatch), StopReason::Mismatch));
        }
        self.next_instr += 1;
        None
    }

    /// End-of-run: the optional data-memory comparison and the final
    /// result.
    fn finish<J: Judge<D>>(&mut self, dom: &mut D, judge: &mut J) -> CosimResult {
        if self.compare_memory {
            let core_words = self.core_dmem.words().to_vec();
            let iss_words = self.iss_dmem.words().to_vec();
            if let Some(mismatch) = self.voter.compare_memory(
                dom,
                judge,
                self.instr_limit as u64,
                &core_words,
                &iss_words,
            ) {
                return self.result(Some(mismatch), StopReason::Mismatch);
            }
        }
        self.result(None, StopReason::InstrLimit)
    }

    fn result(&self, mismatch: Option<Mismatch>, stop: StopReason) -> CosimResult {
        CosimResult {
            mismatch,
            instructions: self.instructions,
            cycles: self.core.cycles(),
            stop,
        }
    }
}
