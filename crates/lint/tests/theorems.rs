//! Integration wrappers pinning the four decode-space theorems and the
//! IR pass as plain `cargo test` gates (the same checks `symcosim-lint
//! --all` runs, exposed to the default test suite).

use symcosim_isa::DECODE_TABLE;
use symcosim_lint::{cross, decode_space, ir};

/// Theorem 1 (disjointness): no two decode rules share a word.
#[test]
fn theorem_disjointness() {
    assert!(decode_space::check_disjointness().is_empty());
}

/// Theorem 2 (completeness): the rules plus the residual illegal set
/// partition the 2^32 word space, and the exact legal count matches the
/// table's mask structure.
#[test]
fn theorem_completeness() {
    let residual = decode_space::illegal_space();
    assert!(decode_space::check_completeness(&residual).is_empty());
    let legal: u64 = DECODE_TABLE
        .iter()
        .map(|rule| 1u64 << (32 - rule.mask.count_ones()))
        .sum();
    assert_eq!(legal + residual.count(), 1u64 << 32);
}

/// Theorem 3 (encoder consistency): every encoder lands inside its own
/// decode rule and decodes back to the instruction it encoded.
#[test]
fn theorem_encode_consistency() {
    assert!(decode_space::check_encode_consistency().is_empty());
}

/// Theorem 4 (cross-model agreement): the corrected ISS and core classify
/// exactly the decode table's complement as illegal — no disagreement
/// with each other, none with the table.
#[test]
fn theorem_cross_model_agreement() {
    let report = cross::analyze();
    assert!(
        report.fixed_disagreements.is_empty(),
        "{:#?}",
        report.fixed_disagreements
    );
    assert!(
        report.decode_mismatches.is_empty(),
        "{:#?}",
        report.decode_mismatches
    );
    // The as-shipped models *must* disagree: Table I's decode edges.
    assert!(report.v1_disagreement_count > 0);
}

/// The symbolic-IR well-formedness pass is clean on real path conditions.
#[test]
fn ir_pass_is_clean() {
    let report = ir::analyze();
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert!(
        report.x0_violations.is_empty(),
        "{:#?}",
        report.x0_violations
    );
}
