//! Golden-file test for the `--json` report schema.
//!
//! The JSON rendering is a machine interface (CI parses it, the schema
//! key versions it), so its exact bytes are pinned: stable field order,
//! stable formatting, deterministic pass results. Any intentional layout
//! change must bump [`symcosim_lint::report::SCHEMA`] and regenerate the
//! golden file with
//! `cargo run --release -p symcosim-lint -- --all --json`.

use symcosim_lint::{cross, decode_space, ir, LintReport};

#[test]
fn json_report_matches_the_golden_file() {
    let report = LintReport {
        decode: Some(decode_space::analyze()),
        cross: Some(cross::analyze()),
        ir: Some(ir::analyze()),
        dataflow: None,
        coverage: None,
        audit: None,
    };
    let rendered = report.to_json();
    let golden = include_str!("golden/report.json");
    assert_eq!(
        rendered, golden,
        "JSON report drifted from tests/golden/report.json; if the change \
         is intentional, bump report::SCHEMA and regenerate the golden file"
    );
}

#[test]
fn schema_key_is_versioned() {
    let golden = include_str!("golden/report.json");
    assert!(golden.contains(&format!(
        "\"schema\": \"{}\"",
        symcosim_lint::report::SCHEMA
    )));
}
