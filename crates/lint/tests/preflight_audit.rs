//! Audited-run compatibility gate for the abstract-interpretation
//! preflight: a full audited BRANCH sweep with the preflight enabled
//! (the default) must still certify every solver answer end-to-end, and
//! the `symcosim-audit/1` artifact it dumps must be accepted by the
//! offline `symcosim-lint --audit` checker.
//!
//! The preflight answers statically-forced queries *before* the solver
//! chain's cache levels and the SAT core, so an answered query produces
//! no proof obligations at all — this gate pins that the remaining
//! solver-answered queries keep their certificates intact and that the
//! artifact schema round-trips through the independent checker.

use symcosim_core::{
    AuditDump, EngineKind, InstrConstraint, SessionConfig, VerifyReport, VerifySession,
};
use symcosim_isa::opcodes;
use symcosim_lint::audit;

fn audited_branch_config(preflight: bool) -> SessionConfig {
    let mut config = SessionConfig::rv32i_only();
    config.stop_at_first_mismatch = false;
    config.constraint = InstrConstraint::OnlyOpcode(opcodes::BRANCH);
    config.collect_coverage = true;
    config.audit = true;
    config.engine = EngineKind::Fork;
    config.preflight = preflight;
    config
}

fn run(config: SessionConfig) -> VerifyReport {
    VerifySession::new(config).expect("valid config").run()
}

#[test]
fn audited_preflight_sweep_certifies_and_lint_accepts_the_artifact() {
    let report = run(audited_branch_config(true));

    // The preflight must actually fire on the sweep...
    assert!(
        report.chain_stats.preflight_hits > 0,
        "preflight answered no queries on the BRANCH sweep: {:?}",
        report.chain_stats
    );
    // ...while every solver-answered query stays certified.
    assert!(
        report.proof_audit.models + report.proof_audit.cores > 0,
        "audited sweep certified no answers"
    );
    assert_eq!(
        report.proof_audit.failures, 0,
        "checker rejected an answer: {:?}",
        report.proof_audit_failure
    );

    // The dumped symcosim-audit/1 artifact replays through the offline
    // checker with zero findings, exactly as for a preflight-less run.
    let artifact = AuditDump::new(report.proof_audit, report.proof_audit_units.clone()).to_json();
    let checked = audit::check_audit_json(&artifact).expect("artifact parses");
    assert_eq!(checked.findings(), 0, "audit checker rejected the artifact");
    assert!(checked.steps > 0, "artifact carries no proof steps");
    assert!(checked.models > 0, "artifact certifies no models");
}

#[test]
fn preflight_toggle_is_invisible_to_the_audit_artifact() {
    let on = run(audited_branch_config(true));
    let off = run(audited_branch_config(false));

    // The report documents are byte-identical with the preflight on or
    // off; only the (non-document) chain statistics may differ.
    assert_eq!(on.to_json(), off.to_json(), "preflight changed the report");
    assert!(on.chain_stats.preflight_hits > 0);
    assert_eq!(off.chain_stats.preflight_hits, 0);

    // Both artifacts pass the offline checker.
    for (label, report) in [("preflight on", &on), ("preflight off", &off)] {
        let artifact =
            AuditDump::new(report.proof_audit, report.proof_audit_units.clone()).to_json();
        let checked = audit::check_audit_json(&artifact).expect("artifact parses");
        assert_eq!(checked.findings(), 0, "{label}: checker rejected");
    }
}
