//! Cross-model illegal-instruction agreement sweeps.
//!
//! The decode-space theorems ([`crate::decode_space`]) prove properties of
//! the *shared decode table*; this module checks that the two executable
//! models actually honour it. Both the reference ISS ([`Iss`]) and the
//! MicroRV32 core ([`Core`]) are driven one instruction at a time over a
//! structured sweep of the word space, and each word is classified as
//! *illegal* in a model when its first retirement traps with cause 2
//! (illegal instruction).
//!
//! Two comparisons come out of the sweep:
//!
//! * under the **corrected** configurations ([`IssConfig::fixed`],
//!   [`CoreConfig::fixed`]) the models must agree with each other *and*
//!   with [`decode`] everywhere — any disagreement is a gating finding,
//!   reported as a concrete 32-bit counterexample word;
//! * under the **as-shipped** configurations ([`IssConfig::vp_v1`],
//!   [`CoreConfig::microrv32_v1`]) the paper's Table I decode-edge
//!   differences (WFI, unimplemented CSRs, counter writes, read-only CSR
//!   writes, `medeleg`/`mideleg` reads) show up as expected disagreements;
//!   they are counted and sampled for the report but do not gate.

use symcosim_isa::{decode, opcodes, Instr};
use symcosim_iss::{ArrayBus, Iss, IssConfig};
use symcosim_microrv32::{Core, CoreConfig};
use symcosim_rtl::{DBusResponse, IBusResponse};
use symcosim_symex::ConcreteDomain;

/// Illegal-instruction trap cause (`mcause` 2).
const CAUSE_ILLEGAL: u32 = 2;

/// Cycle budget for a single-instruction core run with an always-ready
/// bus; retirement takes at most fetch + execute + four data sub-accesses.
const CORE_CYCLE_BUDGET: u32 = 16;

/// How many concrete counterexample words each list keeps (the totals are
/// always exact; only the samples are capped, for stable reports).
pub const SAMPLE_CAP: usize = 16;

/// A word on which two classifiers that must agree disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossFinding {
    /// The concrete instruction word.
    pub word: u32,
    /// What disagreed about it.
    pub detail: String,
}

impl std::fmt::Display for CrossFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:08x}: {}", self.word, self.detail)
    }
}

/// Result of the cross-model sweeps.
#[derive(Debug, Clone)]
pub struct CrossModelReport {
    /// Number of distinct probe words swept (each runs in four
    /// model/config combinations).
    pub words_swept: u64,
    /// Corrected-model disagreements: ISS vs core under the `fixed`
    /// configurations. Gating — must be empty.
    pub fixed_disagreements: Vec<CrossFinding>,
    /// Corrected models vs the static decode table. Gating — must be
    /// empty.
    pub decode_mismatches: Vec<CrossFinding>,
    /// Number of words where the as-shipped (`v1`) models disagree —
    /// the paper's Table I decode-edge differences. Informational.
    pub v1_disagreement_count: u64,
    /// First [`SAMPLE_CAP`] `v1` disagreement words, in sweep order.
    pub v1_samples: Vec<u32>,
}

impl CrossModelReport {
    /// Number of gating findings.
    #[must_use]
    pub fn findings(&self) -> usize {
        self.fixed_disagreements.len() + self.decode_mismatches.len()
    }
}

/// Classifies `word` under the ISS: does its first retirement trap with
/// cause 2?
#[must_use]
pub fn iss_illegal(word: u32, config: &IssConfig) -> bool {
    let mut dom = ConcreteDomain::new();
    let mut iss = Iss::new(&mut dom, config.clone());
    let mut bus: ArrayBus<ConcreteDomain> = ArrayBus::new(16);
    let rvfi = iss.step(&mut dom, &mut bus, word);
    rvfi.trap && rvfi.trap_cause == Some(CAUSE_ILLEGAL)
}

/// Classifies `word` under the MicroRV32 core: the core is cycled with an
/// always-ready instruction/data bus until its first retirement; the word
/// is illegal when that retirement traps with cause 2.
///
/// # Panics
///
/// Panics if the core fails to retire within [`CORE_CYCLE_BUDGET`] cycles
/// (impossible with an always-ready bus).
#[must_use]
pub fn core_illegal(word: u32, config: &CoreConfig) -> bool {
    let mut dom = ConcreteDomain::new();
    let mut core = Core::new(&mut dom, config.clone());
    for _ in 0..CORE_CYCLE_BUDGET {
        let outputs = core.cycle(
            &mut dom,
            IBusResponse {
                instruction_ready: true,
                instruction: word,
            },
            DBusResponse {
                data_ready: true,
                read_data: 0,
            },
        );
        if let Some(rvfi) = outputs.rvfi {
            return rvfi.trap && rvfi.trap_cause == Some(CAUSE_ILLEGAL);
        }
    }
    panic!("core did not retire 0x{word:08x} within {CORE_CYCLE_BUDGET} cycles");
}

/// The structured probe set: every (opcode, funct3, funct7) combination
/// with zeroed operand fields, a SYSTEM funct3=0 sweep over rs2/rd/rs1,
/// and the full 4096-entry CSR address space for every Zicsr funct3.
fn sweep_words() -> Vec<u32> {
    let mut words = Vec::new();
    // Every decode rule's mask lives inside opcode|funct3|funct7, so this
    // covers at least one word of every rule and of every residual cube
    // with small-field structure.
    for opcode in 0..128u32 {
        for funct3 in 0..8u32 {
            for funct7 in 0..128u32 {
                words.push(opcode | (funct3 << 12) | (funct7 << 25));
            }
        }
    }
    // SYSTEM funct3=0 is the privileged corner: ECALL/EBREAK/MRET/WFI are
    // exact encodings, so near-misses in rs2/rd/rs1 must stay illegal.
    for funct7 in 0..128u32 {
        for rs2 in [0u32, 1, 2, 5, 31] {
            for (rd, rs1) in [(0u32, 0u32), (1, 0), (0, 1)] {
                words
                    .push(opcodes::SYSTEM | (rd << 7) | (rs1 << 15) | (rs2 << 20) | (funct7 << 25));
            }
        }
    }
    // The full CSR address space for every Zicsr flavour: address legality
    // is where the shipped models disagree (Table I).
    for funct3 in [1u32, 2, 3, 5, 6, 7] {
        for addr in 0..4096u32 {
            for (rd, rs1) in [(0u32, 0u32), (1, 0), (0, 1), (1, 1)] {
                words.push(
                    opcodes::SYSTEM | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (addr << 20),
                );
            }
        }
    }
    words.sort_unstable();
    words.dedup();
    words
}

/// Whether execution-time illegality of a decoded instruction depends on
/// more than the decode table (CSR address legality is decided at
/// execution, not decode).
fn execution_dependent(instr: &Instr) -> bool {
    matches!(instr, Instr::Csr { .. } | Instr::CsrImm { .. })
}

/// Runs the sweeps and assembles the report.
#[must_use]
pub fn analyze() -> CrossModelReport {
    let iss_fixed = IssConfig::fixed();
    let core_fixed = CoreConfig::fixed();
    let iss_v1 = IssConfig::vp_v1();
    let core_v1 = CoreConfig::microrv32_v1();

    let words = sweep_words();
    let mut fixed_disagreements = Vec::new();
    let mut decode_mismatches = Vec::new();
    let mut v1_disagreement_count = 0u64;
    let mut v1_samples = Vec::new();

    for &word in &words {
        let iss_says = iss_illegal(word, &iss_fixed);
        let core_says = core_illegal(word, &core_fixed);
        if iss_says != core_says {
            fixed_disagreements.push(CrossFinding {
                word,
                detail: format!(
                    "fixed models disagree: ISS says {}, core says {}",
                    illegality(iss_says),
                    illegality(core_says)
                ),
            });
        }
        match decode(word) {
            Err(_) => {
                // Statically illegal: both corrected models must trap.
                for (model, says) in [("ISS", iss_says), ("core", core_says)] {
                    if !says {
                        decode_mismatches.push(CrossFinding {
                            word,
                            detail: format!(
                                "decode table rejects the word but the fixed {model} \
                                 retires it without an illegal-instruction trap"
                            ),
                        });
                    }
                }
            }
            Ok(instr) => {
                // Statically legal: no illegal trap, unless legality also
                // depends on execution state (CSR addresses).
                if !execution_dependent(&instr) {
                    for (model, says) in [("ISS", iss_says), ("core", core_says)] {
                        if says {
                            decode_mismatches.push(CrossFinding {
                                word,
                                detail: format!(
                                    "decode table accepts the word ({instr:?}) but the \
                                     fixed {model} raises an illegal-instruction trap"
                                ),
                            });
                        }
                    }
                }
            }
        }
        if iss_illegal(word, &iss_v1) != core_illegal(word, &core_v1) {
            v1_disagreement_count += 1;
            if v1_samples.len() < SAMPLE_CAP {
                v1_samples.push(word);
            }
        }
    }

    CrossModelReport {
        words_swept: words.len() as u64,
        fixed_disagreements,
        decode_mismatches,
        v1_disagreement_count,
        v1_samples,
    }
}

fn illegality(illegal: bool) -> &'static str {
    if illegal {
        "illegal"
    } else {
        "legal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_system_encodings_are_legal_in_both_fixed_models() {
        // ECALL, EBREAK, MRET, WFI.
        for word in [0x0000_0073, 0x0010_0073, 0x3020_0073, 0x1050_0073] {
            assert!(!iss_illegal(word, &IssConfig::fixed()), "{word:#010x}");
            assert!(!core_illegal(word, &CoreConfig::fixed()), "{word:#010x}");
        }
    }

    #[test]
    fn garbage_words_are_illegal_in_both_fixed_models() {
        // All-zero, all-ones and a compressed-looking word.
        for word in [0x0000_0000, 0xffff_ffff, 0x0000_4501] {
            assert!(iss_illegal(word, &IssConfig::fixed()), "{word:#010x}");
            assert!(core_illegal(word, &CoreConfig::fixed()), "{word:#010x}");
        }
    }

    #[test]
    fn wfi_is_a_table1_decode_edge() {
        // The shipped VP treats WFI as a NOP while the shipped core traps:
        // the exact Table I disagreement the sweep must surface.
        let wfi = 0x1050_0073;
        assert!(!iss_illegal(wfi, &IssConfig::vp_v1()));
        assert!(core_illegal(wfi, &CoreConfig::microrv32_v1()));
    }

    #[test]
    fn sweep_covers_every_decode_rule() {
        let words = sweep_words();
        for rule in symcosim_isa::DECODE_TABLE {
            assert!(
                words.iter().any(|&w| rule.matches(w)),
                "sweep misses rule {}",
                rule.name
            );
        }
    }
}
