//! Offline re-certification of a dumped session report.
//!
//! `symcosim-cli verify --report-json PATH` dumps a `symcosim-report/1`
//! document whose `coverage` section carries every explored path's
//! ternary-cube projection onto the symbolic fetch slots. This pass
//! re-derives the exploration-coverage certificate from that document
//! alone — no engine, no solver — so a CI gate (or an auditor) can check
//! a run's partition argument after the fact, and bit-compare the result
//! against the in-process `symcosim-cert/1` certificate.

use symcosim_core::json::JsonValue;
use symcosim_core::{Certificate, CoverageData, REPORT_SCHEMA};

/// Parses a dumped `symcosim-report/1` document and re-certifies its
/// coverage section.
///
/// # Errors
///
/// Returns a message when the file cannot be read, is not valid JSON,
/// carries the wrong schema tag, or has no coverage section (the run was
/// made without `--certify`/`--report-json`, or the section was
/// stripped).
pub fn certify_report_file(path: &str) -> Result<Certificate, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    certify_report_json(&text).map_err(|e| format!("{path}: {e}"))
}

/// Re-certifies a `symcosim-report/1` document given as a JSON string.
///
/// # Errors
///
/// Returns a message on malformed JSON, a wrong `schema` tag or a
/// missing/null/ill-formed `coverage` section.
pub fn certify_report_json(text: &str) -> Result<Certificate, String> {
    let value = JsonValue::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    match value.get("schema").and_then(JsonValue::as_str) {
        Some(schema) if schema == REPORT_SCHEMA => {}
        Some(schema) => return Err(format!("schema is {schema:?}, expected {REPORT_SCHEMA:?}")),
        None => return Err(format!("missing schema tag (expected {REPORT_SCHEMA:?})")),
    }
    let coverage = match value.get("coverage") {
        None | Some(JsonValue::Null) => {
            return Err(
                "report has no coverage section; rerun symcosim-cli verify with --report-json \
                 (coverage collection is implied)"
                    .to_string(),
            )
        }
        Some(section) => CoverageData::from_json(section)?,
    };
    Ok(Certificate::certify(&coverage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_core::Verdict;

    /// A minimal report: one certified path claiming the whole space.
    fn report(coverage_json: &str) -> String {
        format!("{{\n  \"schema\": \"symcosim-report/1\",\n  \"coverage\": {coverage_json}\n}}\n")
    }

    const FULL_COVER: &str = "{\n\
        \"slot_prefix\": \"imem_\",\n\
        \"domain_exact\": true,\n\
        \"truncated\": false,\n\
        \"domain\": [{\"mask\": \"0x00000000\", \"value\": \"0x00000000\"}],\n\
        \"paths\": [{\n\
          \"decisions\": \"\",\n\
          \"certified\": true,\n\
          \"bound\": null,\n\
          \"slots\": [{\n\
            \"slot\": \"imem_00000000\",\n\
            \"exact\": true,\n\
            \"instr_decisions\": [],\n\
            \"cubes\": [{\"mask\": \"0x00000000\", \"value\": \"0x00000000\"}]\n\
          }]\n\
        }]\n\
      }";

    #[test]
    fn a_well_formed_dump_re_certifies() {
        let cert = certify_report_json(&report(FULL_COVER)).expect("certifies");
        assert_eq!(cert.verdict, Verdict::Complete);
        assert_eq!(cert.findings(), 0);
    }

    #[test]
    fn a_wrong_schema_is_rejected() {
        let text = report(FULL_COVER).replace("symcosim-report/1", "symcosim-lint/1");
        let err = certify_report_json(&text).expect_err("wrong schema");
        assert!(err.contains("symcosim-report/1"), "{err}");
    }

    #[test]
    fn a_stripped_coverage_section_is_an_error_not_a_pass() {
        let err = certify_report_json(&report("null")).expect_err("no coverage");
        assert!(err.contains("no coverage section"), "{err}");
    }

    #[test]
    fn a_missing_file_reports_the_path() {
        let err = certify_report_file("/nonexistent/report.json").expect_err("no file");
        assert!(err.contains("/nonexistent/report.json"), "{err}");
    }
}
