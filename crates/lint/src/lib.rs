//! Static analysis for the symcosim workspace: decode-space theorems,
//! cross-model agreement sweeps and a symbolic-IR well-formedness pass.
//!
//! The verification flow of the paper trusts two artefacts it never
//! checks: the RV32I+Zicsr *decode table* both models are generated from,
//! and the *symbolic term DAGs* the engine builds while exploring them.
//! This crate closes both gaps without a solver in the loop:
//!
//! * [`pattern`] — a ternary cube algebra over the 2^32 instruction-word
//!   space. Every decode rule is a cube `(mask, value)`; cube subtraction
//!   and pairwise overlap tests decide set questions exactly, with no
//!   enumeration.
//! * [`decode_space`] — four theorems over the shared
//!   [`DECODE_TABLE`](symcosim_isa::DECODE_TABLE): *disjointness* (no two
//!   rules overlap), *completeness* (rules plus the residual illegal set
//!   partition the space, with the exact counts), *encoder consistency*
//!   (every encoder lands inside its own rule and decodes back) and
//!   grounding probes against the real decoder.
//! * [`cross`] — concrete sweeps driving the reference ISS and the
//!   MicroRV32 core one instruction at a time: the corrected models must
//!   classify exactly the decode table's complement as illegal;
//!   as-shipped (`v1`) disagreements are the paper's Table I decode
//!   edges, reported as concrete counterexample words.
//! * [`ir`] — the symbolic-IR well-formedness pass
//!   ([`symcosim_symex::wf`]) run over the path conditions of a real
//!   symbolic co-simulation, plus an executable audit of the `x0`
//!   write-discard choke points in both models.
//! * [`dataflow`] — abstract-interpretation findings over a real BRANCH
//!   sweep via the [`symcosim_symex::absint`] lattice: dead branches,
//!   constant outputs, width-truncation hazards, unconstrained
//!   output-influencing symbols, and the sibling-path merge-opportunity
//!   report.
//! * [`coverage`] — offline re-certification of a dumped
//!   `symcosim-report/1` document: re-derives the exploration-coverage
//!   certificate (the run's paths partition the legal decode space) from
//!   the report's ternary-cube projections, with no engine in the loop.
//! * [`audit`] — offline re-verification of a dumped `symcosim-audit/1`
//!   proof artifact: replays every retained UNSAT conflict cone by naive
//!   unit propagation, with no solver in the loop.
//! * [`report`] — human-readable and versioned-JSON report assembly
//!   ([`report::SCHEMA`]).
//!
//! The `symcosim-lint` binary wires the passes to the command line and
//! exits nonzero on any gating finding; `scripts/ci.sh` runs it with
//! `--all --json` on every push.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod coverage;
pub mod cross;
pub mod dataflow;
pub mod decode_space;
pub mod ir;
pub mod pattern;
pub mod report;

pub use audit::AuditReport;
pub use cross::CrossModelReport;
pub use dataflow::DataflowReport;
pub use decode_space::DecodeSpaceReport;
pub use ir::IrReport;
pub use pattern::{Pattern, PatternSet};
pub use report::LintReport;
