//! The `symcosim-lint` command-line driver.
//!
//! ```text
//! symcosim-lint [--all] [--decode] [--cross] [--ir]
//!               [--dataflow [--merge-report]]
//!               [--coverage REPORT.json] [--audit AUDIT.json] [--json]
//! ```
//!
//! Runs the selected static-analysis passes (default `--all`) and prints
//! a human-readable report, or the versioned JSON rendering with
//! `--json`. Exits 0 when clean, 1 on any gating finding, 2 on usage
//! errors.

use symcosim_lint::{audit, coverage, cross, dataflow, decode_space, ir, LintReport};

const USAGE: &str = "\
symcosim-lint — static decode-space and symbolic-IR analysis

USAGE:
    symcosim-lint [--all] [--decode] [--cross] [--ir]
                  [--dataflow [--merge-report]]
                  [--coverage REPORT.json] [--audit AUDIT.json] [--json]

        --decode    decode-space theorems: completeness, disjointness and
                    encoder consistency of the shared decode table, proved
                    by ternary-cube subtraction (no enumeration)
        --cross     cross-model sweeps: the corrected ISS and core must
                    classify exactly the table's complement as illegal;
                    as-shipped disagreements are reported as concrete
                    counterexample words
        --ir        symbolic-IR well-formedness over real path conditions
                    (including dead symbols in no path condition and no
                    output term, and path conditions refuted by the
                    known-bits/interval lattice), plus the executable x0
                    write-discard audit
        --dataflow  abstract-interpretation findings over a two-instruction
                    BRANCH sweep: dead branches (gating), constant outputs,
                    width-truncation hazards and unconstrained
                    output-influencing symbols, derived offline from the
                    known-bits + interval lattice with no solver queries
        --merge-report
                    with --dataflow: also group sibling paths (same
                    decisions except the last) whose diverging constraints
                    touch only fetch-slot bits disjoint from both output
                    cones — provably mergeable path pairs
        --coverage  re-certify the exploration coverage of a dumped
                    symcosim-report/1 document (from `symcosim-cli verify
                    --report-json PATH`): prove the run's paths partition
                    the legal decode space, offline, with no engine
        --audit     re-verify a dumped symcosim-audit/1 proof artifact
                    (from `symcosim-cli verify --audit-json PATH`): replay
                    every retained UNSAT conflict cone by naive unit
                    propagation, offline, with no solver
        --all       decode + cross + ir (the default when no pass is
                    selected)
        --json      emit the versioned JSON report instead of text

    Exits 0 when clean, 1 on any gating finding.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    let mut json = false;
    let mut decode = false;
    let mut cross_model = false;
    let mut ir_pass = false;
    let mut dataflow_pass = false;
    let mut merge_report = false;
    let mut coverage_path: Option<String> = None;
    let mut audit_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--decode" => decode = true,
            "--cross" => cross_model = true,
            "--ir" => ir_pass = true,
            "--dataflow" => dataflow_pass = true,
            "--merge-report" => {
                dataflow_pass = true;
                merge_report = true;
            }
            "--coverage" => match iter.next() {
                Some(path) => coverage_path = Some(path.clone()),
                None => {
                    eprintln!("error: --coverage expects a report path");
                    eprintln!();
                    eprintln!("{USAGE}");
                    return 2;
                }
            },
            "--audit" => match iter.next() {
                Some(path) => audit_path = Some(path.clone()),
                None => {
                    eprintln!("error: --audit expects an artifact path");
                    eprintln!();
                    eprintln!("{USAGE}");
                    return 2;
                }
            },
            "--all" => {
                decode = true;
                cross_model = true;
                ir_pass = true;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("error: unknown argument {other:?}");
                eprintln!();
                eprintln!("{USAGE}");
                return 2;
            }
        }
    }
    if !decode
        && !cross_model
        && !ir_pass
        && !dataflow_pass
        && coverage_path.is_none()
        && audit_path.is_none()
    {
        decode = true;
        cross_model = true;
        ir_pass = true;
    }

    let cert = match coverage_path {
        None => None,
        Some(path) => match coverage::certify_report_file(&path) {
            Ok(cert) => Some(cert),
            Err(message) => {
                eprintln!("error: {message}");
                return 2;
            }
        },
    };

    let audit_report = match audit_path {
        None => None,
        Some(path) => match audit::check_audit_file(&path) {
            Ok(report) => Some(report),
            Err(message) => {
                eprintln!("error: {message}");
                return 2;
            }
        },
    };

    let report = LintReport {
        decode: decode.then(decode_space::analyze),
        cross: cross_model.then(cross::analyze),
        ir: ir_pass.then(ir::analyze),
        dataflow: dataflow_pass.then(|| dataflow::analyze(merge_report)),
        coverage: cert,
        audit: audit_report,
    };

    if json {
        print!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    i32::from(report.findings() > 0)
}
