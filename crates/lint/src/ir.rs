//! Symbolic-IR well-formedness pass and executable `x0`-discard audit.
//!
//! The first half drives a real single-instruction co-simulation
//! symbolically (both models, shared symbolic instruction word, sliced
//! symbolic registers) and runs [`SymExec::lint_path`] — the
//! [`symcosim_symex::wf`] checker — over every explored path: term widths,
//! constraint shape (boolean, satisfiable-looking, connected) and symbol
//! coverage are re-validated on the exact DAGs the verification flow
//! builds. Advisory issues (dead or disconnected constraints, unbounded
//! symbols) are counted; hard violations gate.
//!
//! The second half is the executable side of the `x0` choke-point
//! invariant documented on `Iss::write_reg` and `Core::write_reg`: a
//! corpus of every writing instruction shape with `rd = x0` runs
//! concretely through both corrected models, and the architectural `x0`,
//! the RVFI `rd_addr` and the RVFI `rd_wdata` must all stay zero.

use symcosim_core::{CoSim, SymbolicInstrMemory, SymbolicJudge};
use symcosim_isa::{encode, opcodes, CsrOp, Instr, LoadKind, OpKind, Reg};
use symcosim_iss::{ArrayBus, Iss, IssConfig};
use symcosim_microrv32::{Core, CoreConfig};
use symcosim_rtl::{DBusResponse, IBusResponse, RvfiRecord};
use symcosim_symex::wf::WfIssueKind;
use symcosim_symex::{ConcreteDomain, Domain, Engine, EngineConfig, SearchStrategy, SymExec};

/// Result of the IR pass.
#[derive(Debug, Clone)]
pub struct IrReport {
    /// Number of symbolic paths whose constraint DAGs were checked.
    pub paths_checked: usize,
    /// Hard well-formedness violations (gating — must be empty).
    pub violations: Vec<String>,
    /// Constraints refuted by the abstract-interpretation lattice — the
    /// `statically-false-constraint` finding kind. A live path carrying
    /// one is a tooling bug, so these are also counted in `violations`;
    /// this field breaks them out for the report.
    pub statically_false: u64,
    /// Advisory issues across all paths (dead/disconnected constraints,
    /// unbounded symbols). Informational.
    pub advisories: u64,
    /// Symbols that appear in no path condition *and* no output term
    /// (architectural registers and PCs of both models) on some path —
    /// the `dead-symbol` finding kind. Names, deduplicated and sorted.
    /// Informational.
    pub dead_symbols: Vec<String>,
    /// Number of `rd = x0` corpus instructions executed per model.
    pub x0_cases: usize,
    /// `x0`-discard violations (gating — must be empty).
    pub x0_violations: Vec<String>,
}

impl IrReport {
    /// Number of gating findings.
    #[must_use]
    pub fn findings(&self) -> usize {
        self.violations.len() + self.x0_violations.len()
    }
}

/// Opcode the symbolic pass explores. OP keeps the path count small (the
/// ten R-type operations plus the illegal funct3/funct7 classes) while
/// still exercising decode, the ALU, register writeback and the voter.
const IR_OPCODE: u32 = opcodes::OP;

/// An instruction memory constrained to one major opcode (the session's
/// `InstrConstraint::OnlyOpcode`, reconstructed here so the lint crate
/// controls the exploration exactly).
pub(crate) fn only_opcode_imem<D: Domain>(opcode: u32) -> SymbolicInstrMemory<D> {
    SymbolicInstrMemory::with_constraint(move |dom: &mut D, instr| {
        let field = dom.field(instr, 6, 0);
        let is_target = dom.eq_const(field, opcode & 0x7f);
        dom.assume(is_target);
    })
}

/// Runs the symbolic pass and the `x0` audit.
#[must_use]
pub fn analyze() -> IrReport {
    let mut engine = Engine::new(EngineConfig {
        strategy: SearchStrategy::Dfs,
        max_paths: 4096,
        max_decisions_per_path: 4096,
        emit_test_vectors: false,
        seed: 0x11e7,
        ..EngineConfig::default()
    });
    let outcome = engine.explore(|exec: &mut SymExec<'_>| {
        let imem = only_opcode_imem(IR_OPCODE);
        let mut cosim = CoSim::new(
            exec,
            CoreConfig::fixed(),
            IssConfig::fixed(),
            None,
            imem,
            2,
            16,
            1,
            64,
        );
        let _ = cosim.run(exec, &mut SymbolicJudge);
        // The output frontier: everything the voter observes — both
        // models' PCs and full architectural register files. A symbol
        // reaching neither a constraint nor this frontier is dead.
        let mut outputs = vec![cosim.core.pc(), cosim.iss.pc()];
        outputs.extend(cosim.core.registers().iter().copied());
        outputs.extend(cosim.iss.registers().iter().copied());
        exec.lint_path_with_outputs(&outputs)
    });

    let mut violations = Vec::new();
    let mut statically_false = 0u64;
    let mut advisories = 0u64;
    let mut dead_symbols = Vec::new();
    for (index, path) in outcome.paths.iter().enumerate() {
        for issue in &path.value {
            if issue.kind == WfIssueKind::DeadSymbol {
                if let Some(name) = engine.ctx().symbol_name(issue.term) {
                    dead_symbols.push(name.to_string());
                }
            }
            if issue.kind == WfIssueKind::StaticallyFalseConstraint {
                statically_false += 1;
            }
            if issue.kind.advisory() {
                advisories += 1;
            } else {
                violations.push(format!("path {index}: {issue}"));
            }
        }
    }
    dead_symbols.sort_unstable();
    dead_symbols.dedup();

    let (x0_cases, x0_violations) = x0_audit();
    IrReport {
        paths_checked: outcome.paths.len(),
        violations,
        statically_false,
        advisories,
        dead_symbols,
        x0_cases,
        x0_violations,
    }
}

/// One instruction of every register-writing shape, all with `rd = x0`.
/// Source operands use `x1` (preset to an aligned address) so loads,
/// jumps and CSR accesses execute without trapping.
fn x0_corpus() -> Vec<Instr> {
    vec![
        Instr::Lui {
            rd: Reg::X0,
            imm: 0x12345 << 12,
        },
        Instr::Auipc {
            rd: Reg::X0,
            imm: 0x1000,
        },
        Instr::Jal {
            rd: Reg::X0,
            offset: 8,
        },
        Instr::Jalr {
            rd: Reg::X0,
            rs1: Reg::X1,
            imm: 0,
        },
        Instr::Load {
            kind: LoadKind::Lw,
            rd: Reg::X0,
            rs1: Reg::X0,
            imm: 8,
        },
        Instr::Addi {
            rd: Reg::X0,
            rs1: Reg::X1,
            imm: 42,
        },
        Instr::Sltiu {
            rd: Reg::X0,
            rs1: Reg::X1,
            imm: 1,
        },
        Instr::Slli {
            rd: Reg::X0,
            rs1: Reg::X1,
            shamt: 3,
        },
        Instr::Op {
            kind: OpKind::Add,
            rd: Reg::X0,
            rs1: Reg::X1,
            rs2: Reg::X1,
        },
        Instr::Csr {
            op: CsrOp::Rs,
            rd: Reg::X0,
            rs1: Reg::X0,
            csr: 0x340,
        },
        Instr::CsrImm {
            op: CsrOp::Rw,
            rd: Reg::X0,
            uimm: 5,
            csr: 0x340,
        },
    ]
}

/// Checks one model's retirement of an `rd = x0` instruction.
fn check_x0_retire(
    model: &'static str,
    instr: &Instr,
    word: u32,
    rvfi: &RvfiRecord<u32>,
    x0: u32,
    violations: &mut Vec<String>,
) {
    if rvfi.trap {
        violations.push(format!(
            "0x{word:08x} ({instr:?}): unexpected {model} trap (cause {:?})",
            rvfi.trap_cause
        ));
    }
    if x0 != 0 {
        violations.push(format!(
            "0x{word:08x} ({instr:?}): {model} architectural x0 became 0x{x0:08x}"
        ));
    }
    if rvfi.rd_addr != 0 || rvfi.rd_wdata != 0 {
        violations.push(format!(
            "0x{word:08x} ({instr:?}): {model} RVFI reports rd x{} wdata 0x{:08x} \
             (both must be zero for rd = x0)",
            rvfi.rd_addr, rvfi.rd_wdata
        ));
    }
}

/// Runs the corpus through both corrected models.
fn x0_audit() -> (usize, Vec<String>) {
    let corpus = x0_corpus();
    let mut violations = Vec::new();
    for instr in &corpus {
        assert_eq!(instr.rd(), Some(Reg::X0), "corpus entry must write x0");
        let word = encode(instr);

        let mut dom = ConcreteDomain::new();
        let mut iss = Iss::new(&mut dom, IssConfig::fixed());
        iss.set_register(1, 0x0000_0100);
        let mut bus: ArrayBus<ConcreteDomain> = ArrayBus::new(16);
        let rvfi = iss.step(&mut dom, &mut bus, word);
        check_x0_retire("ISS", instr, word, &rvfi, iss.register(0), &mut violations);

        let mut dom = ConcreteDomain::new();
        let mut core = Core::new(&mut dom, CoreConfig::fixed());
        core.set_register(1, 0x0000_0100);
        let mut retired = None;
        for _ in 0..16 {
            let outputs = core.cycle(
                &mut dom,
                IBusResponse {
                    instruction_ready: true,
                    instruction: word,
                },
                DBusResponse {
                    data_ready: true,
                    read_data: 0,
                },
            );
            if let Some(rvfi) = outputs.rvfi {
                retired = Some(rvfi);
                break;
            }
        }
        match retired {
            Some(rvfi) => {
                check_x0_retire(
                    "core",
                    instr,
                    word,
                    &rvfi,
                    core.register(0),
                    &mut violations,
                );
            }
            None => violations.push(format!(
                "0x{word:08x} ({instr:?}): core did not retire within 16 cycles"
            )),
        }
    }
    (corpus.len(), violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_audit_passes_on_the_corrected_models() {
        let (cases, violations) = x0_audit();
        assert!(cases >= 10, "corpus should cover every writing shape");
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn symbolic_pass_is_clean_and_deterministic() {
        let first = analyze();
        assert!(first.violations.is_empty(), "{:#?}", first.violations);
        assert!(first.paths_checked > 0);
        let second = analyze();
        assert_eq!(first.paths_checked, second.paths_checked);
        assert_eq!(first.advisories, second.advisories);
    }
}
