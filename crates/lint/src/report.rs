//! Report assembly: human-readable text and a stable JSON rendering.
//!
//! The JSON schema is versioned (the shared `schema`/`tool`/`version`
//! header from [`symcosim_core::json`]) and emitted with a fixed field
//! order and fixed formatting, so the CI gate and the golden-file test
//! can compare reports byte-for-byte. Counterexample *samples* are
//! capped ([`crate::cross::SAMPLE_CAP`]); every count is exact.

use std::fmt;

use symcosim_core::json::{self, JsonWriter};
use symcosim_core::Certificate;

use crate::audit::AuditReport;
use crate::cross::CrossModelReport;
use crate::dataflow::DataflowReport;
use crate::decode_space::DecodeSpaceReport;
use crate::ir::IrReport;

/// Version tag of the JSON report layout.
pub const SCHEMA: &str = "symcosim-lint/1";

/// The combined lint report. Sections are optional so the CLI can run any
/// subset of the passes; absent sections render as JSON `null`.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Decode-space theorems (completeness, disjointness, encoder
    /// consistency).
    pub decode: Option<DecodeSpaceReport>,
    /// Cross-model illegal-instruction agreement sweeps.
    pub cross: Option<CrossModelReport>,
    /// Symbolic-IR well-formedness pass and `x0` audit.
    pub ir: Option<IrReport>,
    /// Abstract-interpretation dataflow pass over the BRANCH sweep
    /// (`--dataflow`), optionally with the sibling merge-opportunity
    /// analysis (`--merge-report`).
    pub dataflow: Option<DataflowReport>,
    /// Exploration-coverage certificate re-derived from a dumped session
    /// report (`--coverage`).
    pub coverage: Option<Certificate>,
    /// Proof-audit artifact recheck (`--audit`): every retained UNSAT
    /// conflict cone re-verified offline.
    pub audit: Option<AuditReport>,
}

impl LintReport {
    /// Total number of gating findings across all sections.
    #[must_use]
    pub fn findings(&self) -> usize {
        self.decode.as_ref().map_or(0, DecodeSpaceReport::findings)
            + self.cross.as_ref().map_or(0, CrossModelReport::findings)
            + self.ir.as_ref().map_or(0, IrReport::findings)
            + self.dataflow.as_ref().map_or(0, DataflowReport::findings)
            + self.coverage.as_ref().map_or(0, Certificate::findings)
            + self.audit.as_ref().map_or(0, AuditReport::findings)
    }

    /// Renders the report as stable, pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        json::header(&mut w, SCHEMA);
        match &self.decode {
            None => w.null_field("decode_space"),
            Some(decode) => {
                w.object_field("decode_space");
                w.number_field("rules", decode.rules as u64);
                w.number_field("legal_words", decode.legal_words);
                w.number_field("illegal_words", decode.illegal_words);
                w.number_field("residual_cubes", decode.residual_cubes as u64);
                w.array_field("overlaps", decode.overlaps.len(), |w, i| {
                    let o = &decode.overlaps[i];
                    w.open_object();
                    w.string_field("first", o.first);
                    w.string_field("second", o.second);
                    w.string_field("word", &hex(o.word));
                    w.close_object();
                });
                w.array_field(
                    "completeness_violations",
                    decode.completeness_violations.len(),
                    |w, i| {
                        let v = &decode.completeness_violations[i];
                        w.open_object();
                        w.string_field("word", &hex(v.word));
                        w.string_field("detail", &v.detail);
                        w.close_object();
                    },
                );
                w.array_field(
                    "encode_violations",
                    decode.encode_violations.len(),
                    |w, i| {
                        let v = &decode.encode_violations[i];
                        w.open_object();
                        w.string_field("word", &hex(v.word));
                        w.string_field("rule", v.rule);
                        w.string_field("detail", &v.detail);
                        w.close_object();
                    },
                );
                w.close_object();
            }
        }
        match &self.cross {
            None => w.null_field("cross_model"),
            Some(cross) => {
                w.object_field("cross_model");
                w.number_field("words_swept", cross.words_swept);
                w.array_field(
                    "fixed_disagreements",
                    cross.fixed_disagreements.len(),
                    |w, i| {
                        let f = &cross.fixed_disagreements[i];
                        w.open_object();
                        w.string_field("word", &hex(f.word));
                        w.string_field("detail", &f.detail);
                        w.close_object();
                    },
                );
                w.array_field(
                    "decode_mismatches",
                    cross.decode_mismatches.len(),
                    |w, i| {
                        let f = &cross.decode_mismatches[i];
                        w.open_object();
                        w.string_field("word", &hex(f.word));
                        w.string_field("detail", &f.detail);
                        w.close_object();
                    },
                );
                w.number_field("v1_disagreement_count", cross.v1_disagreement_count);
                w.array_field("v1_samples", cross.v1_samples.len(), |w, i| {
                    w.string_value(&hex(cross.v1_samples[i]));
                });
                w.close_object();
            }
        }
        match &self.ir {
            None => w.null_field("ir"),
            Some(ir) => {
                w.object_field("ir");
                w.number_field("paths_checked", ir.paths_checked as u64);
                w.array_field("violations", ir.violations.len(), |w, i| {
                    w.string_value(&ir.violations[i]);
                });
                w.number_field("statically_false", ir.statically_false);
                w.number_field("advisories", ir.advisories);
                w.array_field("dead_symbols", ir.dead_symbols.len(), |w, i| {
                    w.string_value(&ir.dead_symbols[i]);
                });
                w.number_field("x0_cases", ir.x0_cases as u64);
                w.array_field("x0_violations", ir.x0_violations.len(), |w, i| {
                    w.string_value(&ir.x0_violations[i]);
                });
                w.close_object();
            }
        }
        match &self.dataflow {
            None => w.null_field("dataflow"),
            Some(dataflow) => {
                w.object_field("dataflow");
                w.string_field("opcode", &hex(dataflow.opcode));
                w.number_field("paths_checked", dataflow.paths_checked as u64);
                w.array_field("dead_branches", dataflow.dead_branches.len(), |w, i| {
                    w.string_value(&dataflow.dead_branches[i]);
                });
                w.array_field(
                    "constant_outputs",
                    dataflow.constant_outputs.len(),
                    |w, i| {
                        w.string_value(&dataflow.constant_outputs[i]);
                    },
                );
                w.array_field(
                    "truncation_hazards",
                    dataflow.truncation_hazards.len(),
                    |w, i| {
                        w.string_value(&dataflow.truncation_hazards[i]);
                    },
                );
                w.array_field(
                    "unconstrained_influencers",
                    dataflow.unconstrained_influencers.len(),
                    |w, i| {
                        w.string_value(&dataflow.unconstrained_influencers[i]);
                    },
                );
                match &dataflow.merge {
                    None => w.null_field("merge"),
                    Some(merge) => {
                        w.object_field("merge");
                        w.number_field("sibling_groups", merge.sibling_groups as u64);
                        w.number_field("fetch_slot_groups", merge.fetch_slot_groups as u64);
                        w.number_field("mergeable_groups", merge.mergeable_groups as u64);
                        w.bool_field("samples_truncated", merge.samples_truncated);
                        w.array_field("samples", merge.samples.len(), |w, i| {
                            let group = &merge.samples[i];
                            w.open_object();
                            w.number_field("depth", group.depth as u64);
                            w.number_field("size", group.size as u64);
                            w.array_field("paths", group.paths.len(), |w, k| {
                                w.number_value(group.paths[k] as u64);
                            });
                            w.array_field("diverging_bits", group.diverging_bits.len(), |w, k| {
                                w.string_value(&group.diverging_bits[k]);
                            });
                            w.close_object();
                        });
                        w.close_object();
                    }
                }
                w.close_object();
            }
        }
        match &self.coverage {
            None => w.null_field("coverage"),
            Some(cert) => {
                w.object_field("coverage");
                w.string_field("verdict", cert.verdict.as_str());
                w.bool_field("truncated", cert.truncated);
                w.number_field("paths_certified", cert.paths_certified as u64);
                w.number_field("paths_bounded", cert.paths_bounded as u64);
                w.number_field("paths_excluded", cert.paths_excluded as u64);
                w.bool_field("domain_exact", cert.domain_exact);
                w.array_field("slots", cert.slots.len(), |w, i| {
                    let slot = &cert.slots[i];
                    w.open_object();
                    w.string_field("slot", &slot.slot);
                    w.number_field("domain_words", slot.domain_words);
                    w.number_field("certified_words", slot.certified_words);
                    w.number_field("bounded_words", slot.bounded_words);
                    w.number_field("residual_words", slot.residual_words);
                    w.bool_field("exact", slot.exact);
                    w.array_field("counterexamples", slot.counterexamples.len(), |w, k| {
                        w.string_value(&hex(slot.counterexamples[k]));
                    });
                    w.array_field("overlaps", slot.overlaps.len(), |w, k| {
                        w.string_value(&hex(slot.overlaps[k]));
                    });
                    w.close_object();
                });
                w.close_object();
            }
        }
        match &self.audit {
            None => w.null_field("audit"),
            Some(audit) => {
                w.object_field("audit");
                w.number_field("units_checked", audit.units_checked as u64);
                w.number_field("units_dropped", audit.units_dropped);
                w.number_field("steps", audit.steps);
                w.number_field("models", audit.models);
                w.number_field("cores", audit.cores);
                w.number_field("recorded_failures", audit.recorded_failures);
                w.array_field("rejected", audit.rejected.len(), |w, i| {
                    w.string_value(&audit.rejected[i]);
                });
                w.close_object();
            }
        }
        w.number_field("findings", self.findings() as u64);
        w.string_field(
            "status",
            if self.findings() == 0 {
                "clean"
            } else {
                "findings"
            },
        );
        w.close_object();
        w.finish()
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(decode) = &self.decode {
            writeln!(f, "decode space:")?;
            writeln!(
                f,
                "  {} rules; {} legal words, {} illegal words ({} residual cubes)",
                decode.rules, decode.legal_words, decode.illegal_words, decode.residual_cubes
            )?;
            for o in &decode.overlaps {
                writeln!(
                    f,
                    "  OVERLAP {} / {} at 0x{:08x}",
                    o.first, o.second, o.word
                )?;
            }
            for v in &decode.completeness_violations {
                writeln!(f, "  COMPLETENESS 0x{:08x}: {}", v.word, v.detail)?;
            }
            for v in &decode.encode_violations {
                writeln!(f, "  ENCODE [{}] 0x{:08x}: {}", v.rule, v.word, v.detail)?;
            }
            if decode.findings() == 0 {
                writeln!(
                    f,
                    "  complete, disjoint and encoder-consistent (proved by cube subtraction)"
                )?;
            }
        }
        if let Some(cross) = &self.cross {
            writeln!(
                f,
                "cross-model agreement ({} words swept):",
                cross.words_swept
            )?;
            for finding in &cross.fixed_disagreements {
                writeln!(f, "  FIXED-DISAGREEMENT {finding}")?;
            }
            for finding in &cross.decode_mismatches {
                writeln!(f, "  DECODE-MISMATCH {finding}")?;
            }
            if cross.findings() == 0 {
                writeln!(
                    f,
                    "  corrected models agree with each other and the decode table"
                )?;
            }
            writeln!(
                f,
                "  {} expected as-shipped (Table I) disagreements, e.g.:",
                cross.v1_disagreement_count
            )?;
            for word in &cross.v1_samples {
                writeln!(f, "    0x{word:08x}")?;
            }
        }
        if let Some(ir) = &self.ir {
            writeln!(
                f,
                "symbolic IR: {} paths checked, {} advisories; x0 audit over {} cases",
                ir.paths_checked, ir.advisories, ir.x0_cases
            )?;
            for v in &ir.violations {
                writeln!(f, "  IR-VIOLATION {v}")?;
            }
            if !ir.dead_symbols.is_empty() {
                writeln!(
                    f,
                    "  {} dead symbols (in no path condition and no output term):",
                    ir.dead_symbols.len()
                )?;
                for name in &ir.dead_symbols {
                    writeln!(f, "    DEAD-SYMBOL {name}")?;
                }
            }
            for v in &ir.x0_violations {
                writeln!(f, "  X0-VIOLATION {v}")?;
            }
            if ir.findings() == 0 {
                writeln!(f, "  all path conditions well-formed, x0 writes discarded")?;
            }
        }
        if let Some(dataflow) = &self.dataflow {
            writeln!(
                f,
                "dataflow (opcode 0x{:08x}): {} paths analysed",
                dataflow.opcode, dataflow.paths_checked
            )?;
            for finding in &dataflow.dead_branches {
                writeln!(f, "  DEAD-BRANCH {finding}")?;
            }
            for finding in &dataflow.constant_outputs {
                writeln!(f, "  CONSTANT-OUTPUT {finding}")?;
            }
            for finding in &dataflow.truncation_hazards {
                writeln!(f, "  TRUNCATION-HAZARD {finding}")?;
            }
            if !dataflow.unconstrained_influencers.is_empty() {
                writeln!(
                    f,
                    "  {} unconstrained output-influencing symbols:",
                    dataflow.unconstrained_influencers.len()
                )?;
                for name in &dataflow.unconstrained_influencers {
                    writeln!(f, "    UNCONSTRAINED-INFLUENCER {name}")?;
                }
            }
            if dataflow.findings() == 0 {
                writeln!(f, "  no dead branches; every path condition is live")?;
            }
            if let Some(merge) = &dataflow.merge {
                writeln!(
                    f,
                    "  merge opportunities: {} sibling groups, {} diverging on \
                     fetch-slot bits, {} provably mergeable",
                    merge.sibling_groups, merge.fetch_slot_groups, merge.mergeable_groups
                )?;
                for group in &merge.samples {
                    writeln!(
                        f,
                        "    MERGEABLE {} paths forked at decision {} on {}",
                        group.size,
                        group.depth,
                        group.diverging_bits.join(", ")
                    )?;
                }
                if merge.samples_truncated {
                    writeln!(
                        f,
                        "    ({} more mergeable groups not sampled)",
                        merge.mergeable_groups - merge.samples.len()
                    )?;
                }
            }
        }
        if let Some(cert) = &self.coverage {
            write!(f, "{cert}")?;
        }
        if let Some(audit) = &self.audit {
            writeln!(
                f,
                "proof audit: {} units re-verified ({} dropped past the cap); \
                 in-process: {} steps, {} models, {} cores, {} failures",
                audit.units_checked,
                audit.units_dropped,
                audit.steps,
                audit.models,
                audit.cores,
                audit.recorded_failures
            )?;
            for rejection in &audit.rejected {
                writeln!(f, "  AUDIT-REJECTED {rejection}")?;
            }
            if audit.findings() == 0 {
                writeln!(
                    f,
                    "  every retained UNSAT answer is refuted by its conflict cone"
                )?;
            }
        }
        let findings = self.findings();
        if findings == 0 {
            writeln!(f, "lint: clean")
        } else {
            writeln!(f, "lint: {findings} findings")
        }
    }
}

fn hex(word: u32) -> String {
    format!("0x{word:08x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_renders_null_sections() {
        let report = LintReport::default();
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert!(json.contains("\"schema\": \"symcosim-lint/1\""));
        assert!(json.contains("\"tool\": \"symcosim\""));
        assert!(json.contains("\"version\": "));
        assert!(json.contains("\"decode_space\": null"));
        assert!(json.contains("\"cross_model\": null"));
        assert!(json.contains("\"ir\": null"));
        assert!(json.contains("\"dataflow\": null"));
        assert!(json.contains("\"coverage\": null"));
        assert!(json.contains("\"audit\": null"));
        assert!(json.contains("\"status\": \"clean\""));
    }

    #[test]
    fn findings_sum_across_sections() {
        let report = LintReport {
            ir: Some(crate::ir::IrReport {
                paths_checked: 1,
                violations: vec!["v".into()],
                statically_false: 0,
                advisories: 0,
                dead_symbols: Vec::new(),
                x0_cases: 0,
                x0_violations: vec!["w".into()],
            }),
            ..LintReport::default()
        };
        assert_eq!(report.findings(), 2);
        assert!(report.to_json().contains("\"status\": \"findings\""));
    }

    #[test]
    fn audit_rejections_gate_and_render() {
        let report = LintReport {
            audit: Some(AuditReport {
                units_checked: 3,
                units_dropped: 1,
                steps: 10,
                models: 2,
                cores: 4,
                recorded_failures: 0,
                rejected: vec!["unit 2: no conflict".into()],
            }),
            ..LintReport::default()
        };
        assert_eq!(report.findings(), 1);
        let json = report.to_json();
        assert!(json.contains("\"units_checked\": 3"), "{json}");
        assert!(json.contains("unit 2: no conflict"), "{json}");
        let text = report.to_string();
        assert!(text.contains("AUDIT-REJECTED"), "{text}");
    }
}
