//! Ternary bit-pattern algebra — re-exported from `symcosim-isa`.
//!
//! The cube algebra originally lived here, serving only the static decode
//! theorems. The coverage certifier made it load-bearing for `symex` and
//! `core` as well, so the implementation moved down the dependency graph to
//! [`symcosim_isa::pattern`]; this module keeps the historical
//! `symcosim_lint::{Pattern, PatternSet}` paths working.

pub use symcosim_isa::pattern::{Pattern, PatternSet};
