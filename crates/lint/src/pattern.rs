//! Ternary bit-pattern algebra over the 32-bit instruction word space.
//!
//! A [`Pattern`] is a cube in `{0,1,X}^32`: `mask` selects the cared bits,
//! `value` gives their required values, and the remaining bits are free.
//! Decode rules, encoder ranges and the whole 2^32 universe are all cubes,
//! so the decode-space theorems reduce to cube operations — overlap tests
//! and cube subtraction — with no enumeration anywhere.

use symcosim_isa::DecodeRule;

/// A ternary cube over 32-bit words: `w` is covered iff `w & mask == value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pattern {
    /// Cared-bit mask.
    pub mask: u32,
    /// Required value of the cared bits (zero outside `mask`).
    pub value: u32,
}

impl Pattern {
    /// Creates a cube, normalising `value` onto `mask`.
    #[must_use]
    pub const fn new(mask: u32, value: u32) -> Pattern {
        Pattern {
            mask,
            value: value & mask,
        }
    }

    /// The cube covering every 32-bit word.
    #[must_use]
    pub const fn universe() -> Pattern {
        Pattern { mask: 0, value: 0 }
    }

    /// Whether `word` lies in the cube.
    #[must_use]
    pub const fn covers(&self, word: u32) -> bool {
        word & self.mask == self.value
    }

    /// Number of words in the cube: `2^(32 - popcount(mask))`.
    #[must_use]
    pub const fn count(&self) -> u64 {
        1u64 << (32 - self.mask.count_ones())
    }

    /// Whether the two cubes share at least one word: they do exactly when
    /// their fixed bits agree wherever both care.
    #[must_use]
    pub const fn overlaps(&self, other: &Pattern) -> bool {
        (self.value ^ other.value) & self.mask & other.mask == 0
    }

    /// The intersection cube, `None` when disjoint.
    #[must_use]
    pub fn intersect(&self, other: &Pattern) -> Option<Pattern> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Pattern {
            mask: self.mask | other.mask,
            value: self.value | other.value,
        })
    }

    /// A concrete member word (free bits zero).
    #[must_use]
    pub const fn sample(&self) -> u32 {
        self.value
    }

    /// Corner samples of the cube: free bits all-zero, all-one, and the two
    /// alternating fillings. Cheap concrete probes that ground the cube
    /// algebra against the real decoder.
    #[must_use]
    pub fn corner_samples(&self) -> [u32; 4] {
        let free = !self.mask;
        [
            self.value,
            self.value | free,
            self.value | (free & 0xaaaa_aaaa),
            self.value | (free & 0x5555_5555),
        ]
    }

    /// Cube subtraction: disjoint cubes covering `self \ other`.
    ///
    /// Splits `self` along each bit that `other` fixes but `self` leaves
    /// free; the halves disagreeing with `other` survive, and what remains
    /// afterwards lies inside `other` and is dropped. At most 32 cubes
    /// result.
    #[must_use]
    pub fn subtract(&self, other: &Pattern) -> Vec<Pattern> {
        if !self.overlaps(other) {
            return vec![*self];
        }
        let mut survivors = Vec::new();
        let mut current = *self;
        let split_bits = other.mask & !self.mask;
        for bit_index in 0..32 {
            let bit = 1u32 << bit_index;
            if split_bits & bit == 0 {
                continue;
            }
            survivors.push(Pattern {
                mask: current.mask | bit,
                value: current.value | (bit & !other.value),
            });
            current = Pattern {
                mask: current.mask | bit,
                value: current.value | (bit & other.value),
            };
        }
        // `current` now agrees with `other` on every cared bit, i.e. it is
        // contained in `other`, so it is exactly the part removed.
        survivors
    }
}

impl From<&DecodeRule> for Pattern {
    fn from(rule: &DecodeRule) -> Pattern {
        Pattern::new(rule.mask, rule.value)
    }
}

/// A set of pairwise-disjoint cubes, closed under cube subtraction.
#[derive(Debug, Clone)]
pub struct PatternSet {
    cubes: Vec<Pattern>,
}

impl PatternSet {
    /// The set covering every 32-bit word.
    #[must_use]
    pub fn universe() -> PatternSet {
        PatternSet {
            cubes: vec![Pattern::universe()],
        }
    }

    /// Removes every word covered by `pattern` from the set.
    pub fn subtract(&mut self, pattern: &Pattern) {
        self.cubes = self
            .cubes
            .iter()
            .flat_map(|cube| cube.subtract(pattern))
            .collect();
    }

    /// The disjoint cubes of the set.
    #[must_use]
    pub fn cubes(&self) -> &[Pattern] {
        &self.cubes
    }

    /// Total number of words covered (exact, since cubes are disjoint).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cubes.iter().map(Pattern::count).sum()
    }

    /// Whether `word` is covered by any cube.
    #[must_use]
    pub fn covers(&self, word: u32) -> bool {
        self.cubes.iter().any(|cube| cube.covers(word))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_testkit::check_cases;

    #[test]
    fn universe_counts_the_full_space() {
        assert_eq!(Pattern::universe().count(), 1u64 << 32);
        assert_eq!(PatternSet::universe().count(), 1u64 << 32);
    }

    #[test]
    fn overlap_is_symmetric_and_exact() {
        let a = Pattern::new(0x0000_00ff, 0x13);
        let b = Pattern::new(0x0000_0f00, 0x100);
        assert!(a.overlaps(&b) && b.overlaps(&a));
        let c = Pattern::new(0x0000_00ff, 0x33);
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn subtraction_partitions_counts() {
        let a = Pattern::new(0x0000_007f, 0x13);
        let b = Pattern::new(0x0000_707f, 0x13);
        let diff = a.subtract(&b);
        let diff_count: u64 = diff.iter().map(Pattern::count).sum();
        assert_eq!(diff_count + b.count(), a.count());
        for cube in &diff {
            assert!(!cube.overlaps(&b));
        }
    }

    #[test]
    fn disjoint_subtraction_is_identity() {
        let a = Pattern::new(0x0000_007f, 0x13);
        let b = Pattern::new(0x0000_007f, 0x33);
        assert_eq!(a.subtract(&b), vec![a]);
    }

    #[test]
    fn subtracting_self_empties_the_cube() {
        let a = Pattern::new(0x0000_707f, 0x13);
        assert!(a.subtract(&a).is_empty());
    }

    #[test]
    fn membership_matches_subtraction_semantics() {
        // Randomised: after subtracting b from the universe, a word is
        // covered exactly when b does not cover it.
        check_cases(0x717e_0001, 128, |rng| {
            let b = Pattern::new(rng.next_u32(), rng.next_u32());
            let mut set = PatternSet::universe();
            set.subtract(&b);
            let word = rng.next_u32();
            assert_eq!(set.covers(word), !b.covers(word));
            assert_eq!(set.count(), (1u64 << 32) - b.count());
        });
    }

    #[test]
    fn corner_samples_stay_inside_the_cube() {
        check_cases(0x717e_0002, 64, |rng| {
            let p = Pattern::new(rng.next_u32(), rng.next_u32());
            for word in p.corner_samples() {
                assert!(p.covers(word));
            }
        });
    }

    #[test]
    fn intersection_covers_common_words() {
        let a = Pattern::new(0x0000_00ff, 0x13);
        let b = Pattern::new(0x0000_0f0f, 0x103);
        let i = a.intersect(&b).expect("overlapping");
        assert!(a.covers(i.sample()) && b.covers(i.sample()));
    }
}
