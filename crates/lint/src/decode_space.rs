//! The static decode-space theorems over [`DECODE_TABLE`].
//!
//! Three theorems are checked without enumerating the 2^32 word space:
//!
//! 1. **Disjointness** — no two decode rules overlap, so first-match
//!    equals only-match and every legal word has exactly one decoding.
//! 2. **Completeness** — subtracting every rule cube from the universe
//!    leaves exactly the illegal space: its word count must equal
//!    `2^32 − Σ rule counts`, every residual corner sample must be
//!    rejected by [`decode`], and every rule corner sample accepted.
//! 3. **Encode/decode consistency** — every emitter range of `encode` is
//!    accepted by exactly its own rule, and round-trips through
//!    [`decode`] unchanged.
//!
//! The fourth theorem of the analyzer — cross-model agreement on illegal
//! words — is execution-based and lives in [`crate::cross`].

use symcosim_isa::{
    decode, encode, BranchKind, CsrOp, Instr, LoadKind, OpKind, Reg, StoreKind, DECODE_TABLE,
};

use crate::pattern::{Pattern, PatternSet};

/// Two decode rules sharing at least one word.
#[derive(Debug, Clone)]
pub struct OverlapFinding {
    /// Name of the first rule.
    pub first: &'static str,
    /// Name of the second rule.
    pub second: &'static str,
    /// A concrete word both rules accept.
    pub word: u32,
}

/// A disagreement between the cube algebra and the runtime decoder.
#[derive(Debug, Clone)]
pub struct CompletenessViolation {
    /// The probed word (or `0` for the count identity).
    pub word: u32,
    /// What went wrong.
    pub detail: String,
}

/// An encoder output not accepted by exactly its own rule.
#[derive(Debug, Clone)]
pub struct EncodeViolation {
    /// The emitted word.
    pub word: u32,
    /// The expected rule name.
    pub rule: &'static str,
    /// What went wrong.
    pub detail: String,
}

/// Result of the three static decode-space theorems.
#[derive(Debug, Clone)]
pub struct DecodeSpaceReport {
    /// Number of rules in [`DECODE_TABLE`].
    pub rules: usize,
    /// Words accepted by some rule (exact, from the cube algebra).
    pub legal_words: u64,
    /// Words accepted by no rule.
    pub illegal_words: u64,
    /// Disjoint cubes covering the illegal space.
    pub residual_cubes: usize,
    /// Theorem 1 violations.
    pub overlaps: Vec<OverlapFinding>,
    /// Theorem 2 violations.
    pub completeness_violations: Vec<CompletenessViolation>,
    /// Theorem 3 violations.
    pub encode_violations: Vec<EncodeViolation>,
}

impl DecodeSpaceReport {
    /// Total number of theorem violations.
    #[must_use]
    pub fn findings(&self) -> usize {
        self.overlaps.len() + self.completeness_violations.len() + self.encode_violations.len()
    }
}

/// Theorem 1: every pair of decode rules is disjoint.
#[must_use]
pub fn check_disjointness() -> Vec<OverlapFinding> {
    let mut overlaps = Vec::new();
    for (i, a) in DECODE_TABLE.iter().enumerate() {
        let pa = Pattern::from(a);
        for b in &DECODE_TABLE[i + 1..] {
            let pb = Pattern::from(b);
            if let Some(shared) = pa.intersect(&pb) {
                overlaps.push(OverlapFinding {
                    first: a.name,
                    second: b.name,
                    word: shared.sample(),
                });
            }
        }
    }
    overlaps
}

/// The illegal space: the universe minus every rule cube, as disjoint
/// ternary cubes.
#[must_use]
pub fn illegal_space() -> PatternSet {
    let mut residual = PatternSet::universe();
    for rule in DECODE_TABLE {
        residual.subtract(&Pattern::from(rule));
    }
    residual
}

/// Theorem 2: the residual of the subtraction is exactly the set of words
/// the runtime decoder rejects.
#[must_use]
pub fn check_completeness(residual: &PatternSet) -> Vec<CompletenessViolation> {
    let mut violations = Vec::new();

    // Count identity (needs disjointness, which theorem 1 establishes).
    let legal: u64 = DECODE_TABLE
        .iter()
        .map(|rule| Pattern::from(rule).count())
        .sum();
    if residual.count() + legal != 1u64 << 32 {
        violations.push(CompletenessViolation {
            word: 0,
            detail: format!(
                "count identity broken: {} residual + {} legal != 2^32",
                residual.count(),
                legal
            ),
        });
    }

    // Every residual corner sample must be rejected by the decoder...
    for cube in residual.cubes() {
        for word in cube.corner_samples() {
            if decode(word).is_ok() {
                violations.push(CompletenessViolation {
                    word,
                    detail: format!("{word:#010x} is in the residual but decodes"),
                });
            }
        }
    }

    // ...and every rule corner sample accepted, outside the residual.
    for rule in DECODE_TABLE {
        for word in Pattern::from(rule).corner_samples() {
            if decode(word).is_err() {
                violations.push(CompletenessViolation {
                    word,
                    detail: format!("{word:#010x} matches rule {} but is rejected", rule.name),
                });
            }
            if residual.covers(word) {
                violations.push(CompletenessViolation {
                    word,
                    detail: format!(
                        "{word:#010x} matches rule {} yet lies in the residual",
                        rule.name
                    ),
                });
            }
        }
    }

    violations
}

/// Operand-corner representatives for every rule, keyed by rule name.
///
/// Covers register corners (`x0`/`x31`), immediate extremes and the CSR
/// address corners, so each emitter is probed at the edges of its range.
fn representatives() -> Vec<(&'static str, Vec<Instr>)> {
    let regs = [Reg::X0, Reg::X31];
    let mut out: Vec<(&'static str, Vec<Instr>)> = Vec::new();

    let mut push = |name: &'static str, instrs: Vec<Instr>| out.push((name, instrs));

    let mut upper = Vec::new();
    let mut jals = Vec::new();
    for rd in regs {
        for imm in [i32::MIN, 0, 0x7ffff << 12] {
            upper.push((rd, imm & !0xfff));
        }
        for offset in [-(1 << 20), 0, (1 << 20) - 2] {
            jals.push(Instr::Jal { rd, offset });
        }
    }
    push(
        "lui",
        upper
            .iter()
            .map(|&(rd, imm)| Instr::Lui { rd, imm })
            .collect(),
    );
    push(
        "auipc",
        upper
            .iter()
            .map(|&(rd, imm)| Instr::Auipc { rd, imm })
            .collect(),
    );
    push("jal", jals);
    push(
        "jalr",
        vec![
            Instr::Jalr {
                rd: Reg::X0,
                rs1: Reg::X31,
                imm: -2048,
            },
            Instr::Jalr {
                rd: Reg::X31,
                rs1: Reg::X0,
                imm: 2047,
            },
        ],
    );

    for (name, kind) in [
        ("beq", BranchKind::Beq),
        ("bne", BranchKind::Bne),
        ("blt", BranchKind::Blt),
        ("bge", BranchKind::Bge),
        ("bltu", BranchKind::Bltu),
        ("bgeu", BranchKind::Bgeu),
    ] {
        push(
            name,
            vec![
                Instr::Branch {
                    kind,
                    rs1: Reg::X0,
                    rs2: Reg::X31,
                    offset: -4096,
                },
                Instr::Branch {
                    kind,
                    rs1: Reg::X31,
                    rs2: Reg::X0,
                    offset: 4094,
                },
            ],
        );
    }

    for (name, kind) in [
        ("lb", LoadKind::Lb),
        ("lh", LoadKind::Lh),
        ("lw", LoadKind::Lw),
        ("lbu", LoadKind::Lbu),
        ("lhu", LoadKind::Lhu),
    ] {
        push(
            name,
            vec![
                Instr::Load {
                    kind,
                    rd: Reg::X0,
                    rs1: Reg::X31,
                    imm: -2048,
                },
                Instr::Load {
                    kind,
                    rd: Reg::X31,
                    rs1: Reg::X0,
                    imm: 2047,
                },
            ],
        );
    }

    for (name, kind) in [
        ("sb", StoreKind::Sb),
        ("sh", StoreKind::Sh),
        ("sw", StoreKind::Sw),
    ] {
        push(
            name,
            vec![
                Instr::Store {
                    kind,
                    rs1: Reg::X0,
                    rs2: Reg::X31,
                    imm: -2048,
                },
                Instr::Store {
                    kind,
                    rs1: Reg::X31,
                    rs2: Reg::X0,
                    imm: 2047,
                },
            ],
        );
    }

    macro_rules! i_type {
        ($name:literal, $variant:ident) => {
            push(
                $name,
                vec![
                    Instr::$variant {
                        rd: Reg::X0,
                        rs1: Reg::X31,
                        imm: -2048,
                    },
                    Instr::$variant {
                        rd: Reg::X31,
                        rs1: Reg::X0,
                        imm: 2047,
                    },
                ],
            );
        };
    }
    i_type!("addi", Addi);
    i_type!("slti", Slti);
    i_type!("sltiu", Sltiu);
    i_type!("xori", Xori);
    i_type!("ori", Ori);
    i_type!("andi", Andi);

    macro_rules! shift {
        ($name:literal, $variant:ident) => {
            push(
                $name,
                vec![
                    Instr::$variant {
                        rd: Reg::X0,
                        rs1: Reg::X31,
                        shamt: 0,
                    },
                    Instr::$variant {
                        rd: Reg::X31,
                        rs1: Reg::X0,
                        shamt: 31,
                    },
                ],
            );
        };
    }
    shift!("slli", Slli);
    shift!("srli", Srli);
    shift!("srai", Srai);

    for (name, kind) in [
        ("add", OpKind::Add),
        ("sub", OpKind::Sub),
        ("sll", OpKind::Sll),
        ("slt", OpKind::Slt),
        ("sltu", OpKind::Sltu),
        ("xor", OpKind::Xor),
        ("srl", OpKind::Srl),
        ("sra", OpKind::Sra),
        ("or", OpKind::Or),
        ("and", OpKind::And),
    ] {
        push(
            name,
            vec![
                Instr::Op {
                    kind,
                    rd: Reg::X0,
                    rs1: Reg::X31,
                    rs2: Reg::X0,
                },
                Instr::Op {
                    kind,
                    rd: Reg::X31,
                    rs1: Reg::X0,
                    rs2: Reg::X31,
                },
            ],
        );
    }

    push(
        "fence",
        vec![
            Instr::Fence { pred: 0, succ: 0 },
            Instr::Fence {
                pred: 0xf,
                succ: 0xf,
            },
        ],
    );
    push("fence.i", vec![Instr::FenceI]);
    push("ecall", vec![Instr::Ecall]);
    push("ebreak", vec![Instr::Ebreak]);
    push("mret", vec![Instr::Mret]);
    push("wfi", vec![Instr::Wfi]);

    for (name, op) in [
        ("csrrw", CsrOp::Rw),
        ("csrrs", CsrOp::Rs),
        ("csrrc", CsrOp::Rc),
    ] {
        push(
            name,
            vec![
                Instr::Csr {
                    op,
                    rd: Reg::X0,
                    rs1: Reg::X31,
                    csr: 0,
                },
                Instr::Csr {
                    op,
                    rd: Reg::X31,
                    rs1: Reg::X0,
                    csr: 0xfff,
                },
            ],
        );
    }
    for (name, op) in [
        ("csrrwi", CsrOp::Rw),
        ("csrrsi", CsrOp::Rs),
        ("csrrci", CsrOp::Rc),
    ] {
        push(
            name,
            vec![
                Instr::CsrImm {
                    op,
                    rd: Reg::X0,
                    uimm: 31,
                    csr: 0,
                },
                Instr::CsrImm {
                    op,
                    rd: Reg::X31,
                    uimm: 0,
                    csr: 0xfff,
                },
            ],
        );
    }

    out
}

/// Theorem 3: each emitter's output is accepted by exactly its own rule
/// and round-trips through the decoder.
#[must_use]
pub fn check_encode_consistency() -> Vec<EncodeViolation> {
    let mut violations = Vec::new();
    let reps = representatives();

    // The theorem must cover every rule.
    for rule in DECODE_TABLE {
        if !reps.iter().any(|(name, _)| *name == rule.name) {
            violations.push(EncodeViolation {
                word: rule.value,
                rule: rule.name,
                detail: format!("no encoder representative exercises rule {}", rule.name),
            });
        }
    }

    for (name, instrs) in reps {
        for instr in instrs {
            let word = encode(&instr);
            let matching: Vec<&'static str> = DECODE_TABLE
                .iter()
                .filter(|rule| rule.matches(word))
                .map(|rule| rule.name)
                .collect();
            if matching != [name] {
                violations.push(EncodeViolation {
                    word,
                    rule: name,
                    detail: format!("encoded word matches rules {matching:?}, expected [{name:?}]"),
                });
                continue;
            }
            if decode(word) != Ok(instr) {
                violations.push(EncodeViolation {
                    word,
                    rule: name,
                    detail: format!("{word:#010x} does not round-trip through decode"),
                });
            }
        }
    }
    violations
}

/// Runs all three static theorems and assembles the report.
#[must_use]
pub fn analyze() -> DecodeSpaceReport {
    let overlaps = check_disjointness();
    let residual = illegal_space();
    let completeness_violations = check_completeness(&residual);
    let encode_violations = check_encode_consistency();
    let illegal_words = residual.count();
    DecodeSpaceReport {
        rules: DECODE_TABLE.len(),
        legal_words: (1u64 << 32) - illegal_words,
        illegal_words,
        residual_cubes: residual.cubes().len(),
        overlaps,
        completeness_violations,
        encode_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_table_is_disjoint() {
        assert!(check_disjointness().is_empty());
    }

    #[test]
    fn decode_table_is_complete() {
        let residual = illegal_space();
        assert!(check_completeness(&residual).is_empty());
    }

    #[test]
    fn encoders_land_in_their_own_rules() {
        let violations = check_encode_consistency();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn legal_word_count_is_stable() {
        // 3 opcode-only rules (2^25 words each), 29 opcode+funct3 rules
        // (2^22), 13 opcode+funct3+funct7 rules (2^15), 4 exact words.
        let report = analyze();
        assert_eq!(report.rules, 49);
        assert_eq!(
            report.legal_words,
            3 * (1 << 25) + 29 * (1 << 22) + 13 * (1 << 15) + 4
        );
        assert_eq!(report.legal_words + report.illegal_words, 1u64 << 32);
        assert_eq!(report.findings(), 0);
    }
}
