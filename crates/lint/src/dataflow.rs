//! Abstract-interpretation dataflow lint: known-bits/interval findings
//! and merge opportunities over a real BRANCH-opcode co-simulation sweep.
//!
//! Unlike the `--ir` pass, which re-validates structural well-formedness,
//! this pass consumes the [`symcosim_symex::absint`] lattice: every
//! explored path's constraint DAG and output frontier are analysed
//! *offline* — the analysis layer issues no solver queries — for
//!
//! * **dead branches** — path conditions the lattice refutes outright
//!   (gating: the engine only keeps solver-feasible paths, so one of
//!   these on a live path means the tooling is corrupt),
//! * **constant outputs** — output-frontier terms that are not literal
//!   constants but that known-bits/interval analysis pins to one value,
//! * **width-truncation hazards** — `Extract` nodes that provably drop
//!   known-one bits of their operand,
//! * **unconstrained influencers** — symbols that reach an output cone
//!   without appearing in any path constraint,
//!
//! plus, with `--merge-report`, a sibling-group merge-opportunity
//! analysis. Every fork of the exploration tree groups the certified
//! paths sharing its decision prefix; the group is *provably mergeable*
//! when the forked decision demands fetch-slot (instruction-word) bits
//! that no output cone in the group demands — established with the
//! bit-granular [`symcosim_symex::demanded_bits`] pass, since every
//! path reads *some* bits of the same fetched word and symbol-level
//! supports cannot separate a decode field from an immediate field.
//! Such siblings diverge only on how the fetched word decodes, never on
//! bits the models expose, so a path-merging explorer could re-join
//! them without losing observable behaviour.

use std::collections::{BTreeSet, HashMap, HashSet};

use symcosim_core::{CoSim, SymbolicJudge};
use symcosim_isa::opcodes;
use symcosim_iss::IssConfig;
use symcosim_microrv32::CoreConfig;
use symcosim_symex::{
    bits_disjoint, fetch_slot_bits, AbsInt, Context, Engine, EngineConfig, Node, PathResult,
    SearchStrategy, SymExec, TermId,
};

use crate::ir::only_opcode_imem;

/// Opcode the dataflow pass explores. BRANCH exercises both decode
/// splits (six legal `funct3` values plus two illegal ones) and a
/// data-dependent taken/not-taken split per instruction, which is what
/// the sibling-merge analysis needs.
pub const DATAFLOW_OPCODE: u32 = opcodes::BRANCH;

/// Instructions retired per path. Two, so sibling pairs exist both at
/// first-instruction decode depth and deeper in the second fetch slot.
pub const DATAFLOW_INSTR_LIMIT: u32 = 2;

/// Most mergeable groups listed in the report; the counts stay exact.
pub const MERGE_SAMPLE_CAP: usize = 8;

/// One provably mergeable sibling group.
#[derive(Debug, Clone)]
pub struct MergeGroup {
    /// Decision depth of the fork the group diverges at.
    pub depth: usize,
    /// Number of paths in the group (both arms).
    pub size: usize,
    /// Path indices (exploration order), capped at
    /// [`MERGE_SAMPLE_CAP`] entries.
    pub paths: Vec<usize>,
    /// The diverging fetch-slot bits, rendered as
    /// `"<symbol> bits <mask>"`, sorted by symbol.
    pub diverging_bits: Vec<String>,
}

/// Result of the sibling merge-opportunity analysis (`--merge-report`).
#[derive(Debug, Clone)]
pub struct MergeReport {
    /// Fork points of the exploration tree (each defines a sibling
    /// group: the paths sharing the fork's decision prefix).
    pub sibling_groups: usize,
    /// Groups whose diverging constraints demand fetch-slot bits.
    pub fetch_slot_groups: usize,
    /// Groups whose output cones are additionally disjoint from those
    /// diverging bits — provably mergeable.
    pub mergeable_groups: usize,
    /// The first [`MERGE_SAMPLE_CAP`] mergeable groups.
    pub samples: Vec<MergeGroup>,
    /// Whether [`MERGE_SAMPLE_CAP`] dropped mergeable groups from
    /// `samples` (the counts above always stay exact).
    pub samples_truncated: bool,
}

/// Result of the dataflow pass.
#[derive(Debug, Clone)]
pub struct DataflowReport {
    /// The opcode swept.
    pub opcode: u32,
    /// Symbolic paths analysed.
    pub paths_checked: usize,
    /// Path conditions the lattice refutes (gating — must be empty).
    pub dead_branches: Vec<String>,
    /// Output terms pinned to one value by the lattice without being
    /// literal constants. Informational.
    pub constant_outputs: Vec<String>,
    /// `Extract` nodes in the output cones that provably drop known-one
    /// bits. Informational.
    pub truncation_hazards: Vec<String>,
    /// Symbols reaching an output cone while appearing in no path
    /// constraint, deduplicated and sorted. Informational.
    pub unconstrained_influencers: Vec<String>,
    /// Sibling merge-opportunity analysis, when requested.
    pub merge: Option<MergeReport>,
}

impl DataflowReport {
    /// Number of gating findings.
    #[must_use]
    pub fn findings(&self) -> usize {
        self.dead_branches.len()
    }
}

/// Per-path data collected during exploration; the analysis below runs
/// over these DAGs after the engine is done.
struct PathCone {
    constraints: Vec<TermId>,
    outputs: Vec<TermId>,
}

/// Runs the BRANCH sweep and the offline dataflow analysis.
#[must_use]
pub fn analyze(merge: bool) -> DataflowReport {
    let mut engine = Engine::new(EngineConfig {
        strategy: SearchStrategy::Dfs,
        max_paths: 4096,
        max_decisions_per_path: 4096,
        emit_test_vectors: false,
        seed: 0xdf_0063,
        ..EngineConfig::default()
    });
    let outcome = engine.explore(|exec: &mut SymExec<'_>| {
        let imem = only_opcode_imem(DATAFLOW_OPCODE);
        let mut cosim = CoSim::new(
            exec,
            CoreConfig::fixed(),
            IssConfig::fixed(),
            None,
            imem,
            2,
            16,
            DATAFLOW_INSTR_LIMIT,
            128,
        );
        let _ = cosim.run(exec, &mut SymbolicJudge);
        let mut outputs = vec![cosim.core.pc(), cosim.iss.pc()];
        outputs.extend(cosim.core.registers().iter().copied());
        outputs.extend(cosim.iss.registers().iter().copied());
        PathCone {
            constraints: exec.constraints().to_vec(),
            outputs,
        }
    });

    let ctx = engine.ctx();
    let mut absint = AbsInt::new();

    let mut dead_branches = Vec::new();
    let mut constant_seen = HashSet::new();
    let mut constant_outputs = Vec::new();
    let mut influencers = BTreeSet::new();
    for (index, path) in outcome.paths.iter().enumerate() {
        let cone = &path.value;
        for (ci, &c) in cone.constraints.iter().enumerate() {
            let folded_false = ctx.const_value(c) == Some(0);
            if folded_false || absint.const_bool(ctx, c) == Some(false) {
                dead_branches.push(format!(
                    "path {index}: constraint #{ci} ({c}) is statically false"
                ));
            }
        }
        let constrained = support_union(ctx, &mut absint, &cone.constraints);
        let observed = support_union(ctx, &mut absint, &cone.outputs);
        for &sym in &observed {
            if constrained.binary_search(&sym).is_err() {
                if let Some(name) = ctx.symbol_name(sym) {
                    influencers.insert(name.to_string());
                }
            }
        }
        for &out in &cone.outputs {
            if ctx.const_value(out).is_none() && constant_seen.insert(out) {
                if let Some(value) = absint.fact(ctx, out).as_const() {
                    constant_outputs.push(format!(
                        "output {out} is statically {value:#x} (width {})",
                        ctx.width(out)
                    ));
                }
            }
        }
    }

    let all_outputs: Vec<TermId> = {
        let mut seen = HashSet::new();
        outcome
            .paths
            .iter()
            .flat_map(|p| p.value.outputs.iter().copied())
            .filter(|&t| seen.insert(t))
            .collect()
    };
    let truncation_hazards = truncation_hazards(ctx, &mut absint, &all_outputs);

    let merge = merge.then(|| merge_report(ctx, &outcome.paths));

    DataflowReport {
        opcode: DATAFLOW_OPCODE,
        paths_checked: outcome.paths.len(),
        dead_branches,
        constant_outputs,
        truncation_hazards,
        unconstrained_influencers: influencers.into_iter().collect(),
        merge,
    }
}

/// Sorted union of the symbol supports of `roots`.
fn support_union(ctx: &Context, absint: &mut AbsInt, roots: &[TermId]) -> Vec<TermId> {
    let mut symbols = Vec::new();
    for &root in roots {
        symbols.extend(absint.support(ctx, root).iter().copied());
    }
    symbols.sort_unstable();
    symbols.dedup();
    symbols
}

/// `Extract` nodes reachable from `roots` that provably drop known-one
/// bits: the operand's fact has a known-one bit strictly above the
/// extracted range, so narrowing discards live data. Exposed as a plain
/// function so the detector is testable on hand-built DAGs.
#[must_use]
pub fn truncation_hazards(ctx: &Context, absint: &mut AbsInt, roots: &[TermId]) -> Vec<String> {
    let mut hazards = Vec::new();
    let mut visited = vec![false; ctx.num_nodes()];
    let mut stack: Vec<TermId> = roots.to_vec();
    while let Some(id) = stack.pop() {
        if visited[id.index()] {
            continue;
        }
        visited[id.index()] = true;
        if let Node::Extract { term, hi, .. } = ctx.node(id) {
            let fact = absint.fact(ctx, term);
            let dropped = fact.bits.mask & fact.bits.value & !low_ones(hi + 1);
            if dropped != 0 {
                hazards.push(format!(
                    "extract {id} drops known-one bits {dropped:#x} of {term} \
                     (width {} -> {})",
                    ctx.width(term),
                    ctx.width(id)
                ));
            }
        }
        for_each_operand(ctx.node(id), |t| stack.push(t));
    }
    hazards.sort_unstable();
    hazards
}

/// Sibling-group merge analysis over the explored paths.
///
/// Every *fork point* of the exploration tree — a decision prefix some
/// paths continued with `false` and others with `true` — defines a
/// sibling group: all paths sharing the prefix. The group's *diverging
/// constraints* are the ones present in every path of one arm and no
/// path of the other (the forked decision in both polarities, plus its
/// re-assertions); everything above the fork is common, everything below
/// is arm-internal. A group is provably mergeable when the diverging
/// constraints demand some fetch-slot bits and no output cone in the
/// group demands any of them.
fn merge_report(ctx: &Context, paths: &[PathResult<PathCone>]) -> MergeReport {
    // Index fork points: map each decision prefix to the paths taking
    // `false` and `true` there.
    let mut forks: Vec<(Vec<bool>, Vec<usize>, Vec<usize>)> = Vec::new();
    let mut fork_index: HashMap<Vec<bool>, usize> = HashMap::new();
    for (index, path) in paths.iter().enumerate() {
        for depth in 0..path.decisions.len() {
            let prefix = path.decisions[..depth].to_vec();
            let slot = *fork_index.entry(prefix).or_insert_with(|| {
                forks.push((path.decisions[..depth].to_vec(), Vec::new(), Vec::new()));
                forks.len() - 1
            });
            if path.decisions[depth] {
                forks[slot].2.push(index);
            } else {
                forks[slot].1.push(index);
            }
        }
    }

    let mut sibling_groups = 0;
    let mut fetch_slot_groups = 0;
    let mut mergeable_groups = 0;
    let mut samples = Vec::new();
    for (prefix, falses, trues) in &forks {
        if falses.is_empty() || trues.is_empty() {
            continue; // a straight-line prefix, not a fork
        }
        sibling_groups += 1;
        let diverging = diverging_constraints(paths, falses, trues);
        let diverging_bits = fetch_slot_bits(ctx, &diverging);
        if diverging_bits.is_empty() {
            continue; // the fork diverges on register data, not fetch bits
        }
        fetch_slot_groups += 1;
        let outputs: Vec<TermId> = falses
            .iter()
            .chain(trues.iter())
            .flat_map(|&p| paths[p].value.outputs.iter().copied())
            .collect();
        let observed_bits = fetch_slot_bits(ctx, &outputs);
        if !bits_disjoint(&diverging_bits, &observed_bits) {
            continue;
        }
        mergeable_groups += 1;
        if samples.len() < MERGE_SAMPLE_CAP {
            let mut group_paths: Vec<usize> = falses.iter().chain(trues.iter()).copied().collect();
            group_paths.sort_unstable();
            samples.push(MergeGroup {
                depth: prefix.len(),
                size: group_paths.len(),
                paths: group_paths.into_iter().take(MERGE_SAMPLE_CAP).collect(),
                diverging_bits: diverging_bits
                    .iter()
                    .filter_map(|&(sym, bits)| {
                        ctx.symbol_name(sym)
                            .map(|name| format!("{name} bits {bits:#010x}"))
                    })
                    .collect(),
            });
        }
    }
    let samples_truncated = mergeable_groups > samples.len();
    MergeReport {
        sibling_groups,
        fetch_slot_groups,
        mergeable_groups,
        samples,
        samples_truncated,
    }
}

/// Constraints held by every path of one arm and no path of the other:
/// the forked decision itself (in both polarities) plus anything asserted
/// unconditionally in exactly one arm.
fn diverging_constraints(
    paths: &[PathResult<PathCone>],
    falses: &[usize],
    trues: &[usize],
) -> Vec<TermId> {
    let union_of = |arm: &[usize]| -> HashSet<TermId> {
        arm.iter()
            .flat_map(|&p| paths[p].value.constraints.iter().copied())
            .collect()
    };
    let intersection_of = |arm: &[usize]| -> HashSet<TermId> {
        let mut iter = arm.iter();
        let mut common: HashSet<TermId> = iter
            .next()
            .map(|&p| paths[p].value.constraints.iter().copied().collect())
            .unwrap_or_default();
        for &p in iter {
            let set: HashSet<TermId> = paths[p].value.constraints.iter().copied().collect();
            common.retain(|c| set.contains(c));
        }
        common
    };
    let (union_f, union_t) = (union_of(falses), union_of(trues));
    let mut diverging: Vec<TermId> = intersection_of(falses)
        .into_iter()
        .filter(|c| !union_t.contains(c))
        .chain(
            intersection_of(trues)
                .into_iter()
                .filter(|c| !union_f.contains(c)),
        )
        .collect();
    diverging.sort_unstable();
    diverging
}

/// The low `n` bits set (`n` may be 64).
fn low_ones(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Pushes every operand of `node` to the visitor.
fn for_each_operand(node: Node, mut each: impl FnMut(TermId)) {
    match node {
        Node::Const { .. } | Node::Symbol { .. } => {}
        Node::Not(a) | Node::Extract { term: a, .. } => each(a),
        Node::ZeroExt { term: a, .. } | Node::SignExt { term: a, .. } => each(a),
        Node::And(a, b)
        | Node::Or(a, b)
        | Node::Xor(a, b)
        | Node::Add(a, b)
        | Node::Sub(a, b)
        | Node::Mul(a, b)
        | Node::Shl(a, b)
        | Node::Lshr(a, b)
        | Node::Ashr(a, b)
        | Node::Eq(a, b)
        | Node::Ult(a, b)
        | Node::Slt(a, b)
        | Node::Concat { hi: a, lo: b } => {
            each(a);
            each(b);
        }
        Node::Ite(c, t, e) => {
            each(c);
            each(t);
            each(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_symex::FETCH_SLOT_PREFIX;

    #[test]
    fn truncation_detector_flags_known_one_drops() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let high_bit = ctx.constant(32, 1 << 20);
        let tagged = ctx.or(x, high_bit);
        let low = ctx.extract(tagged, 15, 0);
        let mut absint = AbsInt::new();
        let hazards = truncation_hazards(&ctx, &mut absint, &[low]);
        assert_eq!(hazards.len(), 1, "{hazards:#?}");
        assert!(hazards[0].contains("0x100000"), "{hazards:#?}");
        // Extracting a range that keeps the known-one bit is clean.
        let wide = ctx.extract(tagged, 24, 0);
        assert!(truncation_hazards(&ctx, &mut absint, &[wide]).is_empty());
    }

    #[test]
    fn branch_sweep_is_clean_and_finds_mergeable_siblings() {
        let report = analyze(true);
        assert!(report.paths_checked > 0);
        assert!(
            report.dead_branches.is_empty(),
            "{:#?}",
            report.dead_branches
        );
        assert_eq!(report.findings(), 0);
        // The initial register-file symbols flow to the outputs without
        // ever being constrained on at least one path.
        assert!(
            report
                .unconstrained_influencers
                .iter()
                .any(|n| n.starts_with("reg_x")),
            "{:#?}",
            report.unconstrained_influencers
        );
        let merge = report.merge.as_ref().expect("merge analysis requested");
        assert!(merge.sibling_groups > 0);
        assert!(
            merge.mergeable_groups > 0,
            "expected at least one provably-disjoint sibling group \
             ({} sibling groups, {} diverging on fetch-slot bits)",
            merge.sibling_groups,
            merge.fetch_slot_groups
        );
        assert!(merge.fetch_slot_groups >= merge.mergeable_groups);
        assert!(!merge.samples.is_empty());
        assert!(merge.samples.len() <= MERGE_SAMPLE_CAP);
        for group in &merge.samples {
            assert!(group.size >= 2);
            assert!(!group.paths.is_empty());
            assert!(!group.diverging_bits.is_empty());
            assert!(group
                .diverging_bits
                .iter()
                .all(|n| n.starts_with(FETCH_SLOT_PREFIX)));
        }
        // Deterministic: a second run reproduces the same counts.
        let again = analyze(true);
        assert_eq!(again.paths_checked, report.paths_checked);
        assert_eq!(
            again.merge.as_ref().map(|m| m.mergeable_groups),
            Some(merge.mergeable_groups)
        );
    }
}
