//! Offline re-verification of a dumped proof-audit artifact.
//!
//! `symcosim-cli verify --audit --audit-json PATH` dumps a
//! `symcosim-audit/1` document: the in-process auditor's counters plus
//! every retained UNSAT core-replay unit — a self-contained conflict cone
//! in DIMACS integers. This pass re-verifies each unit by naive unit
//! propagation alone ([`CoreReplayUnit::verify`]), with no solver and no
//! engine in the loop, mirroring the `--coverage` offline
//! re-certification path: the CI gate checks after the fact that every
//! cached UNSAT answer really is refuted by its cone.
//!
//! [`CoreReplayUnit::verify`]: symcosim_core::CoreReplayUnit::verify

use symcosim_core::AuditDump;

/// Result of the offline audit recheck.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Units present in the artifact and re-verified here.
    pub units_checked: usize,
    /// Cores the in-process auditor replayed past its retention cap —
    /// audited online, absent from the artifact.
    pub units_dropped: u64,
    /// Proof steps the in-process checker applied.
    pub steps: u64,
    /// SAT models the in-process checker evaluated.
    pub models: u64,
    /// UNSAT cores the in-process checker replayed.
    pub cores: u64,
    /// Failures the in-process auditor recorded (gating — a dump with a
    /// recorded failure documents an uncertified answer).
    pub recorded_failures: u64,
    /// Units rejected by the offline recheck, as `unit N: reason`
    /// (gating — must be empty).
    pub rejected: Vec<String>,
}

impl AuditReport {
    /// Number of gating findings.
    #[must_use]
    pub fn findings(&self) -> usize {
        self.rejected.len() + usize::from(self.recorded_failures > 0)
    }
}

/// Reads a dumped `symcosim-audit/1` document and re-verifies every
/// retained unit.
///
/// # Errors
///
/// Returns a message when the file cannot be read or is not a
/// well-formed artifact (the per-unit refutation verdicts are report
/// content, not errors).
pub fn check_audit_file(path: &str) -> Result<AuditReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    check_audit_json(&text).map_err(|e| format!("{path}: {e}"))
}

/// Re-verifies a `symcosim-audit/1` document given as a JSON string.
///
/// # Errors
///
/// Returns a message on malformed JSON, a wrong `schema` tag or an
/// ill-formed unit.
pub fn check_audit_json(text: &str) -> Result<AuditReport, String> {
    let dump = AuditDump::from_json(text)?;
    let rejected = dump
        .verify_units()
        .into_iter()
        .map(|(index, reason)| format!("unit {index}: {reason}"))
        .collect();
    Ok(AuditReport {
        units_checked: dump.units.len(),
        units_dropped: dump.units_dropped,
        steps: dump.stats.steps,
        models: dump.stats.models,
        cores: dump.stats.cores,
        recorded_failures: dump.stats.failures,
        rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_core::{CoreReplayUnit, ProofAuditStats};

    fn dump() -> AuditDump {
        AuditDump::new(
            ProofAuditStats {
                steps: 4,
                models: 1,
                cores: 1,
                bytes: 120,
                failures: 0,
            },
            vec![CoreReplayUnit {
                core: vec![1],
                clauses: vec![vec![-1, 2], vec![-2]],
            }],
        )
    }

    #[test]
    fn a_sound_artifact_rechecks_clean() {
        let report = check_audit_json(&dump().to_json()).expect("parses");
        assert_eq!(report.units_checked, 1);
        assert_eq!(report.findings(), 0);
    }

    #[test]
    fn a_tampered_cone_is_a_gating_finding() {
        let mut tampered = dump();
        // Drop the clause that closes the conflict: the core no longer
        // propagates to a contradiction.
        tampered.units[0].clauses.pop();
        let report = check_audit_json(&tampered.to_json()).expect("parses");
        assert_eq!(report.rejected.len(), 1, "{:?}", report.rejected);
        assert!(report.findings() > 0);
    }

    #[test]
    fn a_recorded_in_process_failure_gates() {
        let mut failed = dump();
        failed.stats.failures = 1;
        let report = check_audit_json(&failed.to_json()).expect("parses");
        assert!(report.rejected.is_empty());
        assert!(report.findings() > 0);
    }

    #[test]
    fn a_malformed_artifact_is_an_error_not_a_pass() {
        assert!(check_audit_json("{}").is_err());
        assert!(check_audit_file("/nonexistent/audit.json").is_err());
    }
}
