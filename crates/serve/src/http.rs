//! Minimal HTTP/1.1 plumbing for the verification service.
//!
//! The build environment is registry-free, so the daemon speaks a small,
//! hand-rolled subset of HTTP/1.1 directly over [`TcpStream`]: one request
//! per connection (`Connection: close` semantics), `Content-Length` bodies
//! on the way in, and either fixed-length or `chunked` bodies on the way
//! out. The same module carries the equally small blocking client the
//! `symcosim-serve client` subcommand and the integration tests use, so
//! both ends are exercised against each other.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body the server accepts (a job document is < 1 KiB;
/// this is purely a safety bound against malformed peers).
pub const MAX_BODY: usize = 1 << 20;

/// Largest request line / header line accepted.
const MAX_LINE: usize = 8 << 10;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, without query string.
    pub path: String,
    /// Body bytes (empty when the request has no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, or an error message suitable for a 400.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "body is not valid UTF-8".to_string())
    }
}

/// Reads one size-bounded line (terminated by `\n`, `\r` trimmed).
fn read_line(reader: &mut BufReader<&TcpStream>) -> io::Result<String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && line.is_empty() => {
                return Ok(String::new())
            }
            Err(e) => return Err(e),
        }
        if byte[0] == b'\n' {
            break;
        }
        if line.len() >= MAX_LINE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header line too long",
            ));
        }
        line.push(byte[0]);
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 header"))
}

/// Parses one request from `stream`. Returns `None` on an immediately
/// closed connection (the shutdown self-wake does this on purpose).
pub fn read_request(stream: &TcpStream) -> io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader)?;
    if request_line.is_empty() {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method, path, body }))
}

/// Spells out the reason phrase for the handful of statuses the service
/// uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response and flushes.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// [`respond`] with `application/json`.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    respond(stream, status, "application/json", body)
}

/// A plain-text error response built from a message.
pub fn respond_error(stream: &mut TcpStream, status: u16, message: &str) -> io::Result<()> {
    respond(stream, status, "text/plain", &format!("{message}\n"))
}

/// An in-flight `Transfer-Encoding: chunked` response body. Each
/// [`ChunkedWriter::write_chunk`] flushes, so the peer observes event
/// lines as they happen.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the body writer.
    pub fn start(stream: &'a mut TcpStream, content_type: &str) -> io::Result<ChunkedWriter<'a>> {
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk (skipping empty payloads, which would terminate
    /// the stream early) and flushes.
    pub fn write_chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunked body.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

/// A parsed client-side response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body, chunked bodies already de-chunked.
    pub body: String,
}

/// Reads the status line and headers; returns `(status, chunked,
/// content_length)`.
fn read_response_head(
    reader: &mut BufReader<&TcpStream>,
) -> io::Result<(u16, bool, Option<usize>)> {
    let status_line = read_line(reader)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let mut chunked = false;
    let mut content_length = None;
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            } else if name == "content-length" {
                content_length = value.parse().ok();
            }
        }
    }
    Ok((status, chunked, content_length))
}

/// Reads one chunked body to completion.
fn read_chunked(reader: &mut BufReader<&TcpStream>) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let size_line = read_line(reader)?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
        if size == 0 {
            let _ = read_line(reader); // trailing CRLF
            return Ok(body);
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader.read_exact(&mut body[start..])?;
        let _ = read_line(reader)?; // chunk CRLF
    }
}

/// Performs one blocking request against `addr` and returns the parsed
/// response (chunked bodies are drained to completion — use
/// [`stream_lines`] to observe a stream incrementally).
pub fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(&stream);
    let (status, chunked, content_length) = read_response_head(&mut reader)?;
    let bytes = if chunked {
        read_chunked(&mut reader)?
    } else if let Some(length) = content_length {
        let mut bytes = vec![0u8; length];
        reader.read_exact(&mut bytes)?;
        bytes
    } else {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        bytes
    };
    let body = String::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
    Ok(Response { status, body })
}

/// GETs `path` and feeds every newline-terminated line of the (chunked)
/// body to `visit` as it arrives. Returns the final status code.
pub fn stream_lines(addr: &str, path: &str, mut visit: impl FnMut(&str)) -> io::Result<u16> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;

    let mut reader = BufReader::new(&stream);
    let (status, chunked, _) = read_response_head(&mut reader)?;
    if !chunked {
        // Error responses are fixed-length; surface them line by line too.
        let mut rest = String::new();
        reader.read_to_string(&mut rest)?;
        for line in rest.lines() {
            visit(line);
        }
        return Ok(status);
    }
    let mut pending = String::new();
    loop {
        let size_line = read_line(&mut reader)?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad chunk size"))?;
        if size == 0 {
            break;
        }
        let mut chunk = vec![0u8; size];
        reader.read_exact(&mut chunk)?;
        let _ = read_line(&mut reader)?;
        pending.push_str(
            std::str::from_utf8(&chunk)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 chunk"))?,
        );
        while let Some(newline) = pending.find('\n') {
            let line: String = pending.drain(..=newline).collect();
            visit(line.trim_end());
        }
    }
    if !pending.is_empty() {
        visit(&pending);
    }
    Ok(status)
}
