//! `symcosim-serve`: a persistent verification service.
//!
//! The batch CLI pays the full exploration cost on every invocation. The
//! daemon in this crate keeps the expensive state — warm solver-chain
//! seeds per `(config hash, decode-space slice)` — alive across requests,
//! and turns one verification run into a shardable job:
//!
//! 1. `POST /jobs` accepts a [`JobSpec`](symcosim_core::JobSpec)
//!    (`symcosim-job/1` JSON) naming a session preset, knobs and a slice
//!    count.
//! 2. The scheduler splits the 32-bit decode space into that many
//!    cube-disjoint slices
//!    ([`partition_universe`](symcosim_isa::pattern::partition_universe))
//!    and fans them out over a verify-worker pool; each slice runs a full
//!    [`VerifySession`](symcosim_core::VerifySession) scoped to its cube,
//!    warmed from the seed store when an identical `(config, cube)` ran
//!    before.
//! 3. `GET /jobs/{id}/events` streams the per-slice progress events
//!    (`--progress-json` format) as newline-delimited JSON over a chunked
//!    response while the job runs.
//! 4. When the last slice lands, the merged coverage is proven to
//!    partition the legal decode space exactly once
//!    ([`merge_slice_coverage`](symcosim_core::merge_slice_coverage)) and
//!    certified; `GET /jobs/{id}/certificate` returns a certificate
//!    byte-identical to a single-process run's.
//!
//! Everything is `std`-only: a hand-rolled HTTP/1.1 subset over
//! [`std::net::TcpListener`] (module [`http`]) and a
//! `Mutex`/`Condvar` work queue (module [`jobs`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod jobs;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use symcosim_core::json::JsonValue;
use symcosim_core::JobSpec;

use crate::http::{read_request, respond, respond_error, respond_json, ChunkedWriter, Request};
use crate::jobs::JobManager;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Verify-worker threads draining the slice queue.
    pub verify_workers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            verify_workers: 2,
        }
    }
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    manager: Arc<JobManager>,
    stop: Arc<AtomicBool>,
    verify_workers: usize,
}

impl Server {
    /// Binds the listen socket and builds the scheduler.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(&config.addr)?,
            manager: Arc::new(JobManager::new()),
            stop: Arc::new(AtomicBool::new(false)),
            verify_workers: config.verify_workers.max(1),
        })
    }

    /// The actually bound address (resolves port `0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `POST /shutdown`: spawns the verify workers, then
    /// accepts one connection per request, each handled on its own
    /// thread. Returns after the workers have drained and joined.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn run(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.verify_workers)
            .map(|_| {
                let manager = Arc::clone(&self.manager);
                thread::spawn(move || manager.worker_loop())
            })
            .collect();

        let local = self.local_addr()?;
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(_) => continue,
            };
            let manager = Arc::clone(&self.manager);
            let stop = Arc::clone(&self.stop);
            thread::spawn(move || {
                let mut stream = stream;
                if let Ok(Some(request)) = read_request(&stream) {
                    let _ = route(&mut stream, &request, &manager, &stop, local);
                }
            });
        }

        self.manager.shutdown();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Dispatches one parsed request.
fn route(
    stream: &mut TcpStream,
    request: &Request,
    manager: &Arc<JobManager>,
    stop: &Arc<AtomicBool>,
    local: SocketAddr,
) -> io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => respond(stream, 200, "text/plain", "ok\n"),
        ("POST", "/jobs") => submit(stream, request, manager),
        ("POST", "/shutdown") => {
            stop.store(true, Ordering::SeqCst);
            manager.shutdown();
            let result = respond(stream, 200, "text/plain", "shutting down\n");
            // The accept loop only observes the flag on its next
            // connection; wake it with a throwaway one.
            let _ = TcpStream::connect(local);
            result
        }
        ("GET", path) if path.starts_with("/jobs/") => job_resource(stream, path, manager),
        (_, "/jobs" | "/healthz" | "/shutdown") => respond_error(stream, 405, "method not allowed"),
        _ => respond_error(stream, 404, "no such resource"),
    }
}

/// `POST /jobs`: parse, validate, enqueue.
fn submit(stream: &mut TcpStream, request: &Request, manager: &Arc<JobManager>) -> io::Result<()> {
    let body = match request.body_utf8() {
        Ok(body) => body,
        Err(message) => return respond_error(stream, 400, &message),
    };
    let value = match JsonValue::parse(body) {
        Ok(value) => value,
        Err(error) => return respond_error(stream, 400, &format!("bad JSON: {error}")),
    };
    let spec = match JobSpec::from_json(&value) {
        Ok(spec) => spec,
        Err(message) => return respond_error(stream, 400, &format!("bad job: {message}")),
    };
    match manager.submit(&spec) {
        Ok(id) => {
            let status = manager
                .status_json(id)
                .expect("a just-submitted job has a status");
            respond_json(stream, 201, &status)
        }
        Err(message) => respond_error(stream, 400, &format!("bad job: {message}")),
    }
}

/// `GET /jobs/{id}[/events|/certificate]`.
fn job_resource(stream: &mut TcpStream, path: &str, manager: &Arc<JobManager>) -> io::Result<()> {
    let rest = path.strip_prefix("/jobs/").unwrap_or_default();
    let (id, resource) = match rest.split_once('/') {
        Some((id, resource)) => (id, Some(resource)),
        None => (rest, None),
    };
    let Ok(id) = id.parse::<usize>() else {
        return respond_error(stream, 404, "job ids are integers");
    };
    match resource {
        None => match manager.status_json(id) {
            Some(status) => respond_json(stream, 200, &status),
            None => respond_error(stream, 404, &format!("no such job {id}")),
        },
        Some("certificate") => match manager.certificate(id) {
            Ok(certificate) => respond_json(stream, 200, &certificate),
            Err((status, message)) => respond_error(stream, status, &message),
        },
        Some("events") => match manager.events(id) {
            Some(log) => {
                let mut writer = ChunkedWriter::start(stream, "application/x-ndjson")?;
                log.stream(|line| {
                    writer.write_chunk(line.as_bytes()).is_ok() && writer.write_chunk(b"\n").is_ok()
                });
                writer.finish()
            }
            None => respond_error(stream, 404, &format!("no such job {id}")),
        },
        Some(other) => respond_error(stream, 404, &format!("no such resource `{other}`")),
    }
}
