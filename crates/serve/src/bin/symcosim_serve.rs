//! The verification-service daemon and its command-line client.
//!
//! Daemon:
//!
//! ```text
//! symcosim-serve [--addr HOST:PORT] [--workers N] [--port-file PATH]
//! ```
//!
//! Binds (port `0` picks an ephemeral port), optionally writes the
//! resolved `HOST:PORT` to `--port-file` (atomically, for scripts to wait
//! on), and serves until `POST /shutdown`.
//!
//! Client (all subcommands take `--addr HOST:PORT`):
//!
//! ```text
//! symcosim-serve client --addr A submit [--preset P] [--opcode N]
//!     [--slices N] [--instr-limit N] [--max-paths N]
//!     [--engine fork|reexec] [--seed N] [--no-chain] [--audit]
//! symcosim-serve client --addr A status JOB
//! symcosim-serve client --addr A wait JOB [--timeout-secs N]
//! symcosim-serve client --addr A events JOB
//! symcosim-serve client --addr A cert JOB
//! symcosim-serve client --addr A shutdown
//! ```
//!
//! `submit` prints the new job id alone on stdout (machine-friendly);
//! everything else prints the response body.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use symcosim_core::json::JsonValue;
use symcosim_core::{EngineKind, JobSpec};
use symcosim_serve::http::{request, stream_lines};
use symcosim_serve::{Server, ServerConfig};

fn fail(message: &str) -> ExitCode {
    eprintln!("symcosim-serve: {message}");
    ExitCode::FAILURE
}

/// Pulls the value following `flag` out of `args`, removing both.
fn flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|arg| arg == flag) {
        Some(index) => {
            if index + 1 >= args.len() {
                return Err(format!("{flag} needs a value"));
            }
            args.remove(index);
            Ok(Some(args.remove(index)))
        }
        None => Ok(None),
    }
}

/// `flag_value` parsed as an integer.
fn flag_number(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    match flag_value(args, flag)? {
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag} must be a number, got `{raw}`")),
        None => Ok(None),
    }
}

/// Removes a boolean `flag` from `args`, reporting whether it was there.
fn flag_present(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|arg| arg == flag) {
        Some(index) => {
            args.remove(index);
            true
        }
        None => false,
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("client") {
        args.remove(0);
        return match client(args) {
            Ok(code) => code,
            Err(message) => fail(&message),
        };
    }
    match daemon(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => fail(&message),
    }
}

/// Runs the daemon until shutdown.
fn daemon(mut args: Vec<String>) -> Result<(), String> {
    let mut config = ServerConfig::default();
    if let Some(addr) = flag_value(&mut args, "--addr")? {
        config.addr = addr;
    }
    if let Some(workers) = flag_number(&mut args, "--workers")? {
        config.verify_workers = workers as usize;
    }
    let port_file = flag_value(&mut args, "--port-file")?;
    if let Some(stray) = args.first() {
        return Err(format!("unknown argument `{stray}`"));
    }

    let server = Server::bind(&config).map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!(
        "symcosim-serve: listening on {addr} ({} verify workers)",
        config.verify_workers
    );
    if let Some(path) = port_file {
        // Write-then-rename so waiters never read a half-written file.
        let staging = format!("{path}.tmp");
        let mut file = std::fs::File::create(&staging).map_err(|e| format!("{staging}: {e}"))?;
        writeln!(file, "{addr}").map_err(|e| format!("{staging}: {e}"))?;
        drop(file);
        std::fs::rename(&staging, &path).map_err(|e| format!("{path}: {e}"))?;
    }
    server.run().map_err(|e| e.to_string())
}

/// Runs one client subcommand.
fn client(mut args: Vec<String>) -> Result<ExitCode, String> {
    let addr = flag_value(&mut args, "--addr")?.ok_or("client needs --addr HOST:PORT")?;
    let command = if args.is_empty() {
        return Err("client needs a subcommand (submit|status|wait|events|cert|shutdown)".into());
    } else {
        args.remove(0)
    };
    match command.as_str() {
        "submit" => submit(&addr, args),
        "status" => {
            let id = job_id(&mut args)?;
            let response =
                request(&addr, "GET", &format!("/jobs/{id}"), None).map_err(|e| e.to_string())?;
            println!("{}", response.body);
            Ok(exit_for(response.status))
        }
        "wait" => wait(&addr, args),
        "events" => {
            let id = job_id(&mut args)?;
            let status = stream_lines(&addr, &format!("/jobs/{id}/events"), |line| {
                println!("{line}");
            })
            .map_err(|e| e.to_string())?;
            Ok(exit_for(status))
        }
        "cert" => {
            let id = job_id(&mut args)?;
            let response = request(&addr, "GET", &format!("/jobs/{id}/certificate"), None)
                .map_err(|e| e.to_string())?;
            println!("{}", response.body);
            Ok(exit_for(response.status))
        }
        "shutdown" => {
            let response = request(&addr, "POST", "/shutdown", None).map_err(|e| e.to_string())?;
            print!("{}", response.body);
            Ok(exit_for(response.status))
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn job_id(args: &mut Vec<String>) -> Result<String, String> {
    if args.is_empty() {
        return Err("missing job id".into());
    }
    Ok(args.remove(0))
}

fn exit_for(status: u16) -> ExitCode {
    if (200..300).contains(&status) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Builds a `symcosim-job/1` document from flags and POSTs it.
fn submit(addr: &str, mut args: Vec<String>) -> Result<ExitCode, String> {
    let mut spec = JobSpec::default();
    if let Some(preset) = flag_value(&mut args, "--preset")? {
        spec.preset = preset;
    }
    if let Some(opcode) = flag_number(&mut args, "--opcode")? {
        spec.opcode = Some(opcode as u32);
    }
    if let Some(slices) = flag_number(&mut args, "--slices")? {
        spec.slices = slices as usize;
    }
    if let Some(limit) = flag_number(&mut args, "--instr-limit")? {
        spec.instr_limit = limit as u32;
    }
    if let Some(paths) = flag_number(&mut args, "--max-paths")? {
        spec.max_paths = paths as usize;
    }
    if let Some(engine) = flag_value(&mut args, "--engine")? {
        spec.engine = match engine.as_str() {
            "fork" => EngineKind::Fork,
            "reexec" => EngineKind::Reexec,
            other => return Err(format!("unknown engine `{other}`")),
        };
    }
    if let Some(seed) = flag_number(&mut args, "--seed")? {
        spec.seed = seed;
    }
    if flag_present(&mut args, "--no-chain") {
        spec.solver_chain = false;
    }
    if flag_present(&mut args, "--audit") {
        spec.audit = true;
    }
    if let Some(stray) = args.first() {
        return Err(format!("unknown argument `{stray}`"));
    }

    let response =
        request(addr, "POST", "/jobs", Some(&spec.to_json())).map_err(|e| e.to_string())?;
    if response.status != 201 {
        return Err(format!(
            "submit failed ({}): {}",
            response.status,
            response.body.trim()
        ));
    }
    let id = JsonValue::parse(&response.body)
        .ok()
        .and_then(|status| status.get("id").and_then(JsonValue::as_u64))
        .ok_or("daemon returned an unparseable status document")?;
    println!("{id}");
    Ok(ExitCode::SUCCESS)
}

/// Polls the job until it leaves `queued`/`running`, then prints the
/// final status document. Exit 0 only for `done`.
fn wait(addr: &str, mut args: Vec<String>) -> Result<ExitCode, String> {
    let timeout = Duration::from_secs(flag_number(&mut args, "--timeout-secs")?.unwrap_or(300));
    let id = job_id(&mut args)?;
    let deadline = Instant::now() + timeout;
    loop {
        let response =
            request(addr, "GET", &format!("/jobs/{id}"), None).map_err(|e| e.to_string())?;
        if response.status != 200 {
            return Err(format!(
                "status failed ({}): {}",
                response.status,
                response.body.trim()
            ));
        }
        let state = JsonValue::parse(&response.body)
            .ok()
            .and_then(|status| {
                status
                    .get("state")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
            })
            .ok_or("daemon returned an unparseable status document")?;
        match state.as_str() {
            "done" | "failed" => {
                println!("{}", response.body);
                return Ok(if state == "done" {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                });
            }
            _ if Instant::now() >= deadline => {
                return Err(format!(
                    "timed out waiting for job {id} (last state: {state})"
                ));
            }
            _ => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}
