//! Job scheduling: shard, run, merge, certify.
//!
//! A submitted [`JobSpec`] is sharded into cube-disjoint decode-space
//! slices ([`partition_universe`]); each `(job, slice)` pair becomes one
//! unit of work on a shared queue drained by the daemon's verify workers.
//! Every slice runs a full slice-scoped [`VerifySession`], warmed from the
//! cross-request seed store when an earlier run of the *same*
//! `(config_hash, cube)` left its solver-chain caches behind — the
//! condition under which replaying [`ChainSeed`] term identifiers is
//! sound. When the last slice lands, the manager recomputes the full
//! legal domain, proves the slices partition it exactly once
//! ([`merge_slice_coverage`]) and certifies the merged coverage: the
//! stored certificate is byte-identical to a single-process run's.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use symcosim_core::json::JsonWriter;
use symcosim_core::{
    merge_slice_coverage, project_domain, Certificate, ChainSeed, CoverageSlice, JobSpec,
    ProgressEvent, ProofAuditStats, SessionConfig, VerifySession,
};
use symcosim_isa::pattern::{partition_universe, Pattern};

/// Schema identifier of the job-status document (`GET /jobs/{id}`).
pub const STATUS_SCHEMA: &str = "symcosim-jobstatus/1";

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, no slice has started.
    Queued,
    /// At least one slice is running or finished.
    Running,
    /// All slices ran and the merged coverage certified.
    Done,
    /// A slice session could not be built, or the merge was rejected.
    Failed,
}

impl JobState {
    /// Stable JSON spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

/// An append-only, closeable event line buffer with blocking readers —
/// the backing store of `GET /jobs/{id}/events`.
pub struct EventLog {
    state: Mutex<LogState>,
    wake: Condvar,
}

struct LogState {
    lines: Vec<String>,
    closed: bool,
}

impl EventLog {
    fn new() -> Arc<EventLog> {
        Arc::new(EventLog {
            state: Mutex::new(LogState {
                lines: Vec::new(),
                closed: false,
            }),
            wake: Condvar::new(),
        })
    }

    fn push(&self, line: String) {
        let mut state = self.state.lock().expect("event log poisoned");
        if !state.closed {
            state.lines.push(line);
        }
        drop(state);
        self.wake.notify_all();
    }

    fn close(&self) {
        self.state.lock().expect("event log poisoned").closed = true;
        self.wake.notify_all();
    }

    /// Feeds every line (past and future) to `visit` until the log closes
    /// or `visit` returns `false` (e.g. the peer hung up). Lines are
    /// cloned out of the lock, so slow consumers never block producers.
    pub fn stream(&self, mut visit: impl FnMut(&str) -> bool) {
        let mut cursor = 0usize;
        loop {
            let (batch, closed) = {
                let mut state = self.state.lock().expect("event log poisoned");
                while state.lines.len() == cursor && !state.closed {
                    state = self.wake.wait(state).expect("event log poisoned");
                }
                (state.lines[cursor..].to_vec(), state.closed)
            };
            cursor += batch.len();
            for line in &batch {
                if !visit(line) {
                    return;
                }
            }
            if closed && batch.is_empty() {
                return;
            }
            if closed {
                // Re-check: lines can't grow after close, one more pass
                // drains anything raced in before the flag flipped.
                continue;
            }
        }
    }
}

/// Everything the manager tracks about one job.
struct JobRecord {
    config: SessionConfig,
    config_hash: u64,
    cubes: Vec<Pattern>,
    state: JobState,
    error: Option<String>,
    slices_done: usize,
    results: Vec<Option<CoverageSlice>>,
    paths_complete: usize,
    paths_partial: usize,
    merged_paths: usize,
    findings: usize,
    busy_ms: u64,
    cache_hits: u64,
    cache_misses: u64,
    chain_queries: u64,
    chain_preflight_hits: u64,
    chain_hits: u64,
    chain_solves: u64,
    chain_prefix_reuse_hits: u64,
    solver_restarts: u64,
    solver_db_reductions: u64,
    solver_learned_kept: u64,
    audit: ProofAuditStats,
    warm_slices: usize,
    certificate: Option<String>,
    verdict: Option<&'static str>,
    events: Arc<EventLog>,
}

/// The daemon's scheduler: job table, slice work queue and the
/// cross-request warm seed store.
pub struct JobManager {
    jobs: Mutex<Vec<JobRecord>>,
    queue: Mutex<WorkQueue>,
    work: Condvar,
    /// Warm solver-chain seeds keyed on `(config_hash, slice cube)` — the
    /// exact identity under which a [`ChainSeed`] replay is sound.
    warm: Mutex<BTreeMap<(u64, Pattern), Arc<ChainSeed>>>,
}

struct WorkQueue {
    slices: VecDeque<(usize, usize)>,
    shutdown: bool,
}

impl Default for JobManager {
    fn default() -> JobManager {
        JobManager::new()
    }
}

impl JobManager {
    /// An empty manager.
    #[must_use]
    pub fn new() -> JobManager {
        JobManager {
            jobs: Mutex::new(Vec::new()),
            queue: Mutex::new(WorkQueue {
                slices: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            warm: Mutex::new(BTreeMap::new()),
        }
    }

    /// Accepts a job: validates the spec, shards the decode space and
    /// enqueues every slice. Returns the job id.
    ///
    /// # Errors
    ///
    /// Propagates [`JobSpec::session_config`] failures (unknown preset).
    pub fn submit(&self, spec: &JobSpec) -> Result<usize, String> {
        let config = spec.session_config()?;
        let cubes = partition_universe(spec.slices);
        let events = EventLog::new();
        events.push(ProgressEvent::Started { jobs: cubes.len() }.to_json());

        let mut jobs = self.jobs.lock().expect("job table poisoned");
        let id = jobs.len();
        jobs.push(JobRecord {
            config,
            config_hash: spec.config_hash(),
            results: vec![None; cubes.len()],
            cubes,
            state: JobState::Queued,
            error: None,
            slices_done: 0,
            paths_complete: 0,
            paths_partial: 0,
            merged_paths: 0,
            findings: 0,
            busy_ms: 0,
            cache_hits: 0,
            cache_misses: 0,
            chain_queries: 0,
            chain_preflight_hits: 0,
            chain_hits: 0,
            chain_solves: 0,
            chain_prefix_reuse_hits: 0,
            solver_restarts: 0,
            solver_db_reductions: 0,
            solver_learned_kept: 0,
            audit: ProofAuditStats::default(),
            warm_slices: 0,
            certificate: None,
            verdict: None,
            events,
        });
        let slices = jobs[id].cubes.len();
        drop(jobs);

        let mut queue = self.queue.lock().expect("work queue poisoned");
        for slice in 0..slices {
            queue.slices.push_back((id, slice));
        }
        drop(queue);
        self.work.notify_all();
        Ok(id)
    }

    /// One verify worker: drain `(job, slice)` units until shutdown.
    pub fn worker_loop(&self) {
        loop {
            let unit = {
                let mut queue = self.queue.lock().expect("work queue poisoned");
                loop {
                    if let Some(unit) = queue.slices.pop_front() {
                        break Some(unit);
                    }
                    if queue.shutdown {
                        break None;
                    }
                    queue = self.work.wait(queue).expect("work queue poisoned");
                }
            };
            match unit {
                Some((job, slice)) => self.run_slice(job, slice),
                None => return,
            }
        }
    }

    /// Runs one slice-scoped session and folds its results into the job,
    /// finalising (merge + certify) when it is the last slice in.
    fn run_slice(&self, id: usize, slice: usize) {
        let (mut config, cube, hash, events) = {
            let mut jobs = self.jobs.lock().expect("job table poisoned");
            let job = &mut jobs[id];
            if job.state == JobState::Queued {
                job.state = JobState::Running;
            }
            (
                job.config.clone(),
                job.cubes[slice],
                job.config_hash,
                Arc::clone(&job.events),
            )
        };
        config.slice = Some(cube);

        let seed = self
            .warm
            .lock()
            .expect("seed store poisoned")
            .get(&(hash, cube))
            .cloned();

        let session = match VerifySession::new(config) {
            Ok(session) => session,
            Err(error) => {
                self.fail(id, format!("slice {slice}: {error}"));
                return;
            }
        };
        let started = Instant::now();
        let (report, harvest) = session.run_seeded(seed.as_deref());
        let busy_ms = started.elapsed().as_millis() as u64;

        if !harvest.is_empty() {
            self.warm
                .lock()
                .expect("seed store poisoned")
                .insert((hash, cube), Arc::new(harvest));
        }

        events.push(
            ProgressEvent::WorkerDone {
                worker: slice,
                paths: report.paths_complete + report.paths_partial,
                merged: report.merged_paths,
                busy_ms,
                solver: report.solver_stats,
                cache: report.query_cache,
                chain: report.chain_stats,
                audit: report.proof_audit,
            }
            .to_json(),
        );

        if let Some(failure) = &report.proof_audit_failure {
            self.fail(id, format!("slice {slice}: proof audit: {failure}"));
            return;
        }

        let finalise = {
            let mut jobs = self.jobs.lock().expect("job table poisoned");
            let job = &mut jobs[id];
            job.paths_complete += report.paths_complete;
            job.paths_partial += report.paths_partial;
            job.merged_paths += report.merged_paths;
            job.findings += report.findings.len();
            job.busy_ms += busy_ms;
            job.cache_hits += report.query_cache.hits;
            job.cache_misses += report.query_cache.misses;
            job.chain_queries += report.chain_stats.queries;
            job.chain_preflight_hits += report.chain_stats.preflight_hits;
            job.chain_hits += report.chain_stats.slice_hits
                + report.chain_stats.core_hits
                + report.chain_stats.model_hits;
            job.chain_solves += report.chain_stats.solves;
            job.chain_prefix_reuse_hits += report.chain_stats.prefix_reuse_hits;
            job.solver_restarts += report.solver_stats.restarts;
            job.solver_db_reductions += report.solver_stats.db_reductions;
            job.solver_learned_kept += report.solver_stats.learned_kept;
            job.audit = job.audit.merge(report.proof_audit);
            job.warm_slices += usize::from(seed.is_some());
            job.results[slice] = Some(CoverageSlice {
                cube,
                data: report
                    .coverage
                    .expect("service sessions always collect coverage"),
            });
            job.slices_done += 1;
            job.slices_done == job.cubes.len() && job.state != JobState::Failed
        };
        if finalise {
            self.finalise(id);
        }
    }

    /// Merges the per-slice coverage, certifies it and closes the job.
    fn finalise(&self, id: usize) {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        let job = &mut jobs[id];
        let slices: Vec<CoverageSlice> = job
            .results
            .iter()
            .map(|slot| slot.clone().expect("every slice reported"))
            .collect();
        let (domain, domain_exact) = project_domain(job.config.constraint, None);
        match merge_slice_coverage(domain, domain_exact, &slices) {
            Ok(merged) => {
                let certificate = Certificate::certify(&merged);
                job.verdict = Some(certificate.verdict.as_str());
                job.certificate = Some(certificate.to_json());
                job.state = JobState::Done;
                job.events.push(
                    ProgressEvent::Finished {
                        paths: job.paths_complete + job.paths_partial,
                        merged: job.merged_paths,
                        wall_ms: job.busy_ms,
                        truncated: merged.truncated,
                    }
                    .to_json(),
                );
            }
            Err(error) => {
                job.error = Some(format!("slice merge rejected: {error}"));
                job.state = JobState::Failed;
            }
        }
        job.events.close();
    }

    /// Marks a job failed and closes its event stream.
    fn fail(&self, id: usize, message: String) {
        let mut jobs = self.jobs.lock().expect("job table poisoned");
        let job = &mut jobs[id];
        job.error = Some(message);
        job.state = JobState::Failed;
        job.events.close();
    }

    /// The job-status document, or `None` for an unknown id.
    #[must_use]
    pub fn status_json(&self, id: usize) -> Option<String> {
        let jobs = self.jobs.lock().expect("job table poisoned");
        let job = jobs.get(id)?;
        let rate = |hits: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }
        };
        let mut w = JsonWriter::new();
        w.open_object();
        w.string_field("schema", STATUS_SCHEMA);
        w.number_field("id", id as u64);
        w.string_field("state", job.state.as_str());
        w.string_field("config_hash", &format!("{:016x}", job.config_hash));
        w.number_field("slices", job.cubes.len() as u64);
        w.number_field("slices_done", job.slices_done as u64);
        w.number_field("warm_slices", job.warm_slices as u64);
        w.number_field("paths_complete", job.paths_complete as u64);
        w.number_field("paths_partial", job.paths_partial as u64);
        w.number_field("merged_paths", job.merged_paths as u64);
        w.number_field("findings", job.findings as u64);
        w.number_field("busy_ms", job.busy_ms);
        w.number_field("cache_hits", job.cache_hits);
        w.number_field("cache_misses", job.cache_misses);
        w.float_field(
            "cache_hit_rate",
            rate(job.cache_hits, job.cache_hits + job.cache_misses),
        );
        w.number_field("chain_queries", job.chain_queries);
        w.number_field("chain_preflight_hits", job.chain_preflight_hits);
        w.number_field("chain_hits", job.chain_hits);
        w.number_field("chain_solves", job.chain_solves);
        w.number_field("chain_prefix_reuse_hits", job.chain_prefix_reuse_hits);
        w.float_field("chain_hit_rate", rate(job.chain_hits, job.chain_queries));
        w.number_field("solver_restarts", job.solver_restarts);
        w.number_field("solver_db_reductions", job.solver_db_reductions);
        w.number_field("solver_learned_kept", job.solver_learned_kept);
        w.number_field("audit_steps", job.audit.steps);
        w.number_field("audit_models", job.audit.models);
        w.number_field("audit_cores", job.audit.cores);
        w.number_field("audit_failures", job.audit.failures);
        match job.verdict {
            Some(verdict) => w.string_field("verdict", verdict),
            None => w.null_field("verdict"),
        }
        match &job.error {
            Some(error) => w.string_field("error", error),
            None => w.null_field("error"),
        }
        w.close_object();
        Some(w.finish())
    }

    /// The merged certificate of a finished job.
    ///
    /// # Errors
    ///
    /// `(status, message)` pairs ready for an HTTP error response: 404
    /// for an unknown id, 409 while the job is still running or after it
    /// failed.
    pub fn certificate(&self, id: usize) -> Result<String, (u16, String)> {
        let jobs = self.jobs.lock().expect("job table poisoned");
        let job = jobs
            .get(id)
            .ok_or_else(|| (404, format!("no such job {id}")))?;
        match (&job.certificate, job.state) {
            (Some(certificate), _) => Ok(certificate.clone()),
            (None, JobState::Failed) => Err((
                409,
                job.error
                    .clone()
                    .unwrap_or_else(|| "job failed".to_string()),
            )),
            (None, state) => Err((409, format!("job {id} is {}", state.as_str()))),
        }
    }

    /// The job's event log, or `None` for an unknown id.
    #[must_use]
    pub fn events(&self, id: usize) -> Option<Arc<EventLog>> {
        let jobs = self.jobs.lock().expect("job table poisoned");
        jobs.get(id).map(|job| Arc::clone(&job.events))
    }

    /// Stops the workers once the queue drains, and closes every open
    /// event stream so attached clients finish promptly.
    pub fn shutdown(&self) {
        self.queue.lock().expect("work queue poisoned").shutdown = true;
        self.work.notify_all();
        let jobs = self.jobs.lock().expect("job table poisoned");
        for job in jobs.iter() {
            job.events.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn event_log_streams_past_and_future_lines() {
        let log = EventLog::new();
        log.push("one".to_string());
        let reader = {
            let log = Arc::clone(&log);
            thread::spawn(move || {
                let mut seen = Vec::new();
                log.stream(|line| {
                    seen.push(line.to_string());
                    true
                });
                seen
            })
        };
        log.push("two".to_string());
        log.close();
        assert_eq!(reader.join().expect("reader"), ["one", "two"]);
    }

    #[test]
    fn event_log_stream_stops_when_visit_declines() {
        let log = EventLog::new();
        log.push("a".to_string());
        log.push("b".to_string());
        let mut seen = 0;
        log.stream(|_| {
            seen += 1;
            false
        });
        assert_eq!(seen, 1);
    }

    #[test]
    fn unknown_jobs_are_absent() {
        let manager = JobManager::new();
        assert!(manager.status_json(0).is_none());
        assert!(manager.events(0).is_none());
        assert_eq!(manager.certificate(0).unwrap_err().0, 404);
    }

    #[test]
    fn submit_rejects_unknown_presets() {
        let manager = JobManager::new();
        let spec = JobSpec {
            preset: "nope".to_string(),
            ..JobSpec::default()
        };
        assert!(manager.submit(&spec).is_err());
    }
}
