//! End-to-end service tests: a real daemon on an ephemeral localhost
//! port, exercised through the same HTTP client the CLI uses. The
//! acceptance property is the paper-grade one: the certificate served
//! for a sharded job is **byte-identical** to the certificate a single
//! in-process run produces, and resubmitting an identical job hits the
//! warm solver-chain caches.

use std::io;
use std::thread;

use symcosim_core::json::JsonValue;
use symcosim_core::{Certificate, JobSpec, VerifySession};
use symcosim_isa::opcodes;
use symcosim_serve::http::{request, stream_lines};
use symcosim_serve::{Server, ServerConfig};

/// Boots a daemon with two verify workers on an ephemeral port.
fn start_server() -> (String, thread::JoinHandle<io::Result<()>>) {
    let server = Server::bind(&ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

/// A small BRANCH-space job.
fn branch_job(slices: usize) -> JobSpec {
    JobSpec {
        opcode: Some(opcodes::BRANCH & 0x7f),
        slices,
        ..JobSpec::default()
    }
}

/// Submits `spec`, returning the new job id.
fn submit(addr: &str, spec: &JobSpec) -> usize {
    let response = request(addr, "POST", "/jobs", Some(&spec.to_json())).expect("submit");
    assert_eq!(response.status, 201, "submit rejected: {}", response.body);
    parse(&response.body)
        .get("id")
        .and_then(JsonValue::as_u64)
        .expect("status carries the id") as usize
}

/// Polls `GET /jobs/{id}` until the job settles; returns the final
/// status document.
fn wait_done(addr: &str, id: usize) -> JsonValue {
    for _ in 0..600 {
        let response = request(addr, "GET", &format!("/jobs/{id}"), None).expect("status");
        assert_eq!(response.status, 200);
        let status = parse(&response.body);
        match status.get("state").and_then(JsonValue::as_str) {
            Some("done") => return status,
            Some("failed") => panic!("job {id} failed: {}", response.body),
            _ => thread::sleep(std::time::Duration::from_millis(50)),
        }
    }
    panic!("job {id} did not settle in 30s");
}

fn parse(body: &str) -> JsonValue {
    JsonValue::parse(body).unwrap_or_else(|e| panic!("unparseable body ({e}): {body}"))
}

fn number(status: &JsonValue, field: &str) -> u64 {
    status
        .get(field)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("status field `{field}` missing"))
}

#[test]
fn served_jobs_match_the_single_process_certificate() {
    let (addr, server) = start_server();

    let health = request(&addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!((health.status, health.body.as_str()), (200, "ok\n"));

    // The ground truth: one in-process, unsliced run.
    let expected = {
        let config = branch_job(1).session_config().expect("valid spec");
        let report = VerifySession::new(config).expect("valid config").run();
        Certificate::certify(report.coverage.as_ref().expect("coverage")).to_json()
    };
    assert!(expected.contains("\"verdict\": \"complete\""));

    // Two concurrent sharded jobs with different slice counts.
    let two = submit(&addr, &branch_job(2));
    let three = submit(&addr, &branch_job(3));
    let status_two = wait_done(&addr, two);
    let status_three = wait_done(&addr, three);

    for (id, status, slices) in [(two, &status_two, 2), (three, &status_three, 3)] {
        assert_eq!(number(status, "slices"), slices);
        assert_eq!(number(status, "slices_done"), slices);
        assert_eq!(
            status.get("verdict").and_then(JsonValue::as_str),
            Some("complete")
        );
        let certificate =
            request(&addr, "GET", &format!("/jobs/{id}/certificate"), None).expect("certificate");
        assert_eq!(certificate.status, 200);
        assert_eq!(
            certificate.body, expected,
            "job {id}: served merged certificate diverged from the single-run certificate"
        );
    }

    // The event stream replays the whole job: started, one worker_done
    // per slice, finished.
    let mut events = Vec::new();
    let status = stream_lines(&addr, &format!("/jobs/{two}/events"), |line| {
        events.push(line.to_string());
    })
    .expect("event stream");
    assert_eq!(status, 200);
    assert!(events[0].contains("\"event\":\"started\""));
    assert_eq!(
        events
            .iter()
            .filter(|line| line.contains("\"event\":\"worker_done\""))
            .count(),
        2
    );
    assert!(events
        .last()
        .expect("events")
        .contains("\"event\":\"finished\""));

    // Resubmitting the identical job hits the warm per-(config, cube)
    // seed store: every slice is warm, the chain re-solves less, and the
    // certificate is still byte-identical.
    let warm = submit(&addr, &branch_job(2));
    let status_warm = wait_done(&addr, warm);
    assert_eq!(number(&status_warm, "warm_slices"), 2);
    assert_eq!(number(&status_two, "warm_slices"), 0);
    assert!(
        number(&status_warm, "chain_solves") < number(&status_two, "chain_solves"),
        "warm job must re-solve less: cold {} vs warm {}",
        number(&status_two, "chain_solves"),
        number(&status_warm, "chain_solves"),
    );
    assert!(
        number(&status_warm, "chain_hits") > number(&status_two, "chain_hits"),
        "warm job must hit the imported caches"
    );
    let certificate =
        request(&addr, "GET", &format!("/jobs/{warm}/certificate"), None).expect("certificate");
    assert_eq!(certificate.body, expected);

    // An audited resubmission: every certificate-bearing solver answer is
    // independently re-checked in-process, the status document carries the
    // auditor's counters, and the served certificate is still byte-for-byte
    // the unaudited one (auditing is observational).
    let audited = submit(
        &addr,
        &JobSpec {
            audit: true,
            ..branch_job(2)
        },
    );
    let status_audited = wait_done(&addr, audited);
    assert!(
        number(&status_audited, "audit_steps") > 0,
        "audited job must re-check proof steps"
    );
    assert!(
        number(&status_audited, "audit_models") + number(&status_audited, "audit_cores") > 0,
        "audited job must re-check at least one model or core"
    );
    assert_eq!(number(&status_audited, "audit_failures"), 0);
    assert_eq!(number(&status_two, "audit_steps"), 0, "unaudited job");
    let certificate = request(&addr, "GET", &format!("/jobs/{audited}/certificate"), None)
        .expect("audited certificate");
    assert_eq!(
        certificate.body, expected,
        "auditing must not perturb the certificate bytes"
    );

    // Error surface.
    let bad = request(&addr, "POST", "/jobs", Some("not json")).expect("bad submit");
    assert_eq!(bad.status, 400);
    let wrong_schema = request(
        &addr,
        "POST",
        "/jobs",
        Some(r#"{"schema": "symcosim-job/9"}"#),
    )
    .expect("bad schema");
    assert_eq!(wrong_schema.status, 400);
    let missing = request(&addr, "GET", "/jobs/999", None).expect("missing job");
    assert_eq!(missing.status, 404);
    let early = request(&addr, "GET", "/jobs/999/certificate", None).expect("missing cert");
    assert_eq!(early.status, 404);
    let wrong_method = request(&addr, "GET", "/shutdown", None).expect("wrong method");
    assert_eq!(wrong_method.status, 405);

    // A certificate request against an unfinished job is a 409.
    let pending = submit(&addr, &branch_job(2));
    let conflict_or_ok =
        request(&addr, "GET", &format!("/jobs/{pending}/certificate"), None).expect("pending");
    assert!(
        conflict_or_ok.status == 409 || conflict_or_ok.status == 200,
        "pending certificate must be 409 (or 200 if the job already finished)"
    );
    wait_done(&addr, pending);

    // Clean shutdown: the daemon acknowledges, drains and joins.
    let bye = request(&addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(bye.status, 200);
    server
        .join()
        .expect("server thread")
        .expect("server run result");
}
