//! Zero-dependency test and benchmark substrate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace cannot depend on `rand`, `proptest` or `criterion`. This crate
//! provides the three services those dependencies supplied, in ~200 lines
//! of std-only Rust:
//!
//! * [`Rng`] — a small, fast, deterministic PRNG (splitmix64 core) with the
//!   handful of sampling helpers the fuzzer and the property tests need,
//! * [`check_cases`] — a miniature property-test harness: run a closure
//!   over N independently seeded cases and report the failing case's seed
//!   so it can be replayed,
//! * [`bench`] — a wall-clock micro-benchmark runner printing min / median
//!   / mean per iteration, used by the `harness = false` bench binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// A deterministic 64-bit PRNG (splitmix64).
///
/// Not cryptographic; statistically solid for fuzzing and property tests,
/// and — unlike `rand::StdRng` — guaranteed stable across releases, so
/// recorded failing seeds stay replayable forever.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Any seed is fine, including 0.
    pub fn seed(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is empty");
        // Multiply-shift rejection-free mapping (Lemire); the bias for
        // bounds ≪ 2^64 is far below anything a test could observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform value in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }
}

/// Runs `body` over `cases` independently seeded cases.
///
/// Each case receives its own [`Rng`] derived from `base_seed` and the case
/// index. On panic, the case index and seed are printed before the panic
/// propagates, so the failure replays with
/// `Rng::seed(<printed seed>)`.
pub fn check_cases<F: FnMut(&mut Rng)>(base_seed: u64, cases: usize, mut body: F) {
    for case in 0..cases {
        let seed = base_seed ^ (case as u64).wrapping_mul(0xa24b_aed4_963e_e407);
        let mut rng = Rng::seed(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("property failed at case {case}/{cases}, replay with Rng::seed({seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

/// One measured benchmark: timing summary over `iters` iterations.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark label.
    pub name: String,
    /// Iterations measured (after warm-up).
    pub iters: usize,
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
}

impl std::fmt::Display for BenchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} {:>12.2?} min {:>12.2?} median {:>12.2?} mean  ({} iters)",
            self.name, self.min, self.median, self.mean, self.iters
        )
    }
}

/// Times `body` for `iters` iterations (plus `warmup` unmeasured ones),
/// prints and returns the summary.
///
/// The replacement for the `criterion` benches: deliberately simple —
/// wall-clock, no outlier rejection — because the repo's benches compare
/// orders of magnitude, not percents.
pub fn bench<F: FnMut()>(name: &str, warmup: usize, iters: usize, mut body: F) -> BenchReport {
    assert!(iters > 0, "bench needs at least one iteration");
    for _ in 0..warmup {
        body();
    }
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        body();
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    let total: Duration = samples.iter().sum();
    let report = BenchReport {
        name: name.to_string(),
        iters,
        min: samples[0],
        median: samples[samples.len() / 2],
        mean: total / iters as u32,
    };
    println!("{report}");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_covers_range() {
        let mut a = Rng::seed(42);
        let mut b = Rng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = Rng::seed(7);
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            let i = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn below_hits_every_bucket() {
        let mut r = Rng::seed(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn check_cases_runs_all_cases() {
        let mut count = 0;
        check_cases(0xbeef, 17, |_rng| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn bench_reports_sane_numbers() {
        let report = bench("noop", 1, 5, || {
            std::hint::black_box(1 + 1);
        });
        assert_eq!(report.iters, 5);
        assert!(report.min <= report.median && report.median >= Duration::ZERO);
    }
}
