//! Differential tests: CDCL verdicts against exhaustive enumeration.

use symcosim_sat::{Lit, SolveResult, Solver, Var};
use symcosim_testkit::{check_cases, Rng};

/// A clause as (variable index, polarity) pairs.
type TestClause = Vec<(usize, bool)>;

fn brute_force_sat(num_vars: usize, clauses: &[TestClause]) -> bool {
    assert!(num_vars <= 16, "brute force limited to 16 variables");
    'outer: for assignment in 0u32..(1 << num_vars) {
        for clause in clauses {
            let satisfied = clause
                .iter()
                .any(|&(var, positive)| ((assignment >> var) & 1 == 1) == positive);
            if !satisfied {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn build_solver(num_vars: usize, clauses: &[TestClause]) -> Solver {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for clause in clauses {
        solver.add_clause(clause.iter().map(|&(v, pos)| Lit::new(vars[v], pos)));
    }
    solver
}

fn random_clauses(rng: &mut Rng, num_vars: usize, max_clauses: usize) -> Vec<TestClause> {
    let count = rng.index(max_clauses + 1);
    (0..count)
        .map(|_| {
            let len = 1 + rng.index(4);
            (0..len)
                .map(|_| (rng.index(num_vars), rng.chance(1, 2)))
                .collect()
        })
        .collect()
}

/// The CDCL verdict agrees with exhaustive enumeration.
#[test]
fn verdict_matches_brute_force() {
    check_cases(0x5a7_b7f1, 200, |rng| {
        let clauses = random_clauses(rng, 8, 40);
        let expected = brute_force_sat(8, &clauses);
        let mut solver = build_solver(8, &clauses);
        let got = solver.solve(&[]) == SolveResult::Sat;
        assert_eq!(got, expected, "clauses {clauses:?}");
    });
}

/// Whenever the solver answers SAT, its model satisfies every clause.
#[test]
fn sat_models_are_genuine() {
    check_cases(0x5a7_3a11, 200, |rng| {
        let clauses = random_clauses(rng, 10, 60);
        let mut solver = build_solver(10, &clauses);
        if solver.solve(&[]) == SolveResult::Sat {
            for clause in &clauses {
                let ok = clause
                    .iter()
                    .any(|&(v, pos)| solver.model_value(Var::from_index(v)) == Some(pos));
                assert!(ok, "model violates clause {clause:?}");
            }
        }
    });
}

/// Solving under assumptions equals solving the formula with the
/// assumptions added as unit clauses.
#[test]
fn assumptions_equal_units() {
    check_cases(0x5a7_a55e, 200, |rng| {
        let clauses = random_clauses(rng, 8, 30);
        let assumed: Vec<(usize, bool)> = (0..rng.index(4))
            .map(|_| (rng.index(8), rng.chance(1, 2)))
            .collect();

        let mut incremental = build_solver(8, &clauses);
        let assumptions: Vec<Lit> = assumed
            .iter()
            .map(|&(v, pos)| Lit::new(Var::from_index(v), pos))
            .collect();
        let got = incremental.solve(&assumptions) == SolveResult::Sat;

        let mut clauses_with_units = clauses.clone();
        for &(v, pos) in &assumed {
            clauses_with_units.push(vec![(v, pos)]);
        }
        let expected = brute_force_sat(8, &clauses_with_units);
        assert_eq!(got, expected, "clauses {clauses:?} assumed {assumed:?}");

        // And the incremental solver is reusable afterwards.
        let baseline = brute_force_sat(8, &clauses);
        assert_eq!(incremental.solve(&[]) == SolveResult::Sat, baseline);
    });
}
