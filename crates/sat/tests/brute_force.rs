//! Differential tests: CDCL verdicts against exhaustive enumeration.

use proptest::prelude::*;
use symcosim_sat::{Lit, SolveResult, Solver, Var};

/// A clause as (variable index, polarity) pairs.
type TestClause = Vec<(usize, bool)>;

fn brute_force_sat(num_vars: usize, clauses: &[TestClause]) -> bool {
    assert!(num_vars <= 16, "brute force limited to 16 variables");
    'outer: for assignment in 0u32..(1 << num_vars) {
        for clause in clauses {
            let satisfied = clause
                .iter()
                .any(|&(var, positive)| ((assignment >> var) & 1 == 1) == positive);
            if !satisfied {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn build_solver(num_vars: usize, clauses: &[TestClause]) -> Solver {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for clause in clauses {
        solver.add_clause(clause.iter().map(|&(v, pos)| Lit::new(vars[v], pos)));
    }
    solver
}

fn arb_clauses(num_vars: usize, max_clauses: usize) -> impl Strategy<Value = Vec<TestClause>> {
    let clause = proptest::collection::vec((0..num_vars, any::<bool>()), 1..=4);
    proptest::collection::vec(clause, 0..=max_clauses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The CDCL verdict agrees with exhaustive enumeration.
    #[test]
    fn verdict_matches_brute_force(clauses in arb_clauses(8, 40)) {
        let expected = brute_force_sat(8, &clauses);
        let mut solver = build_solver(8, &clauses);
        let got = solver.solve(&[]) == SolveResult::Sat;
        prop_assert_eq!(got, expected);
    }

    /// Whenever the solver answers SAT, its model satisfies every clause.
    #[test]
    fn sat_models_are_genuine(clauses in arb_clauses(10, 60)) {
        let mut solver = build_solver(10, &clauses);
        if solver.solve(&[]) == SolveResult::Sat {
            for clause in &clauses {
                let ok = clause.iter().any(|&(v, pos)| {
                    solver.model_value(Var::from_index(v)) == Some(pos)
                });
                prop_assert!(ok, "model violates clause {:?}", clause);
            }
        }
    }

    /// Solving under assumptions equals solving the formula with the
    /// assumptions added as unit clauses.
    #[test]
    fn assumptions_equal_units(
        clauses in arb_clauses(8, 30),
        assumed in proptest::collection::vec((0usize..8, any::<bool>()), 0..=3),
    ) {
        let mut incremental = build_solver(8, &clauses);
        let assumptions: Vec<Lit> = assumed
            .iter()
            .map(|&(v, pos)| Lit::new(Var::from_index(v), pos))
            .collect();
        let got = incremental.solve(&assumptions) == SolveResult::Sat;

        let mut clauses_with_units = clauses.clone();
        for &(v, pos) in &assumed {
            clauses_with_units.push(vec![(v, pos)]);
        }
        let expected = brute_force_sat(8, &clauses_with_units);
        prop_assert_eq!(got, expected);

        // And the incremental solver is reusable afterwards.
        let baseline = brute_force_sat(8, &clauses);
        prop_assert_eq!(incremental.solve(&[]) == SolveResult::Sat, baseline);
    }
}
