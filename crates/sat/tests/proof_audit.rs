//! Differential fuzz of the proof-carrying pipeline: on seeded random
//! instances, enabling proof logging never flips the solver's verdict,
//! the independent checker certifies every honest answer, and
//! guaranteed-invalid mutations (a non-RUP derivation injected into the
//! proof, a conflict cone with its derivation dropped) are rejected.

use symcosim_sat::{Checker, CoreReplayUnit, Lit, Proof, ProofStep, SolveResult, Solver, Var};
use symcosim_testkit::{check_cases, Rng};

/// A clause as (variable index, polarity) pairs.
type TestClause = Vec<(usize, bool)>;

const NUM_VARS: usize = 6;

fn random_clauses(rng: &mut Rng, max_clauses: usize) -> Vec<TestClause> {
    let count = rng.index(max_clauses + 1);
    (0..count)
        .map(|_| {
            let len = 1 + rng.index(4);
            (0..len)
                .map(|_| (rng.index(NUM_VARS), rng.chance(1, 2)))
                .collect()
        })
        .collect()
}

fn build_solver(clauses: &[TestClause], audited: bool) -> Solver {
    let mut solver = Solver::new();
    if audited {
        solver.enable_proof();
    }
    let vars: Vec<Var> = (0..NUM_VARS).map(|_| solver.new_var()).collect();
    for clause in clauses {
        solver.add_clause(clause.iter().map(|&(v, pos)| Lit::new(vars[v], pos)));
    }
    solver
}

fn lit(index: usize, positive: bool) -> Lit {
    Lit::new(Var::from_index(index), positive)
}

/// Proof logging is observational and the checker certifies every honest
/// answer; a tampered proof or a cone stripped of its derivation is
/// rejected.
#[test]
fn proof_audit_never_flips() {
    check_cases(0xa0d_17ed, 300, |rng| {
        let clauses = random_clauses(rng, 30);
        let assumptions: Vec<Lit> = (0..rng.index(4))
            .map(|_| lit(rng.index(NUM_VARS), rng.chance(1, 2)))
            .collect();

        // The differential property: the audited solver answers exactly
        // what the unaudited solver answers.
        let mut plain = build_solver(&clauses, false);
        let expected = plain.solve(&assumptions);
        let mut audited = build_solver(&clauses, true);
        let got = audited.solve(&assumptions);
        assert_eq!(got, expected, "proof logging flipped the verdict");

        // The independent checker certifies the honest answer.
        let mut checker = Checker::new();
        checker
            .apply(&audited.take_proof())
            .expect("honest proof must check");
        match got {
            SolveResult::Sat => {
                checker
                    .check_model(|v| audited.model_value(v))
                    .expect("honest SAT model must satisfy every axiom");
            }
            SolveResult::Unsat => {
                let core = audited.unsat_core().to_vec();
                let unit = checker.replay_core(&core).expect("honest core replays");
                unit.verify().expect("honest cone re-verifies offline");

                // Dropped-step mutation: a cone stripped of every clause
                // cannot re-derive the conflict unless the core literals
                // contradict each other outright.
                let self_contradictory = unit.core.iter().any(|&l| unit.core.contains(&-l));
                if !unit.clauses.is_empty() && !self_contradictory {
                    let stripped = CoreReplayUnit {
                        core: unit.core.clone(),
                        clauses: Vec::new(),
                    };
                    stripped
                        .verify()
                        .expect_err("coreless cone must not certify");
                }
            }
        }

        // Mutated-proof rejection: a unit clause over a variable the
        // formula never mentions cannot be RUP (nothing propagates from
        // its negation) — unless the clause set is already refuted, in
        // which case everything is derivable.
        if !checker.formula_refuted() {
            let rogue = Proof {
                steps: vec![ProofStep::Derive {
                    clause: vec![lit(NUM_VARS, true)].into(),
                    hints: Box::default(),
                }],
            };
            let err = checker
                .apply(&rogue)
                .expect_err("a fabricated derivation must be rejected");
            assert!(err.message.contains("not RUP"), "{err}");
        }
    });
}

/// Unsatisfiable pigeonhole instance PHP(7, 6), hard enough to restart
/// and — with the reduction threshold floored — shrink the learnt
/// database mid-search.
fn audited_pigeonhole() -> Solver {
    const PIGEONS: usize = 7;
    const HOLES: usize = 6;
    let mut solver = Solver::new();
    solver.enable_proof();
    solver.set_reduce_db_base(0);
    let grid: Vec<Vec<Lit>> = (0..PIGEONS)
        .map(|_| {
            (0..HOLES)
                .map(|_| Lit::positive(solver.new_var()))
                .collect()
        })
        .collect();
    for row in &grid {
        solver.add_clause(row.iter().copied());
    }
    #[allow(clippy::needless_range_loop)] // 2-D pigeonhole indexing
    for hole in 0..HOLES {
        for p1 in 0..PIGEONS {
            for p2 in p1 + 1..PIGEONS {
                solver.add_clause([!grid[p1][hole], !grid[p2][hole]]);
            }
        }
    }
    solver
}

/// Clause-database reduction under audit: the reduction emits a `Delete`
/// event per dropped learnt clause, keeping the checker's active set in
/// lockstep with the solver's, so a refutation that shrank its database
/// mid-search still certifies end to end — proof, core replay, and
/// offline cone re-verification.
#[test]
fn db_reduction_deletions_certify_end_to_end() {
    let mut solver = audited_pigeonhole();
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    assert!(
        solver.stats().db_reductions > 0,
        "PHP(7, 6) at reduction base 0 must reduce the database"
    );
    let proof = solver.take_proof();
    let deletes = proof
        .steps
        .iter()
        .filter(|s| matches!(s, ProofStep::Delete(_)))
        .count();
    assert!(deletes > 0, "reductions must log their deletions");

    let mut checker = Checker::new();
    checker.apply(&proof).expect("honest reduced proof checks");
    assert!(checker.formula_refuted());
    let unit = checker
        .replay_core(solver.unsat_core())
        .expect("core replays after reductions");
    unit.verify().expect("cone re-verifies offline");
}

/// A fabricated deletion — naming a clause the proof never put in the
/// active set — is rejected at exactly the step it is spliced in; the
/// honest prefix before it still checks.
#[test]
fn a_fabricated_deletion_is_rejected_in_place() {
    let mut solver = audited_pigeonhole();
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    let honest = solver.take_proof();

    // Splice the rogue step right before the first genuine deletion, so
    // the tampered prefix is a non-trivial honest proof segment.
    let splice_at = honest
        .steps
        .iter()
        .position(|s| matches!(s, ProofStep::Delete(_)))
        .expect("reduced proof has deletions");
    let rogue = ProofStep::Delete(vec![lit(0, true), lit(7, true), lit(14, true)].into());
    let mut steps = honest.steps.clone();
    steps.insert(splice_at, rogue);

    let err = Checker::new()
        .apply(&Proof { steps })
        .expect_err("deleting a never-derived clause must be rejected");
    assert_eq!(err.step, Some(splice_at), "{err}");
    assert!(err.message.contains("unknown clause"), "{err}");
}

/// Replaying an honest deletion twice is as dishonest as inventing one:
/// the second copy finds no active clause left to delete.
#[test]
fn a_doubled_deletion_is_rejected() {
    let mut solver = audited_pigeonhole();
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    let honest = solver.take_proof();

    // Duplicate a deletion whose clause exists exactly once in the whole
    // proof (one derivation, no identical axiom, one deletion): for that
    // clause the checker cannot shrug the second copy onto a twin.
    let key = |lits: &[Lit]| {
        let mut k = lits.to_vec();
        k.sort_unstable();
        k.dedup();
        k
    };
    let count = |steps: &[ProofStep], want: &[Lit], deletes: bool| {
        steps
            .iter()
            .filter(|s| match s {
                ProofStep::Axiom(c) => !deletes && key(c) == want,
                ProofStep::Derive { clause, .. } => !deletes && key(clause) == want,
                ProofStep::Delete(c) => deletes && key(c) == want,
            })
            .count()
    };
    let unique_delete = honest
        .steps
        .iter()
        .position(|s| match s {
            ProofStep::Delete(c) => {
                let k = key(c);
                count(&honest.steps, &k, false) == 1 && count(&honest.steps, &k, true) == 1
            }
            _ => false,
        })
        .expect("some reduced clause is unique in the proof");
    let mut steps = honest.steps.clone();
    steps.insert(unique_delete, steps[unique_delete].clone());
    let first_delete = unique_delete;

    let err = Checker::new()
        .apply(&Proof { steps })
        .expect_err("deleting the same learnt clause twice must be rejected");
    assert_eq!(err.step, Some(first_delete + 1), "{err}");
}

/// Deleting the derivation a later step leans on must surface at exactly
/// that later step: the checker's notion of "active clause set" tracks
/// the proof, so a dropped step cannot be papered over by re-propagating
/// from the axioms.
#[test]
fn a_dropped_derivation_breaks_the_chain() {
    let (a, b, c) = (lit(0, true), lit(1, true), lit(2, true));
    let axiom = |lits: &[Lit]| ProofStep::Axiom(lits.into());
    let derive = |lits: &[Lit]| ProofStep::Derive {
        clause: lits.into(),
        hints: Box::default(),
    };
    let delete = |lits: &[Lit]| ProofStep::Delete(lits.to_vec().into());

    // (a ∨ b), (¬a ∨ b) ⊢ (b); with both axioms deleted, (c) is RUP only
    // through the derived (b) and the axiom (¬b ∨ c).
    let full = Proof {
        steps: vec![
            axiom(&[a, b]),
            axiom(&[!a, b]),
            derive(&[b]),
            delete(&[a, b]),
            delete(&[!a, b]),
            axiom(&[!b, c]),
            derive(&[c]),
        ],
    };
    Checker::new().apply(&full).expect("the full chain checks");

    // The same proof with the (b) derivation dropped: (c) loses its
    // support and must be rejected at its own index.
    let dropped = Proof {
        steps: full
            .steps
            .iter()
            .filter(|s| !matches!(s, ProofStep::Derive { clause, .. } if **clause == [b]))
            .cloned()
            .collect(),
    };
    let err = Checker::new()
        .apply(&dropped)
        .expect_err("the dropped step must break the chain");
    assert_eq!(err.step, Some(5), "{err}");
    assert!(err.message.contains("not RUP"), "{err}");
}
