//! Regression tests for `Solver::unsat_core` determinism.
//!
//! Cores feed the solver chain's subsumption cache and (audited) core
//! replays, so they must be usable as cache keys: canonically ordered,
//! duplicate-free, stable across repeated solves of the same query, and
//! — when the minimal core is unique — independent of the order the
//! assumptions were passed in.

use symcosim_sat::{Lit, SolveResult, Solver, Var};
use symcosim_testkit::{check_cases, Rng};

type TestClause = Vec<(usize, bool)>;

fn build_solver(num_vars: usize, clauses: &[TestClause]) -> Solver {
    let mut solver = Solver::new();
    let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
    for clause in clauses {
        solver.add_clause(clause.iter().map(|&(v, pos)| Lit::new(vars[v], pos)));
    }
    solver
}

fn random_clauses(rng: &mut Rng, num_vars: usize, max_clauses: usize) -> Vec<TestClause> {
    let count = rng.index(max_clauses + 1);
    (0..count)
        .map(|_| {
            let len = 1 + rng.index(4);
            (0..len)
                .map(|_| (rng.index(num_vars), rng.chance(1, 2)))
                .collect()
        })
        .collect()
}

fn shuffle<T>(rng: &mut Rng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.index(i + 1));
    }
}

/// Cores come back sorted, duplicate-free, restricted to the
/// assumptions, and re-solving exactly the core is again unsatisfiable.
#[test]
fn cores_are_canonical_certificates() {
    check_cases(0xc07e_0001, 300, |rng| {
        let clauses = random_clauses(rng, 8, 40);
        let assumptions: Vec<Lit> = (0..1 + rng.index(6))
            .map(|_| Lit::new(Var::from_index(rng.index(8)), rng.chance(1, 2)))
            .collect();
        let mut solver = build_solver(8, &clauses);
        if solver.solve(&assumptions) != SolveResult::Unsat {
            return;
        }
        let core = solver.unsat_core().to_vec();
        let mut sorted = core.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(core, sorted, "core is sorted and duplicate-free");
        assert!(
            core.iter().all(|l| assumptions.contains(l)),
            "core {core:?} ⊆ assumptions {assumptions:?}"
        );
        if !core.is_empty() {
            // A genuine certificate: the core alone is again unsat, on
            // this solver and on a fresh one with the same clauses.
            assert_eq!(solver.solve(&core), SolveResult::Unsat);
            let mut fresh = build_solver(8, &clauses);
            assert_eq!(fresh.solve(&core), SolveResult::Unsat);
        }
    });
}

/// Re-running the same query on the same solver yields the same core,
/// even though the clause database has grown learnt clauses in between.
#[test]
fn repeated_solves_yield_identical_cores() {
    check_cases(0xc07e_0002, 300, |rng| {
        let clauses = random_clauses(rng, 8, 40);
        let assumptions: Vec<Lit> = (0..1 + rng.index(6))
            .map(|_| Lit::new(Var::from_index(rng.index(8)), rng.chance(1, 2)))
            .collect();
        let mut solver = build_solver(8, &clauses);
        if solver.solve(&assumptions) != SolveResult::Unsat {
            return;
        }
        let first = solver.unsat_core().to_vec();
        for round in 0..3 {
            assert_eq!(solver.solve(&assumptions), SolveResult::Unsat);
            assert_eq!(
                solver.unsat_core(),
                first.as_slice(),
                "core drifted on repeat solve {round}"
            );
        }
    });
}

/// When the minimal core is unique — an implication chain forcing two
/// designated assumptions into conflict, padded with free assumptions —
/// every assumption ordering recovers exactly that core.
#[test]
fn assumption_order_does_not_change_a_unique_core() {
    check_cases(0xc07e_0003, 200, |rng| {
        // Variables: 0 = a, 1 = b, 2.. = chain links and padding.
        let chain_len = 1 + rng.index(4);
        let pad = rng.index(4);
        let num_vars = 2 + chain_len + pad;
        let mut solver_clauses: Vec<TestClause> = Vec::new();
        // a → x1 → … → xk → ¬b
        let mut prev = 0usize; // a
        for link in 0..chain_len {
            let x = 2 + link;
            solver_clauses.push(vec![(prev, false), (x, true)]);
            prev = x;
        }
        solver_clauses.push(vec![(prev, false), (1, false)]);

        let a = Lit::positive(Var::from_index(0));
        let b = Lit::positive(Var::from_index(1));
        let mut assumptions = vec![a, b];
        for p in 0..pad {
            assumptions.push(Lit::new(
                Var::from_index(2 + chain_len + p),
                rng.chance(1, 2),
            ));
        }

        let mut expected: Option<Vec<Lit>> = None;
        for _ in 0..4 {
            shuffle(rng, &mut assumptions);
            let mut solver = build_solver(num_vars, &solver_clauses);
            assert_eq!(solver.solve(&assumptions), SolveResult::Unsat);
            let core = solver.unsat_core().to_vec();
            assert_eq!(core, vec![a, b], "unique core is {{a, b}}");
            match &expected {
                None => expected = Some(core),
                Some(previous) => assert_eq!(&core, previous, "core depends on ordering"),
            }
        }
    });
}
