//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from zero.
///
/// Create variables with [`Solver::new_var`](crate::Solver::new_var);
/// indices are dense and owned by one solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable's dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a variable from a dense index.
    ///
    /// Only meaningful for indices previously returned by a solver.
    #[inline]
    pub const fn from_index(index: usize) -> Var {
        Var(index as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `2·var + sign` so literals index watch lists directly.
///
/// # Example
///
/// ```
/// use symcosim_sat::{Lit, Var};
///
/// let v = Var::from_index(3);
/// let lit = Lit::positive(v);
/// assert_eq!(!lit, Lit::negative(v));
/// assert_eq!((!lit).var(), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    #[inline]
    pub const fn positive(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    #[inline]
    pub const fn negative(var: Var) -> Lit {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a polarity.
    #[inline]
    pub const fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// The underlying variable.
    #[inline]
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for a positive literal.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code (`2·var + sign`), usable as an array index.
    #[inline]
    pub const fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    #[inline]
    pub const fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "v{}", self.var().0)
        } else {
            write!(f, "¬v{}", self.var().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        let lit = Lit::positive(Var::from_index(7));
        assert_eq!(!!lit, lit);
        assert_ne!(!lit, lit);
        assert_eq!((!lit).var(), lit.var());
    }

    #[test]
    fn code_round_trip() {
        for code in 0..64 {
            assert_eq!(Lit::from_code(code).code(), code);
        }
    }

    #[test]
    fn polarity() {
        let v = Var::from_index(0);
        assert!(Lit::positive(v).is_positive());
        assert!(!Lit::negative(v).is_positive());
        assert_eq!(Lit::new(v, true), Lit::positive(v));
        assert_eq!(Lit::new(v, false), Lit::negative(v));
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(2);
        assert_eq!(Lit::positive(v).to_string(), "v2");
        assert_eq!(Lit::negative(v).to_string(), "¬v2");
    }
}
