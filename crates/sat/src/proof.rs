//! Clausal proof logging (DRAT-style, with antecedent hints).
//!
//! When enabled ([`crate::Solver::enable_proof`]), the solver records a
//! stream of [`ProofStep`]s mirroring every change to its clause
//! database:
//!
//! * [`ProofStep::Axiom`] — a clause handed to
//!   [`crate::Solver::add_clause`], logged verbatim (sorted, deduped)
//!   *before* top-level simplification. The axioms are the trust root:
//!   a checker takes them on faith and verifies everything else against
//!   them.
//! * [`ProofStep::Derive`] — a clause the solver claims follows from
//!   the clauses logged so far: learnt clauses from conflict analysis,
//!   learnt units, and the empty clause when the formula itself becomes
//!   unsatisfiable. Every `Derive` must pass *reverse unit propagation*
//!   (RUP): asserting the negation of the clause and unit-propagating
//!   over the active clause set must yield a conflict. The `hints`
//!   carry the antecedent clauses visited by conflict analysis; they
//!   are advisory — [`crate::check::Checker`] performs the full RUP
//!   check regardless, so a wrong or missing hint can never make an
//!   invalid step pass.
//! * [`ProofStep::Delete`] — a learnt clause dropped by clause-database
//!   reduction. Checkers must stop using it for propagation so that
//!   their notion of "active clause set" tracks the solver's exactly.
//!
//! The stream is drained with [`crate::Solver::take_proof`]; repeated
//! `solve`/`take_proof` rounds produce consecutive segments of one
//! logical proof, which is how the incremental audit in the symbolic
//! engine applies them.

use std::fmt;

use crate::Lit;

/// One step of a clausal proof. See the [module docs](self) for the
/// obligations attached to each variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStep {
    /// An original clause, taken on faith.
    Axiom(Box<[Lit]>),
    /// A clause claimed derivable by reverse unit propagation.
    Derive {
        /// The derived clause (empty = the formula is unsatisfiable).
        clause: Box<[Lit]>,
        /// Advisory antecedent hints (the clauses conflict analysis
        /// resolved over). Never trusted by the checker.
        hints: Box<[Box<[Lit]>]>,
    },
    /// A clause removed from the active set by DB reduction.
    Delete(Box<[Lit]>),
}

impl ProofStep {
    /// Approximate in-memory size of the step, for audit accounting.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        let lits = |c: &[Lit]| 4 * c.len() as u64;
        match self {
            ProofStep::Axiom(c) | ProofStep::Delete(c) => 8 + lits(c),
            ProofStep::Derive { clause, hints } => {
                8 + lits(clause) + hints.iter().map(|h| 8 + lits(h)).sum::<u64>()
            }
        }
    }
}

impl fmt::Display for ProofStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let write_clause = |f: &mut fmt::Formatter<'_>, c: &[Lit]| {
            for (i, lit) in c.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                let n = lit.var().index() as i64 + 1;
                write!(f, "{}", if lit.is_positive() { n } else { -n })?;
            }
            if !c.is_empty() {
                write!(f, " ")?;
            }
            write!(f, "0")
        };
        match self {
            ProofStep::Axiom(c) => {
                write!(f, "a ")?;
                write_clause(f, c)
            }
            ProofStep::Derive { clause, .. } => write_clause(f, clause),
            ProofStep::Delete(c) => {
                write!(f, "d ")?;
                write_clause(f, c)
            }
        }
    }
}

/// A drained segment of the solver's proof stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Proof {
    /// The steps, in the order the solver produced them.
    pub steps: Vec<ProofStep>,
}

impl Proof {
    /// Number of steps in this segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the segment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Approximate in-memory size of the segment, for audit accounting.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.steps.iter().map(ProofStep::bytes).sum()
    }
}

/// The in-solver recorder. Only allocated when proof logging is on, so
/// the disabled path costs one `Option` check per logging site.
#[derive(Debug, Default)]
pub(crate) struct ProofLog {
    pub(crate) steps: Vec<ProofStep>,
    /// Antecedent scratch for the conflict analysis currently running.
    pub(crate) hints: Vec<Box<[Lit]>>,
}

impl ProofLog {
    pub(crate) fn axiom(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Axiom(lits.into()));
    }

    /// Logs a derived clause, consuming the accumulated hints.
    pub(crate) fn derive(&mut self, lits: &[Lit]) {
        let hints = std::mem::take(&mut self.hints).into_boxed_slice();
        self.steps.push(ProofStep::Derive {
            clause: lits.into(),
            hints,
        });
    }

    /// Logs a derived clause that has no antecedent hints (top-level
    /// conflicts, simplification facts). Discards any stale scratch.
    pub(crate) fn derive_unhinted(&mut self, lits: &[Lit]) {
        self.hints.clear();
        self.steps.push(ProofStep::Derive {
            clause: lits.into(),
            hints: Box::default(),
        });
    }

    pub(crate) fn delete(&mut self, lits: &[Lit]) {
        self.steps.push(ProofStep::Delete(lits.into()));
    }

    pub(crate) fn hint(&mut self, lits: &[Lit]) {
        self.hints.push(lits.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lit(i: usize, positive: bool) -> Lit {
        Lit::new(Var::from_index(i), positive)
    }

    #[test]
    fn display_is_dimacs_flavoured() {
        let step = ProofStep::Axiom(vec![lit(0, true), lit(1, false)].into());
        assert_eq!(step.to_string(), "a 1 -2 0");
        let step = ProofStep::Derive {
            clause: vec![lit(2, true)].into(),
            hints: Box::default(),
        };
        assert_eq!(step.to_string(), "3 0");
        let step = ProofStep::Delete(vec![lit(0, false)].into());
        assert_eq!(step.to_string(), "d -1 0");
    }

    #[test]
    fn bytes_counts_hints() {
        let bare = ProofStep::Derive {
            clause: vec![lit(0, true)].into(),
            hints: Box::default(),
        };
        let hinted = ProofStep::Derive {
            clause: vec![lit(0, true)].into(),
            hints: vec![vec![lit(1, true), lit(2, false)].into()].into(),
        };
        assert!(hinted.bytes() > bare.bytes());
        let proof = Proof {
            steps: vec![bare, hinted],
        };
        assert_eq!(proof.len(), 2);
        assert!(!proof.is_empty());
        assert_eq!(
            proof.bytes(),
            proof.steps.iter().map(ProofStep::bytes).sum::<u64>()
        );
    }
}
