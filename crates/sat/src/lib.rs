//! A CDCL SAT solver.
//!
//! This crate is the decision-procedure substrate for the symbolic execution
//! engine (`symcosim-symex`): bit-vector path constraints are bit-blasted to
//! CNF and discharged here. It is a from-scratch implementation of the
//! standard conflict-driven clause-learning architecture:
//!
//! * two-literal watching for unit propagation,
//! * first-UIP conflict analysis with clause learning,
//! * VSIDS variable activities with phase saving,
//! * Luby-sequence restarts,
//! * solving under assumptions (the incremental interface the symbolic
//!   engine uses for path-feasibility queries),
//! * DIMACS import/export for debugging against external solvers, and
//! * clausal proof logging ([`Solver::enable_proof`]) with an
//!   independent RUP checker ([`check::Checker`]) so every answer the
//!   solver gives can be re-verified without trusting the search.
//!
//! # Example
//!
//! ```
//! use symcosim_sat::{Lit, SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause([Lit::negative(a)]);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert_eq!(solver.model_value(b), Some(true));
//! // Under the assumption ¬b the formula becomes unsatisfiable.
//! assert_eq!(solver.solve(&[Lit::negative(b)]), SolveResult::Unsat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod dimacs;
mod lit;
pub mod proof;
mod solver;

pub use check::{CheckError, Checker, CoreReplayUnit};
pub use dimacs::{parse_dimacs, to_dimacs, ParseDimacsError};
pub use lit::{Lit, Var};
pub use proof::{Proof, ProofStep};
pub use solver::{SolveResult, Solver, SolverStats};
