//! Independent proof checking.
//!
//! [`Checker`] re-verifies everything the solver claims, using nothing
//! from the solver's search machinery: where the solver propagates with
//! two-watched-literal lists, the checker uses plain occurrence lists
//! and full clause scans; where the solver tracks decision levels, the
//! checker keeps a monotone top-level closure plus a generation-tagged
//! scratch assignment per query. The two implementations share only the
//! [`Lit`] representation, so a bug in the solver's propagation,
//! conflict analysis or clause management cannot silently re-certify
//! itself.
//!
//! The checker consumes the solver's proof stream
//! ([`crate::Solver::take_proof`]) incrementally:
//!
//! * [`Checker::apply`] verifies each `Derive` step by *reverse unit
//!   propagation* (RUP) over the active clause set and mirrors clause
//!   deletions, rejecting any step that does not check.
//! * [`Checker::check_model`] verifies a SAT answer: every original
//!   (axiom) clause must be satisfied by the model.
//! * [`Checker::replay_core`] verifies an UNSAT answer's assumption
//!   core: propagating the core literals alone must reproduce a
//!   conflict — through the checker, not the solver — and returns a
//!   self-contained [`CoreReplayUnit`] (the conflict cone) that can be
//!   re-verified offline with no solver state at all.

use std::collections::HashMap;
use std::fmt;

use crate::proof::{Proof, ProofStep};
use crate::{Lit, Var};

const UNDEF: u8 = 2;
/// Overlay reason marker for query seeds (assumptions / negated RUP
/// clause literals), which have no antecedent clause.
const SEED: usize = usize::MAX;

/// A proof step or answer the checker refused to certify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Index of the offending step within the applied segment, when the
    /// failure is tied to one.
    pub step: Option<usize>,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step {
            Some(step) => write!(f, "proof step {step}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for CheckError {}

/// A self-contained conflict cone extracted by [`Checker::replay_core`]:
/// the clause subset through which unit-propagating `core` reaches a
/// conflict. Literals use the DIMACS convention (`±(var_index + 1)`), so
/// the unit can be serialized, shipped, and re-verified offline by
/// [`CoreReplayUnit::verify`] with no solver or checker state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoreReplayUnit {
    /// The assumption core being certified (possibly empty: the formula
    /// slice itself is unsatisfiable).
    pub core: Vec<i64>,
    /// The clauses of the conflict cone.
    pub clauses: Vec<Vec<i64>>,
}

impl CoreReplayUnit {
    /// Re-derives the conflict by naive unit propagation over the
    /// embedded clauses only.
    ///
    /// # Errors
    ///
    /// Returns a message when propagation reaches a fixpoint without a
    /// conflict — the unit does not certify its core — or when a
    /// literal is malformed (zero).
    pub fn verify(&self) -> Result<(), String> {
        let mut values: HashMap<i64, bool> = HashMap::new();
        let assign = |values: &mut HashMap<i64, bool>, lit: i64| -> Result<bool, String> {
            if lit == 0 {
                return Err("malformed literal 0 in replay unit".to_string());
            }
            match values.get(&lit.abs()) {
                Some(&v) if v == (lit > 0) => Ok(false),
                Some(_) => Ok(true), // contradiction
                None => {
                    values.insert(lit.abs(), lit > 0);
                    Ok(false)
                }
            }
        };
        for &lit in &self.core {
            if assign(&mut values, lit)? {
                return Ok(()); // contradictory core literals conflict directly
            }
        }
        loop {
            let mut progressed = false;
            for clause in &self.clauses {
                let mut unassigned: Option<i64> = None;
                let mut open = 0usize;
                let mut satisfied = false;
                for &lit in clause {
                    if lit == 0 {
                        return Err("malformed literal 0 in replay unit".to_string());
                    }
                    match values.get(&lit.abs()) {
                        Some(&v) if v == (lit > 0) => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            open += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match (open, unassigned) {
                    (0, _) => return Ok(()), // falsified clause: conflict re-derived
                    (1, Some(lit)) => {
                        if assign(&mut values, lit)? {
                            return Ok(());
                        }
                        progressed = true;
                    }
                    _ => {}
                }
            }
            if !progressed {
                return Err(format!(
                    "core replay reached a fixpoint without a conflict \
                     ({} clauses, {} core literals)",
                    self.clauses.len(),
                    self.core.len()
                ));
            }
        }
    }
}

#[derive(Debug)]
struct CClause {
    lits: Box<[Lit]>,
    active: bool,
    axiom: bool,
}

/// The independent checker. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Checker {
    clauses: Vec<CClause>,
    /// Occurrence lists: for each literal code, the clauses containing
    /// that literal.
    occ: Vec<Vec<usize>>,
    /// Sorted-literal key → clause indices, for `Delete` matching.
    index: HashMap<Box<[Lit]>, Vec<usize>>,
    /// Monotone top-level closure (mirrors the solver's level-0 trail).
    base_val: Vec<u8>,
    base_reason: Vec<usize>,
    base_trail: Vec<Lit>,
    base_qhead: usize,
    /// Set to the falsified clause once the closure itself conflicts —
    /// from then on the formula is unsatisfiable outright.
    base_conflict: Option<usize>,
    /// Generation-tagged scratch assignment for per-query propagation.
    generation: u64,
    ovl_gen: Vec<u64>,
    ovl_val: Vec<u8>,
    ovl_reason: Vec<usize>,
    steps_applied: u64,
}

impl Checker {
    /// Creates an empty checker.
    #[must_use]
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Total proof steps applied so far (axioms, derivations, deletions).
    #[must_use]
    pub fn steps_applied(&self) -> u64 {
        self.steps_applied
    }

    /// Whether the accumulated closure already refutes the formula.
    #[must_use]
    pub fn formula_refuted(&self) -> bool {
        self.base_conflict.is_some()
    }

    /// Applies a drained proof segment, verifying every `Derive` step by
    /// RUP and mirroring deletions.
    ///
    /// # Errors
    ///
    /// Returns the index of the first step that fails to check: a
    /// `Derive` that is not RUP over the active clause set, or a
    /// `Delete` naming a clause that is not active.
    pub fn apply(&mut self, proof: &Proof) -> Result<(), CheckError> {
        for (i, step) in proof.steps.iter().enumerate() {
            self.steps_applied += 1;
            match step {
                ProofStep::Axiom(lits) => {
                    self.add_clause(lits, true);
                }
                ProofStep::Derive { clause, .. } => {
                    // Hints are advisory; the check is always the full
                    // RUP propagation.
                    if !self.rup(clause) {
                        return Err(CheckError {
                            step: Some(i),
                            message: format!(
                                "derived clause {} is not RUP over the active clause set",
                                render(clause)
                            ),
                        });
                    }
                    self.add_clause(clause, false);
                }
                ProofStep::Delete(lits) => {
                    self.delete_clause(lits).map_err(|message| CheckError {
                        step: Some(i),
                        message,
                    })?;
                }
            }
        }
        Ok(())
    }

    /// Verifies a SAT answer: every axiom clause must contain a literal
    /// the model makes true. Returns the number of clauses evaluated.
    ///
    /// # Errors
    ///
    /// Returns the first axiom clause the model fails to satisfy
    /// (including clauses with unassigned variables).
    pub fn check_model<F>(&self, model: F) -> Result<u64, CheckError>
    where
        F: Fn(Var) -> Option<bool>,
    {
        let mut checked = 0u64;
        for clause in self.clauses.iter().filter(|c| c.axiom) {
            checked += 1;
            let satisfied = clause
                .lits
                .iter()
                .any(|&l| model(l.var()) == Some(l.is_positive()));
            if !satisfied {
                return Err(CheckError {
                    step: None,
                    message: format!(
                        "model does not satisfy original clause {}",
                        render(&clause.lits)
                    ),
                });
            }
        }
        Ok(checked)
    }

    /// Verifies an UNSAT answer's assumption core: unit propagation from
    /// the core literals alone (over the active clause set and the
    /// top-level closure) must reach a conflict. On success, returns the
    /// conflict cone as an offline-verifiable [`CoreReplayUnit`].
    ///
    /// # Errors
    ///
    /// Returns an error when propagation reaches a fixpoint without a
    /// conflict — the claimed core does not refute the formula.
    pub fn replay_core(&mut self, core: &[Lit]) -> Result<CoreReplayUnit, CheckError> {
        for &lit in core {
            self.ensure_var(lit.var());
        }
        if let Some(conflict) = self.base_conflict {
            return Ok(self.extract_cone(core, conflict, 0));
        }
        self.generation += 1;
        let mut trail: Vec<Lit> = Vec::new();
        for &lit in core {
            match self.value(lit) {
                Some(true) => {}
                Some(false) => {
                    let conflict = self.reason_of(lit.var());
                    if conflict == SEED {
                        // Two core literals contradict each other
                        // directly; no clauses are needed for the cone.
                        return Ok(CoreReplayUnit {
                            core: core.iter().map(|&l| dimacs(l)).collect(),
                            clauses: Vec::new(),
                        });
                    }
                    // The closure already forces ¬lit: the cone is the
                    // derivation of ¬lit plus the seed itself.
                    return Ok(self.extract_cone(core, conflict, self.generation));
                }
                None => {
                    self.ovl_assign(lit, SEED);
                    trail.push(lit);
                }
            }
        }
        match self.propagate_overlay(&mut trail) {
            Some(conflict) => Ok(self.extract_cone(core, conflict, self.generation)),
            None => Err(CheckError {
                step: None,
                message: format!(
                    "assumption core {} does not propagate to a conflict",
                    render(core)
                ),
            }),
        }
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn ensure_var(&mut self, var: Var) {
        let need = var.index() + 1;
        if self.base_val.len() < need {
            self.base_val.resize(need, UNDEF);
            self.base_reason.resize(need, SEED);
            self.ovl_gen.resize(need, 0);
            self.ovl_val.resize(need, UNDEF);
            self.ovl_reason.resize(need, SEED);
            self.occ.resize(2 * need, Vec::new());
        }
    }

    /// Current value of `lit` — scratch overlay first, closure second.
    fn value(&self, lit: Lit) -> Option<bool> {
        let v = lit.var().index();
        let assigned = if self.ovl_gen[v] == self.generation && self.ovl_val[v] != UNDEF {
            self.ovl_val[v]
        } else {
            self.base_val[v]
        };
        match assigned {
            UNDEF => None,
            value => Some((value == 1) == lit.is_positive()),
        }
    }

    /// The clause that forced the current value of `var` (overlay first,
    /// closure second). `SEED` for query seeds.
    fn reason_of(&self, var: Var) -> usize {
        let v = var.index();
        if self.ovl_gen[v] == self.generation && self.ovl_val[v] != UNDEF {
            self.ovl_reason[v]
        } else {
            self.base_reason[v]
        }
    }

    fn ovl_assign(&mut self, lit: Lit, reason: usize) {
        let v = lit.var().index();
        self.ovl_gen[v] = self.generation;
        self.ovl_val[v] = u8::from(lit.is_positive());
        self.ovl_reason[v] = reason;
    }

    fn add_clause(&mut self, lits: &[Lit], axiom: bool) {
        let mut sorted: Vec<Lit> = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &lit in &sorted {
            self.ensure_var(lit.var());
        }
        let cref = self.clauses.len();
        for &lit in &sorted {
            self.occ[lit.code()].push(cref);
        }
        let key: Box<[Lit]> = sorted.clone().into_boxed_slice();
        self.index.entry(key).or_default().push(cref);
        self.clauses.push(CClause {
            lits: sorted.into_boxed_slice(),
            active: true,
            axiom,
        });
        if self.base_conflict.is_none() {
            self.scan_into_base(cref);
            self.propagate_base();
        }
    }

    fn delete_clause(&mut self, lits: &[Lit]) -> Result<(), String> {
        let mut key: Vec<Lit> = lits.to_vec();
        key.sort_unstable();
        key.dedup();
        let candidates = self
            .index
            .get_mut(key.as_slice())
            .ok_or_else(|| format!("deletion of unknown clause {}", render(lits)))?;
        // Prefer deleting a non-axiom copy so the model check keeps
        // covering every original clause.
        let pick = candidates
            .iter()
            .rposition(|&c| self.clauses[c].active && !self.clauses[c].axiom)
            .or_else(|| candidates.iter().rposition(|&c| self.clauses[c].active))
            .ok_or_else(|| format!("deletion of already-deleted clause {}", render(lits)))?;
        let cref = candidates.remove(pick);
        self.clauses[cref].active = false;
        Ok(())
    }

    /// Seeds the top-level closure from clause `cref`: records a
    /// conflict if the clause is falsified, enqueues its unit if it has
    /// exactly one open literal.
    fn scan_into_base(&mut self, cref: usize) {
        if !self.clauses[cref].active {
            return;
        }
        let mut open: Option<Lit> = None;
        let mut open_count = 0usize;
        for i in 0..self.clauses[cref].lits.len() {
            let lit = self.clauses[cref].lits[i];
            match self.base_value(lit) {
                Some(true) => return,
                Some(false) => {}
                None => {
                    open_count += 1;
                    open = Some(lit);
                }
            }
        }
        match (open_count, open) {
            (0, _) => self.base_conflict = Some(cref),
            (1, Some(lit)) => self.base_enqueue(lit, cref),
            _ => {}
        }
    }

    fn base_value(&self, lit: Lit) -> Option<bool> {
        match self.base_val[lit.var().index()] {
            UNDEF => None,
            value => Some((value == 1) == lit.is_positive()),
        }
    }

    fn base_enqueue(&mut self, lit: Lit, reason: usize) {
        debug_assert!(self.base_value(lit).is_none());
        let v = lit.var().index();
        self.base_val[v] = u8::from(lit.is_positive());
        self.base_reason[v] = reason;
        self.base_trail.push(lit);
    }

    fn propagate_base(&mut self) {
        while self.base_qhead < self.base_trail.len() {
            if self.base_conflict.is_some() {
                return;
            }
            let p = self.base_trail[self.base_qhead];
            self.base_qhead += 1;
            let code = (!p).code();
            for k in 0..self.occ[code].len() {
                let cref = self.occ[code][k];
                self.scan_into_base(cref);
                if self.base_conflict.is_some() {
                    return;
                }
            }
        }
    }

    /// Unit propagation over the scratch overlay; returns the falsified
    /// clause on conflict.
    fn propagate_overlay(&mut self, trail: &mut Vec<Lit>) -> Option<usize> {
        let mut qhead = 0usize;
        while qhead < trail.len() {
            let p = trail[qhead];
            qhead += 1;
            let code = (!p).code();
            for k in 0..self.occ[code].len() {
                let cref = self.occ[code][k];
                if !self.clauses[cref].active {
                    continue;
                }
                let mut open: Option<Lit> = None;
                let mut open_count = 0usize;
                let mut satisfied = false;
                for i in 0..self.clauses[cref].lits.len() {
                    let lit = self.clauses[cref].lits[i];
                    match self.value(lit) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            open_count += 1;
                            open = Some(lit);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match (open_count, open) {
                    (0, _) => return Some(cref),
                    (1, Some(lit)) => {
                        self.ovl_assign(lit, cref);
                        trail.push(lit);
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Reverse-unit-propagation check: asserting the negation of every
    /// literal in `clause` must conflict under unit propagation.
    fn rup(&mut self, clause: &[Lit]) -> bool {
        for &lit in clause {
            self.ensure_var(lit.var());
        }
        if self.base_conflict.is_some() {
            return true;
        }
        self.generation += 1;
        let mut trail: Vec<Lit> = Vec::new();
        for &lit in clause {
            match self.value(lit) {
                // A top-level-true literal makes the clause implied
                // outright (and a tautology hits this via its own
                // negated first literal).
                Some(true) => return true,
                Some(false) => {}
                None => {
                    self.ovl_assign(!lit, SEED);
                    trail.push(!lit);
                }
            }
        }
        self.propagate_overlay(&mut trail).is_some()
    }

    /// Walks backwards from `conflict` through reason clauses, collecting
    /// the self-contained clause cone that re-derives the conflict from
    /// the core literals alone.
    fn extract_cone(&self, core: &[Lit], conflict: usize, generation: u64) -> CoreReplayUnit {
        let mut cone: Vec<usize> = Vec::new();
        let mut in_cone = vec![false; self.clauses.len()];
        let mut seen_var = vec![false; self.base_val.len()];
        let mut stack: Vec<usize> = vec![conflict];
        in_cone[conflict] = true;
        while let Some(cref) = stack.pop() {
            cone.push(cref);
            for &lit in self.clauses[cref].lits.iter() {
                let v = lit.var().index();
                if seen_var[v] {
                    continue;
                }
                seen_var[v] = true;
                let assigned_now = self.base_val[v] != UNDEF
                    || (generation > 0
                        && self.ovl_gen[v] == generation
                        && self.ovl_val[v] != UNDEF);
                if !assigned_now {
                    continue;
                }
                let reason = if generation > 0
                    && self.ovl_gen[v] == generation
                    && self.ovl_val[v] != UNDEF
                {
                    self.ovl_reason[v]
                } else {
                    self.base_reason[v]
                };
                if reason != SEED && !in_cone[reason] {
                    in_cone[reason] = true;
                    stack.push(reason);
                }
            }
        }
        cone.sort_unstable();
        CoreReplayUnit {
            core: core.iter().map(|&l| dimacs(l)).collect(),
            clauses: cone
                .into_iter()
                .map(|c| self.clauses[c].lits.iter().map(|&l| dimacs(l)).collect())
                .collect(),
        }
    }
}

fn dimacs(lit: Lit) -> i64 {
    let n = lit.var().index() as i64 + 1;
    if lit.is_positive() {
        n
    } else {
        -n
    }
}

fn render(lits: &[Lit]) -> String {
    let mut out = String::from("(");
    for (i, &lit) in lits.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&dimacs(lit).to_string());
    }
    out.push(')');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveResult, Solver};

    fn lit(i: usize, positive: bool) -> Lit {
        Lit::new(Var::from_index(i), positive)
    }

    fn axiom(lits: &[Lit]) -> ProofStep {
        ProofStep::Axiom(lits.into())
    }

    fn derive(lits: &[Lit]) -> ProofStep {
        ProofStep::Derive {
            clause: lits.into(),
            hints: Box::default(),
        }
    }

    fn audited_solver(n: usize) -> Solver {
        let mut solver = Solver::new();
        solver.enable_proof();
        for _ in 0..n {
            solver.new_var();
        }
        solver
    }

    #[test]
    fn sat_answer_model_checks() {
        let mut solver = audited_solver(3);
        let (a, b, c) = (lit(0, true), lit(1, true), lit(2, true));
        solver.add_clause([a, b]);
        solver.add_clause([!a, c]);
        solver.add_clause([!b, !c]);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        let mut checker = Checker::new();
        checker.apply(&solver.take_proof()).expect("proof checks");
        let checked = checker
            .check_model(|v| solver.model_value(v))
            .expect("model satisfies all axioms");
        assert_eq!(checked, 3);
    }

    #[test]
    fn a_wrong_model_is_rejected() {
        let mut checker = Checker::new();
        checker
            .apply(&Proof {
                steps: vec![axiom(&[lit(0, true), lit(1, true)])],
            })
            .expect("axioms check");
        let err = checker
            .check_model(|_| Some(false))
            .expect_err("all-false model violates (1 2)");
        assert!(err.message.contains("(1 2)"), "{err}");
        // Unassigned variables do not count as satisfying either.
        let err = checker.check_model(|_| None).expect_err("unassigned model");
        assert!(err.message.contains("model does not satisfy"), "{err}");
    }

    #[test]
    fn assumption_core_replays_through_the_checker() {
        // a → x, x → y, y → ¬b: assuming [a, b] is unsat via a chain.
        let mut solver = audited_solver(4);
        let (a, b, x, y) = (lit(0, true), lit(1, true), lit(2, true), lit(3, true));
        solver.add_clause([!a, x]);
        solver.add_clause([!x, y]);
        solver.add_clause([!y, !b]);
        assert_eq!(solver.solve(&[a, b]), SolveResult::Unsat);
        let core: Vec<Lit> = solver.unsat_core().to_vec();
        let mut checker = Checker::new();
        checker.apply(&solver.take_proof()).expect("proof checks");
        let unit = checker.replay_core(&core).expect("core replays");
        unit.verify().expect("cone re-derives the conflict offline");
        assert!(!unit.clauses.is_empty());
        // Every cone literal references a clause shipped in the unit.
        assert!(unit.core.iter().all(|&l| l != 0));
    }

    #[test]
    fn a_tampered_core_is_rejected() {
        let mut solver = audited_solver(4);
        let (a, b, x, y) = (lit(0, true), lit(1, true), lit(2, true), lit(3, true));
        solver.add_clause([!a, x]);
        solver.add_clause([!x, y]);
        solver.add_clause([!y, !b]);
        assert_eq!(solver.solve(&[a, b]), SolveResult::Unsat);
        let mut checker = Checker::new();
        checker.apply(&solver.take_proof()).expect("proof checks");
        // Dropping a literal from the core must break the replay.
        let err = checker.replay_core(&[a]).expect_err("a alone is sat");
        assert!(err.message.contains("does not propagate"), "{err}");
        // And a unit whose core was stripped offline must fail verify.
        let mut unit = checker.replay_core(&[a, b]).expect("full core replays");
        unit.core.retain(|&l| l != 2);
        unit.verify().expect_err("stripped core cannot conflict");
    }

    #[test]
    fn formula_level_unsat_replays_with_an_empty_core() {
        let mut solver = audited_solver(2);
        let a = lit(0, true);
        solver.add_clause([a]);
        solver.add_clause([!a]);
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
        let mut checker = Checker::new();
        checker.apply(&solver.take_proof()).expect("proof checks");
        assert!(checker.formula_refuted());
        let unit = checker.replay_core(&[]).expect("empty core replays");
        unit.verify().expect("cone conflicts with no seeds");
    }

    #[test]
    fn learnt_clauses_verify_by_rup_on_pigeonhole() {
        // PHP(5, 4): forces real conflict analysis, so the proof carries
        // genuinely learnt clauses with antecedent hints.
        let mut solver = Solver::new();
        solver.enable_proof();
        let mut grid = Vec::new();
        for _ in 0..5 {
            let row: Vec<Lit> = (0..4).map(|_| Lit::positive(solver.new_var())).collect();
            grid.push(row);
        }
        for row in &grid {
            solver.add_clause(row.iter().copied());
        }
        for (p1, row1) in grid.iter().enumerate() {
            for row2 in grid.iter().skip(p1 + 1) {
                for (&l1, &l2) in row1.iter().zip(row2) {
                    solver.add_clause([!l1, !l2]);
                }
            }
        }
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
        let proof = solver.take_proof();
        let derives = proof
            .steps
            .iter()
            .filter(|s| matches!(s, ProofStep::Derive { .. }))
            .count();
        assert!(
            derives > 1,
            "expected learnt clauses, got {derives} derives"
        );
        assert!(proof.bytes() > 0);
        let mut checker = Checker::new();
        checker.apply(&proof).expect("every learnt clause is RUP");
        assert!(checker.formula_refuted());
        assert_eq!(checker.steps_applied(), proof.len() as u64);
    }

    #[test]
    fn a_non_rup_derivation_is_rejected() {
        let (a, b) = (lit(0, true), lit(1, true));
        let mut checker = Checker::new();
        let good = Proof {
            steps: vec![axiom(&[a, b]), axiom(&[!a, b]), derive(&[b])],
        };
        checker.apply(&good).expect("(2) is RUP");
        let mut checker = Checker::new();
        let bad = Proof {
            steps: vec![axiom(&[a, b]), axiom(&[!a, b]), derive(&[!b])],
        };
        let err = checker.apply(&bad).expect_err("(-2) is not RUP");
        assert_eq!(err.step, Some(2));
        assert!(err.message.contains("not RUP"), "{err}");
    }

    #[test]
    fn deleted_clauses_stop_supporting_derivations() {
        let (a, b) = (lit(0, true), lit(1, true));
        // With both axioms, (2) is RUP; after deleting (1 2) it is not.
        let mut checker = Checker::new();
        let proof = Proof {
            steps: vec![
                axiom(&[a, b]),
                axiom(&[!a, b]),
                ProofStep::Delete(vec![a, b].into()),
                derive(&[b]),
            ],
        };
        let err = checker.apply(&proof).expect_err("support was deleted");
        assert_eq!(err.step, Some(3));
        // Deleting a clause that was never added is itself a finding.
        let mut checker = Checker::new();
        let err = checker
            .apply(&Proof {
                steps: vec![ProofStep::Delete(vec![a].into())],
            })
            .expect_err("unknown deletion");
        assert!(err.message.contains("unknown clause"), "{err}");
    }

    #[test]
    fn incremental_audit_across_solves() {
        let mut solver = audited_solver(3);
        let (a, b, c) = (lit(0, true), lit(1, true), lit(2, true));
        let mut checker = Checker::new();

        solver.add_clause([a, b]);
        assert_eq!(solver.solve(&[!a]), SolveResult::Sat);
        checker.apply(&solver.take_proof()).expect("segment 1");
        checker
            .check_model(|v| solver.model_value(v))
            .expect("model 1");

        solver.add_clause([!b, c]);
        assert_eq!(solver.solve(&[!a, !c]), SolveResult::Unsat);
        let core = solver.unsat_core().to_vec();
        checker.apply(&solver.take_proof()).expect("segment 2");
        let unit = checker.replay_core(&core).expect("core replays");
        unit.verify().expect("offline verify");

        // The failed assumptions must not poison later audited answers.
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        checker.apply(&solver.take_proof()).expect("segment 3");
        checker
            .check_model(|v| solver.model_value(v))
            .expect("model 3");
    }

    #[test]
    fn enabling_mid_stream_snapshots_existing_state() {
        let mut solver = Solver::new();
        let v0 = solver.new_var();
        let v1 = solver.new_var();
        let (a, b) = (Lit::positive(v0), Lit::positive(v1));
        solver.add_clause([a, b]);
        solver.add_clause([!a]); // simplified to the unit fact ¬a
        solver.enable_proof();
        assert!(solver.proof_enabled());
        assert_eq!(solver.solve(&[!b]), SolveResult::Unsat);
        let core = solver.unsat_core().to_vec();
        let mut checker = Checker::new();
        checker
            .apply(&solver.take_proof())
            .expect("snapshot + proof");
        let unit = checker.replay_core(&core).expect("core replays");
        unit.verify().expect("offline verify");
    }

    #[test]
    fn proof_is_empty_when_logging_is_off() {
        let mut solver = Solver::new();
        let v = solver.new_var();
        solver.add_clause([Lit::positive(v)]);
        assert!(!solver.proof_enabled());
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert!(solver.take_proof().is_empty());
    }
}
