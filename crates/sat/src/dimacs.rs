//! DIMACS CNF import/export.
//!
//! Primarily a debugging aid: a failing bit-blasted query can be dumped with
//! [`to_dimacs`] and cross-checked with an external solver.

use std::error::Error;
use std::fmt;

use crate::{Lit, Solver, Var};

/// Error produced by [`parse_dimacs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending input line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDimacsError {}

/// Parses DIMACS CNF text into a fresh [`Solver`].
///
/// Comment lines (`c …`) and the problem line (`p cnf V C`) are accepted;
/// variables beyond the declared count are allocated on demand.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed tokens or a clause without a
/// terminating `0`.
///
/// # Example
///
/// ```
/// use symcosim_sat::{parse_dimacs, SolveResult};
///
/// # fn main() -> Result<(), symcosim_sat::ParseDimacsError> {
/// let mut solver = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n")?;
/// assert_eq!(solver.solve(&[]), SolveResult::Sat);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs(text: &str) -> Result<Solver, ParseDimacsError> {
    let mut solver = Solver::new();
    let mut clause: Vec<Lit> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
            continue;
        }
        for token in line.split_ascii_whitespace() {
            let value: i64 = token.parse().map_err(|_| ParseDimacsError {
                line: lineno + 1,
                message: format!("invalid literal token {token:?}"),
            })?;
            if value == 0 {
                solver.add_clause(clause.drain(..));
                continue;
            }
            let var_index = (value.unsigned_abs() - 1) as usize;
            while solver.num_vars() <= var_index {
                solver.new_var();
            }
            clause.push(Lit::new(Var::from_index(var_index), value > 0));
        }
    }
    if !clause.is_empty() {
        return Err(ParseDimacsError {
            line: text.lines().count(),
            message: "last clause not terminated by 0".to_string(),
        });
    }
    Ok(solver)
}

/// Serialises a clause list to DIMACS CNF text.
///
/// `num_vars` is emitted in the problem line; literal `v0` becomes DIMACS
/// variable `1`.
pub fn to_dimacs<'a, I>(num_vars: usize, clauses: I) -> String
where
    I: IntoIterator<Item = &'a [Lit]>,
{
    let clause_texts: Vec<String> = clauses
        .into_iter()
        .map(|clause| {
            let mut line = String::new();
            for lit in clause {
                let dimacs =
                    (lit.var().index() as i64 + 1) * if lit.is_positive() { 1 } else { -1 };
                line.push_str(&dimacs.to_string());
                line.push(' ');
            }
            line.push('0');
            line
        })
        .collect();
    format!(
        "p cnf {} {}\n{}\n",
        num_vars,
        clause_texts.len(),
        clause_texts.join("\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parses_comments_and_problem_line() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let mut solver = parse_dimacs(text).expect("valid DIMACS");
        assert_eq!(solver.num_vars(), 3);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn rejects_garbage_token() {
        let err = parse_dimacs("1 x 0\n").expect_err("invalid token");
        assert_eq!(err.line, 1);
        assert!(err.message.contains("invalid literal"));
    }

    #[test]
    fn rejects_unterminated_clause() {
        let err = parse_dimacs("1 2\n").expect_err("unterminated clause");
        assert!(err.message.contains("not terminated"));
    }

    #[test]
    fn round_trip_through_text() {
        let clauses: Vec<Vec<Lit>> = vec![
            vec![
                Lit::positive(Var::from_index(0)),
                Lit::negative(Var::from_index(1)),
            ],
            vec![Lit::positive(Var::from_index(1))],
        ];
        let text = to_dimacs(2, clauses.iter().map(|c| c.as_slice()));
        assert!(text.starts_with("p cnf 2 2"));
        let mut solver = parse_dimacs(&text).expect("round trip");
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(0)), Some(true));
        assert_eq!(solver.model_value(Var::from_index(1)), Some(true));
    }

    #[test]
    fn empty_input_is_sat() {
        let mut solver = parse_dimacs("").expect("empty ok");
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }
}
