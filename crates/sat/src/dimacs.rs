//! DIMACS CNF import/export.
//!
//! Primarily a debugging aid: a failing bit-blasted query can be dumped with
//! [`to_dimacs`] and cross-checked with an external solver.

use std::error::Error;
use std::fmt;

use crate::{Lit, Solver, Var};

/// Error produced by [`parse_dimacs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending input line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDimacsError {}

/// The largest variable index [`parse_dimacs`] will allocate on demand
/// when the input carries no `p cnf` header. Bounds the damage of a
/// typo like `10000000000` before the solver tries to allocate it.
const MAX_UNDECLARED_VAR: u64 = 1 << 24;

/// Parses DIMACS CNF text into a fresh [`Solver`].
///
/// Comment lines (`c …`) are skipped. A problem line (`p cnf V C`) is
/// validated when present: it must carry exactly the two numeric fields,
/// and every literal is then range-checked against the declared variable
/// count `V`. Without a header, variables are allocated on demand (up to
/// an allocation-safety cap). The declared clause count is informative
/// only, matching common solver practice.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on a truncated or malformed problem
/// line, a malformed literal token, a literal out of the declared (or
/// safe) range, or a clause without a terminating `0`.
///
/// # Example
///
/// ```
/// use symcosim_sat::{parse_dimacs, SolveResult};
///
/// # fn main() -> Result<(), symcosim_sat::ParseDimacsError> {
/// let mut solver = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n")?;
/// assert_eq!(solver.solve(&[]), SolveResult::Sat);
/// # Ok(())
/// # }
/// ```
pub fn parse_dimacs(text: &str) -> Result<Solver, ParseDimacsError> {
    let mut solver = Solver::new();
    let mut clause: Vec<Lit> = Vec::new();
    let mut declared_vars: Option<u64> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let fields: Vec<&str> = rest.split_ascii_whitespace().collect();
            let parsed = match fields.as_slice() {
                ["cnf", vars, clauses] => vars.parse::<u64>().ok().zip(clauses.parse::<u64>().ok()),
                _ => None,
            };
            let (vars, _clauses) = parsed.ok_or_else(|| ParseDimacsError {
                line: lineno + 1,
                message: format!(
                    "malformed problem line {line:?} (expected \"p cnf VARS CLAUSES\")"
                ),
            })?;
            if declared_vars.replace(vars).is_some() {
                return Err(ParseDimacsError {
                    line: lineno + 1,
                    message: "duplicate problem line".to_string(),
                });
            }
            continue;
        }
        for token in line.split_ascii_whitespace() {
            let value: i64 = token.parse().map_err(|_| ParseDimacsError {
                line: lineno + 1,
                message: format!("invalid literal token {token:?}"),
            })?;
            if value == 0 {
                solver.add_clause(clause.drain(..));
                continue;
            }
            let magnitude = value.unsigned_abs();
            let limit = declared_vars.unwrap_or(MAX_UNDECLARED_VAR);
            if magnitude > limit {
                return Err(ParseDimacsError {
                    line: lineno + 1,
                    message: match declared_vars {
                        Some(vars) => format!(
                            "literal {value} out of range (problem line declares {vars} variables)"
                        ),
                        None => {
                            format!("literal {value} out of range (no problem line; cap {limit})")
                        }
                    },
                });
            }
            let var_index = (magnitude - 1) as usize;
            while solver.num_vars() <= var_index {
                solver.new_var();
            }
            clause.push(Lit::new(Var::from_index(var_index), value > 0));
        }
    }
    if !clause.is_empty() {
        return Err(ParseDimacsError {
            line: text.lines().count(),
            message: "last clause not terminated by 0".to_string(),
        });
    }
    Ok(solver)
}

/// Serialises a clause list to DIMACS CNF text.
///
/// `num_vars` is emitted in the problem line; literal `v0` becomes DIMACS
/// variable `1`.
pub fn to_dimacs<'a, I>(num_vars: usize, clauses: I) -> String
where
    I: IntoIterator<Item = &'a [Lit]>,
{
    let clause_texts: Vec<String> = clauses
        .into_iter()
        .map(|clause| {
            let mut line = String::new();
            for lit in clause {
                let dimacs =
                    (lit.var().index() as i64 + 1) * if lit.is_positive() { 1 } else { -1 };
                line.push_str(&dimacs.to_string());
                line.push(' ');
            }
            line.push('0');
            line
        })
        .collect();
    format!(
        "p cnf {} {}\n{}\n",
        num_vars,
        clause_texts.len(),
        clause_texts.join("\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parses_comments_and_problem_line() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let mut solver = parse_dimacs(text).expect("valid DIMACS");
        assert_eq!(solver.num_vars(), 3);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn rejects_garbage_token() {
        let err = parse_dimacs("1 x 0\n").expect_err("invalid token");
        assert_eq!(err.line, 1);
        assert!(err.message.contains("invalid literal"));
    }

    #[test]
    fn rejects_unterminated_clause() {
        let err = parse_dimacs("1 2\n").expect_err("unterminated clause");
        assert!(err.message.contains("not terminated"));
    }

    #[test]
    fn round_trip_through_text() {
        let clauses: Vec<Vec<Lit>> = vec![
            vec![
                Lit::positive(Var::from_index(0)),
                Lit::negative(Var::from_index(1)),
            ],
            vec![Lit::positive(Var::from_index(1))],
        ];
        let text = to_dimacs(2, clauses.iter().map(|c| c.as_slice()));
        assert!(text.starts_with("p cnf 2 2"));
        let mut solver = parse_dimacs(&text).expect("round trip");
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(0)), Some(true));
        assert_eq!(solver.model_value(Var::from_index(1)), Some(true));
    }

    #[test]
    fn empty_input_is_sat() {
        let mut solver = parse_dimacs("").expect("empty ok");
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn rejects_truncated_problem_line() {
        for header in [
            "p cnf 3\n1 0\n",
            "p cnf\n",
            "p\n",
            "p dnf 3 2\n",
            "p cnf 3 2 9\n",
        ] {
            let err = parse_dimacs(header).expect_err("truncated/malformed header");
            assert_eq!(err.line, 1, "{header:?}");
            assert!(err.message.contains("problem line"), "{header:?}: {err}");
        }
    }

    #[test]
    fn rejects_non_numeric_header_counts() {
        let err = parse_dimacs("p cnf three 2\n").expect_err("non-numeric count");
        assert!(err.message.contains("problem line"), "{err}");
    }

    #[test]
    fn rejects_duplicate_problem_line() {
        let err = parse_dimacs("p cnf 2 1\np cnf 2 1\n1 0\n").expect_err("two headers");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_literal_out_of_declared_range() {
        let err = parse_dimacs("p cnf 3 1\n1 4 0\n").expect_err("4 > 3 declared vars");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("out of range"), "{err}");
        assert!(err.message.contains("declares 3"), "{err}");
        let err = parse_dimacs("p cnf 3 1\n-4 0\n").expect_err("negative out of range");
        assert!(err.message.contains("out of range"), "{err}");
        // In range parses fine.
        parse_dimacs("p cnf 3 1\n1 -3 0\n").expect("in range");
    }

    #[test]
    fn caps_undeclared_variable_allocation() {
        let err = parse_dimacs("99999999999 0\n").expect_err("absurd literal");
        assert!(err.message.contains("out of range"), "{err}");
        assert!(err.message.contains("no problem line"), "{err}");
    }

    #[test]
    fn rejects_missing_terminating_zero_before_eof() {
        // A final clause left open across several lines is still caught.
        let err = parse_dimacs("p cnf 2 2\n1 2 0\n-1 -2\n").expect_err("open clause");
        assert!(err.message.contains("not terminated"), "{err}");
    }

    /// Property test: `to_dimacs` → `parse_dimacs` preserves the formula
    /// (same verdict, and the round-tripped solver's model satisfies the
    /// original clauses).
    #[test]
    fn round_trip_preserves_the_formula() {
        use symcosim_testkit::check_cases;

        check_cases(0xd1ac_0001, 200, |rng| {
            let num_vars = 1 + rng.index(10);
            let clauses: Vec<Vec<Lit>> = (0..rng.index(30))
                .map(|_| {
                    (0..1 + rng.index(4))
                        .map(|_| Lit::new(Var::from_index(rng.index(num_vars)), rng.chance(1, 2)))
                        .collect()
                })
                .collect();
            let text = to_dimacs(num_vars, clauses.iter().map(|c| c.as_slice()));
            let mut parsed = parse_dimacs(&text).expect("serializer output parses");
            // Re-serializing the parse input is textually stable.
            assert_eq!(
                to_dimacs(num_vars, clauses.iter().map(|c| c.as_slice())),
                text
            );

            let mut direct = Solver::new();
            for _ in 0..num_vars {
                direct.new_var();
            }
            for clause in &clauses {
                direct.add_clause(clause.iter().copied());
            }
            let expected = direct.solve(&[]);
            let got = parsed.solve(&[]);
            assert_eq!(got, expected, "verdict drifted through DIMACS text");
            if got == SolveResult::Sat {
                for clause in &clauses {
                    assert!(
                        clause
                            .iter()
                            .any(|&l| parsed.model_lit_value(l) == Some(true)),
                        "round-tripped model violates {clause:?}"
                    );
                }
            }
        });
    }
}
