//! The CDCL search engine.

use std::fmt;

use crate::proof::{Proof, ProofLog, ProofStep};
use crate::{Lit, Var};

const UNDEF: u8 = 2;

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable under the given assumptions.
    Unsat,
}

/// Cumulative search statistics, exposed for the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of `solve` calls.
    pub solves: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solves={} decisions={} propagations={} conflicts={} restarts={} learnt={}",
            self.solves,
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learnt_clauses
        )
    }
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: usize,
    blocker: Lit,
}

/// A conflict-driven clause-learning SAT solver.
///
/// See the [crate documentation](crate) for an end-to-end example. Clauses
/// may be added at any time between `solve` calls; learnt clauses persist,
/// making repeated [`Solver::solve`] calls under different assumptions cheap
/// (this is how the symbolic engine checks path feasibility incrementally).
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<u8>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: Vec<Var>,
    heap_index: Vec<usize>,
    seen: Vec<bool>,
    model: Vec<u8>,
    core: Vec<Lit>,
    ok: bool,
    stats: SolverStats,
    proof: Option<Box<ProofLog>>,
}

const HEAP_ABSENT: usize = usize::MAX;

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: Vec::new(),
            heap_index: Vec::new(),
            seen: Vec::new(),
            model: Vec::new(),
            core: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            proof: None,
        }
    }

    /// Turns on clausal proof logging (see [`crate::proof`]).
    ///
    /// Zero-cost when never called: every logging site is a single
    /// `Option` check. Idempotent. Best enabled on a fresh solver; when
    /// enabled mid-stream, the clauses and top-level facts already
    /// present are snapshotted as axioms (taken on faith), so only
    /// derivations from this point on are checkable.
    pub fn enable_proof(&mut self) {
        if self.proof.is_some() {
            return;
        }
        let mut log = Box::new(ProofLog::default());
        for clause in self.clauses.iter().filter(|c| !c.deleted) {
            log.axiom(&clause.lits);
        }
        let boundary = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for &lit in &self.trail[..boundary] {
            log.axiom(&[lit]);
        }
        if !self.ok {
            log.steps.push(ProofStep::Axiom(Box::default()));
        }
        self.proof = Some(log);
    }

    /// Whether proof logging is on.
    pub fn proof_enabled(&self) -> bool {
        self.proof.is_some()
    }

    /// Drains the proof steps accumulated since the last call.
    ///
    /// Returns an empty proof when logging is off. Consecutive drains
    /// form consecutive segments of one logical proof, which is how the
    /// incremental audit applies them between solves.
    pub fn take_proof(&mut self) -> Proof {
        match &mut self.proof {
            Some(log) => Proof {
                steps: std::mem::take(&mut log.steps),
            },
            None => Proof::default(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var(self.assign.len() as u32);
        self.assign.push(UNDEF);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.heap_index.push(HEAP_ABSENT);
        self.heap_insert(var);
        var
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of problem (non-learnt) clauses added.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        let mut stats = self.stats;
        stats.learnt_clauses = self
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted)
            .count() as u64;
        stats
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Tautologies are dropped; literals already false at the top level are
    /// removed. Adding the empty clause (or a clause whose literals are all
    /// false at the top level) makes the formula permanently unsatisfiable.
    ///
    /// Returns `false` if the solver is already in an unsatisfiable state.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable not created by
    /// [`Solver::new_var`] on this solver.
    pub fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for lit in &lits {
            assert!(
                lit.var().index() < self.num_vars(),
                "literal {lit} references an unallocated variable"
            );
        }
        if !self.ok {
            return false;
        }
        // Clause insertion happens at the top level only.
        self.cancel_until(0);
        lits.sort_unstable();
        lits.dedup();
        if let Some(log) = self.proof.as_mut() {
            log.axiom(&lits);
        }
        let mut simplified = Vec::with_capacity(lits.len());
        let mut prev: Option<Lit> = None;
        for lit in lits {
            if let Some(p) = prev {
                if p == !lit {
                    return true; // tautology: contains l and ¬l (adjacent after sort)
                }
            }
            match self.lit_value(lit) {
                Some(true) => return true, // already satisfied at top level
                Some(false) => {}          // drop falsified literal
                None => {
                    simplified.push(lit);
                    prev = Some(lit);
                }
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                if let Some(log) = self.proof.as_mut() {
                    log.derive_unhinted(&[]);
                }
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    if let Some(log) = self.proof.as_mut() {
                        log.derive_unhinted(&[]);
                    }
                }
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    /// Solves under the given assumptions.
    ///
    /// Assumptions are literals forced true for this call only. After
    /// [`SolveResult::Sat`], the model is available via
    /// [`Solver::model_value`] until mutated again.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.stats.solves += 1;
        self.core.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            if let Some(log) = self.proof.as_mut() {
                log.derive_unhinted(&[]);
            }
            return SolveResult::Unsat;
        }

        let mut conflicts_until_restart = self.restart_budget();
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    if let Some(log) = self.proof.as_mut() {
                        log.derive_unhinted(&[]);
                    }
                    return SolveResult::Unsat;
                }
                let (learnt, backjump) = self.analyze(confl);
                // A conflict forcing us below the assumption prefix means
                // the assumptions themselves are inconsistent with the
                // formula once the asserting literal contradicts one.
                self.cancel_until(backjump);
                if let Some(log) = self.proof.as_mut() {
                    // Consumes the antecedent hints `analyze` collected.
                    log.derive(&learnt);
                }
                match learnt.len() {
                    0 => {
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                    1 => {
                        if self.lit_value(learnt[0]) == Some(false) {
                            self.ok = false;
                            if let Some(log) = self.proof.as_mut() {
                                log.derive_unhinted(&[]);
                            }
                            return SolveResult::Unsat;
                        }
                        if self.lit_value(learnt[0]).is_none() {
                            self.unchecked_enqueue(learnt[0], None);
                        }
                    }
                    _ => {
                        let asserting = learnt[0];
                        let cref = self.attach_clause(learnt, true);
                        self.bump_clause(cref);
                        self.unchecked_enqueue(asserting, Some(cref));
                    }
                }
                self.decay_activities();
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
            } else {
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    conflicts_until_restart = self.restart_budget();
                    self.cancel_until(0);
                    self.maybe_reduce_db();
                    continue;
                }
                // Establish assumptions, one decision level each.
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        Some(true) => {
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        Some(false) => {
                            // The formula (plus earlier assumptions) implies ¬p.
                            self.analyze_final(p);
                            self.cancel_until(0);
                            self.minimize_core();
                            return SolveResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                            continue;
                        }
                    }
                }
                match self.pick_branch_var() {
                    None => {
                        // All variables assigned: model found.
                        self.model = self.assign.clone();
                        self.cancel_until(0);
                        return SolveResult::Sat;
                    }
                    Some(var) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(var, self.phase[var.index()]);
                        self.unchecked_enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// The value of `var` in the most recent satisfying assignment.
    ///
    /// `None` if no model is available or the variable was created after
    /// the last successful solve.
    pub fn model_value(&self, var: Var) -> Option<bool> {
        match self.model.get(var.index()) {
            Some(&0) => Some(false),
            Some(&1) => Some(true),
            _ => None,
        }
    }

    /// The value of `lit` in the most recent satisfying assignment.
    pub fn model_lit_value(&self, lit: Lit) -> Option<bool> {
        self.model_value(lit.var()).map(|v| v == lit.is_positive())
    }

    /// The subset of the last [`Solver::solve`] call's assumptions proven
    /// jointly unsatisfiable with the formula — the *assumption core*,
    /// recovered by final conflict analysis over the assumption trail
    /// (MiniSat's `analyzeFinal`).
    ///
    /// Empty after a [`SolveResult::Sat`] answer, and also when the
    /// unsatisfiability does not depend on the assumptions at all (the
    /// formula itself is inconsistent). A non-empty core is a genuine
    /// certificate: any superset of its literals is again unsatisfiable,
    /// which is what makes cores usable as counterexample-cache keys.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn restart_budget(&self) -> u64 {
        100 * luby(self.stats.restarts + 1)
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    #[inline]
    fn var_value(&self, var: Var) -> Option<bool> {
        match self.assign[var.index()] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    #[inline]
    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.var_value(lit.var()).map(|v| v == lit.is_positive())
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> usize {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        self.watches[(!lits[0]).code()].push(Watch {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watch {
            cref,
            blocker: lits[0],
        });
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        cref
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<usize>) {
        debug_assert!(self.lit_value(lit).is_none());
        let var = lit.var();
        self.assign[var.index()] = lit.is_positive() as u8;
        self.level[var.index()] = self.decision_level() as u32;
        self.reason[var.index()] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < ws.len() {
                let watch = ws[i];
                if self.lit_value(watch.blocker) == Some(true) {
                    i += 1;
                    continue;
                }
                let cref = watch.cref;
                if self.clauses[cref].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Ensure the falsified literal ¬p sits at index 1.
                let false_lit = !p;
                {
                    let lits = &mut self.clauses[cref].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[cref].lits[0];
                if first != watch.blocker && self.lit_value(first) == Some(true) {
                    ws[i] = Watch {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Search for a replacement watch.
                let mut moved = false;
                for k in 2..self.clauses[cref].lits.len() {
                    let lit = self.clauses[cref].lits[k];
                    if self.lit_value(lit) != Some(false) {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!lit).code()].push(Watch {
                            cref,
                            blocker: first,
                        });
                        moved = true;
                        break;
                    }
                }
                if moved {
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == Some(false) {
                    self.watches[p.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.unchecked_enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[p.code()] = ws;
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: usize) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = confl;
        let current_level = self.decision_level() as u32;

        loop {
            self.bump_clause(cref);
            if let Some(log) = self.proof.as_mut() {
                log.hint(&self.clauses[cref].lits);
            }
            let start = usize::from(p.is_some());
            let clause_lits: Vec<Lit> = self.clauses[cref].lits[start..].to_vec();
            for q in clause_lits {
                let var = q.var();
                if !self.seen[var.index()] && self.level[var.index()] > 0 {
                    self.seen[var.index()] = true;
                    self.bump_var(var);
                    if self.level[var.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next trail literal contributing to the conflict.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            p = Some(lit);
            cref = self.reason[lit.var().index()].expect("non-decision literal has a reason");
        }

        let asserting = !p.expect("conflict at level > 0 has a UIP");
        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(asserting);
        clause.extend(learnt.iter().copied());

        // Clear remaining seen flags.
        for lit in &clause {
            self.seen[lit.var().index()] = false;
        }

        // Backjump level: highest level among the non-asserting literals.
        let mut backjump = 0usize;
        if clause.len() > 1 {
            let mut max_i = 1;
            for i in 2..clause.len() {
                if self.level[clause[i].var().index()] > self.level[clause[max_i].var().index()] {
                    max_i = i;
                }
            }
            clause.swap(1, max_i);
            backjump = self.level[clause[1].var().index()] as usize;
        }
        (clause, backjump)
    }

    /// Final conflict analysis: `p` is an assumption found already false
    /// while establishing the assumption prefix. Walks the implication
    /// trail backwards from ¬p, collecting the assumption decisions that
    /// participated in forcing it; the resulting [`Solver::unsat_core`]
    /// is `{p} ∪ {those assumptions}`. At this point every decision on the
    /// trail *is* an assumption (search decisions only start once the whole
    /// prefix is established), so `reason == None` identifies them.
    fn analyze_final(&mut self, p: Lit) {
        self.core.clear();
        self.core.push(p);
        if self.level[p.var().index()] == 0 {
            // ¬p is a top-level fact: p alone contradicts the formula.
            return;
        }
        self.seen[p.var().index()] = true;
        let bottom = self.trail_lim[0];
        for i in (bottom..self.trail.len()).rev() {
            let lit = self.trail[i];
            let var = lit.var();
            if !self.seen[var.index()] {
                continue;
            }
            match self.reason[var.index()] {
                None => self.core.push(lit),
                Some(cref) => {
                    let antecedents: Vec<Lit> = self.clauses[cref].lits[1..].to_vec();
                    for q in antecedents {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[var.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    /// Greedy minimization of [`Solver::core`], in canonical (sorted)
    /// literal order: a literal is dropped when unit propagation refutes
    /// the remaining core without it. Sorting first makes the result —
    /// content *and* order — independent of the assumption ordering that
    /// produced the raw `analyze_final` core, so cores are usable as
    /// deterministic cache keys.
    fn minimize_core(&mut self) {
        self.core.sort_unstable();
        self.core.dedup();
        if self.core.len() <= 1 {
            return;
        }
        let mut i = 0;
        while i < self.core.len() {
            let mut candidate = std::mem::take(&mut self.core);
            let removed = candidate.remove(i);
            if self.propagation_refutes(&candidate) {
                self.core = candidate;
            } else {
                candidate.insert(i, removed);
                self.core = candidate;
                i += 1;
            }
        }
    }

    /// Whether asserting `lits` leads to a conflict by unit propagation
    /// alone. Leaves the solver back at decision level zero; never
    /// learns clauses.
    fn propagation_refutes(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let mut refuted = false;
        for &lit in lits {
            match self.lit_value(lit) {
                Some(false) => {
                    refuted = true;
                    break;
                }
                Some(true) => {}
                None => {
                    self.trail_lim.push(self.trail.len());
                    self.unchecked_enqueue(lit, None);
                    if self.propagate().is_some() {
                        refuted = true;
                        break;
                    }
                }
            }
        }
        self.cancel_until(0);
        refuted
    }

    fn cancel_until(&mut self, target_level: usize) {
        if self.decision_level() <= target_level {
            return;
        }
        let boundary = self.trail_lim[target_level];
        for i in (boundary..self.trail.len()).rev() {
            let lit = self.trail[i];
            let var = lit.var();
            self.phase[var.index()] = lit.is_positive();
            self.assign[var.index()] = UNDEF;
            self.reason[var.index()] = None;
            if self.heap_index[var.index()] == HEAP_ABSENT {
                self.heap_insert(var);
            }
        }
        self.trail.truncate(boundary);
        self.trail_lim.truncate(target_level);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(var) = self.heap_pop() {
            if self.var_value(var).is_none() {
                return Some(var);
            }
        }
        None
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_index[var.index()] != HEAP_ABSENT {
            self.heap_sift_up(self.heap_index[var.index()]);
        }
    }

    fn bump_clause(&mut self, cref: usize) {
        if !self.clauses[cref].learnt {
            return;
        }
        self.clauses[cref].activity += self.cla_inc;
        if self.clauses[cref].activity > 1e20 {
            for clause in &mut self.clauses {
                clause.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
        self.cla_inc /= 0.999;
    }

    /// Deletes low-activity learnt clauses when the database grows past a
    /// threshold. Runs only at decision level zero.
    fn maybe_reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let learnt_count = self
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted)
            .count();
        let threshold = 2000 + self.num_clauses();
        if learnt_count <= threshold {
            return;
        }
        let mut activities: Vec<f64> = self
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted)
            .map(|c| c.activity)
            .collect();
        activities.sort_by(|a, b| a.partial_cmp(b).expect("activities are finite"));
        let median = activities[activities.len() / 2];
        let locked: Vec<Option<usize>> = self.reason.clone();
        let mut dropped: Vec<usize> = Vec::new();
        for (cref, clause) in self.clauses.iter_mut().enumerate() {
            if clause.learnt
                && !clause.deleted
                && clause.activity < median
                && clause.lits.len() > 2
                && !locked.contains(&Some(cref))
            {
                clause.deleted = true;
                dropped.push(cref);
            }
        }
        if let Some(log) = self.proof.as_mut() {
            for &cref in &dropped {
                log.delete(&self.clauses[cref].lits);
            }
        }
        // Rebuild watches from scratch, dropping deleted clauses.
        for list in &mut self.watches {
            list.clear();
        }
        for cref in 0..self.clauses.len() {
            if self.clauses[cref].deleted {
                continue;
            }
            let (l0, l1) = (self.clauses[cref].lits[0], self.clauses[cref].lits[1]);
            self.watches[(!l0).code()].push(Watch { cref, blocker: l1 });
            self.watches[(!l1).code()].push(Watch { cref, blocker: l0 });
        }
    }

    // Indexed binary max-heap ordered by variable activity.

    fn heap_insert(&mut self, var: Var) {
        debug_assert_eq!(self.heap_index[var.index()], HEAP_ABSENT);
        self.heap.push(var);
        self.heap_index[var.index()] = self.heap.len() - 1;
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_index[top.index()] = HEAP_ABSENT;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_index[last.index()] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn heap_sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.activity[self.heap[pos].index()] <= self.activity[self.heap[parent].index()] {
                break;
            }
            self.heap_swap(pos, parent);
            pos = parent;
        }
    }

    fn heap_sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut best = pos;
            if left < self.heap.len()
                && self.activity[self.heap[left].index()] > self.activity[self.heap[best].index()]
            {
                best = left;
            }
            if right < self.heap.len()
                && self.activity[self.heap[right].index()] > self.activity[self.heap[best].index()]
            {
                best = right;
            }
            if best == pos {
                break;
            }
            self.heap_swap(pos, best);
            pos = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_index[self.heap[a].index()] = a;
        self.heap_index[self.heap[b].index()] = b;
    }
}

/// The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(mut i: u64) -> u64 {
    loop {
        if (i + 1).is_power_of_two() {
            return i.div_ceil(2);
        }
        // Strip the longest complete prefix of length 2^k − 1.
        let k = 63 - (i + 1).leading_zeros() as u64;
        i -= (1u64 << k) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(solver: &Solver, i: usize) -> Lit {
        let _ = solver;
        Lit::positive(Var::from_index(i))
    }

    fn solver_with_vars(n: usize) -> Solver {
        let mut solver = Solver::new();
        for _ in 0..n {
            solver.new_var();
        }
        solver
    }

    #[test]
    fn luby_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), want, "luby({})", i + 1);
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut solver = Solver::new();
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut solver = solver_with_vars(3);
        let (a, b, c) = (pos(&solver, 0), pos(&solver, 1), pos(&solver, 2));
        solver.add_clause([a]);
        solver.add_clause([!a, b]);
        solver.add_clause([!b, c]);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(0)), Some(true));
        assert_eq!(solver.model_value(Var::from_index(1)), Some(true));
        assert_eq!(solver.model_value(Var::from_index(2)), Some(true));
    }

    #[test]
    fn direct_contradiction_is_unsat() {
        let mut solver = solver_with_vars(1);
        let a = pos(&solver, 0);
        solver.add_clause([a]);
        assert!(!solver.add_clause([!a]));
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut solver = solver_with_vars(1);
        assert!(!solver.add_clause([]));
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut solver = solver_with_vars(2);
        let (a, b) = (pos(&solver, 0), pos(&solver, 1));
        assert!(solver.add_clause([a, !a]));
        assert!(solver.add_clause([b, !b, a]));
        assert_eq!(solver.num_clauses(), 0);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn assumptions_restrict_but_do_not_persist() {
        let mut solver = solver_with_vars(2);
        let (a, b) = (pos(&solver, 0), pos(&solver, 1));
        solver.add_clause([a, b]);
        assert_eq!(solver.solve(&[!a]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(1)), Some(true));
        assert_eq!(solver.solve(&[!a, !b]), SolveResult::Unsat);
        // The failed assumption query must not poison later queries.
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.solve(&[!b]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(0)), Some(true));
    }

    #[test]
    fn contradictory_assumptions_are_unsat() {
        let mut solver = solver_with_vars(1);
        let a = pos(&solver, 0);
        assert_eq!(solver.solve(&[a, !a]), SolveResult::Unsat);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn unsat_core_of_contradictory_assumptions() {
        let mut solver = solver_with_vars(1);
        let a = pos(&solver, 0);
        assert_eq!(solver.solve(&[a, !a]), SolveResult::Unsat);
        let mut core = solver.unsat_core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![a, !a]);
    }

    #[test]
    fn unsat_core_excludes_irrelevant_assumptions() {
        // (¬a ∨ ¬b) with assumptions [z, a, b, w]: only a and b conflict.
        let mut solver = solver_with_vars(4);
        let (a, b, z, w) = (
            pos(&solver, 0),
            pos(&solver, 1),
            pos(&solver, 2),
            pos(&solver, 3),
        );
        solver.add_clause([!a, !b]);
        assert_eq!(solver.solve(&[z, a, b, w]), SolveResult::Unsat);
        let mut core = solver.unsat_core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![a, b], "core must not mention z or w");
    }

    #[test]
    fn unsat_core_follows_propagation_chains() {
        // a → x, x → y, y → ¬b: assuming [a, b] is unsat through a chain.
        let mut solver = solver_with_vars(4);
        let (a, b, x, y) = (
            pos(&solver, 0),
            pos(&solver, 1),
            pos(&solver, 2),
            pos(&solver, 3),
        );
        solver.add_clause([!a, x]);
        solver.add_clause([!x, y]);
        solver.add_clause([!y, !b]);
        assert_eq!(solver.solve(&[a, b]), SolveResult::Unsat);
        let mut core = solver.unsat_core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![a, b]);
        // The core is a certificate: re-asking just the core is unsat,
        // and a strict subset is sat.
        assert_eq!(solver.solve(&core), SolveResult::Unsat);
        assert_eq!(solver.solve(&[a]), SolveResult::Sat);
        assert!(solver.unsat_core().is_empty(), "sat answers clear the core");
    }

    #[test]
    fn unsat_core_is_empty_for_formula_level_unsat() {
        let mut solver = solver_with_vars(2);
        let a = pos(&solver, 0);
        solver.add_clause([a]);
        solver.add_clause([!a]);
        assert_eq!(solver.solve(&[pos(&solver, 1)]), SolveResult::Unsat);
        assert!(solver.unsat_core().is_empty());
    }

    #[test]
    fn unsat_core_with_top_level_fact() {
        // ¬a is a unit (level-0) fact, so assuming a conflicts alone.
        let mut solver = solver_with_vars(2);
        let (a, b) = (pos(&solver, 0), pos(&solver, 1));
        solver.add_clause([!a]);
        assert_eq!(solver.solve(&[b, a]), SolveResult::Unsat);
        assert_eq!(solver.unsat_core(), &[a]);
    }

    /// Pigeonhole principle PHP(n+1, n) is unsatisfiable — a classic
    /// exercise for the conflict analysis machinery.
    fn pigeonhole(pigeons: usize, holes: usize) -> (Solver, Vec<Vec<Lit>>) {
        let mut solver = Solver::new();
        let mut grid = Vec::new();
        for _ in 0..pigeons {
            let row: Vec<Lit> = (0..holes)
                .map(|_| Lit::positive(solver.new_var()))
                .collect();
            grid.push(row);
        }
        for row in &grid {
            solver.add_clause(row.iter().copied());
        }
        #[allow(clippy::needless_range_loop)] // 2-D pigeonhole indexing
        #[allow(clippy::needless_range_loop)] // 2-D pigeonhole indexing
        for hole in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    let (a, b) = (grid[p1][hole], grid[p2][hole]);
                    solver.add_clause([!a, !b]);
                }
            }
        }
        (solver, grid)
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in 2..=5 {
            let (mut solver, _) = pigeonhole(holes + 1, holes);
            assert_eq!(
                solver.solve(&[]),
                SolveResult::Unsat,
                "PHP({}, {})",
                holes + 1,
                holes
            );
        }
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let (mut solver, grid) = pigeonhole(4, 4);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        // Each pigeon sits in at least one hole in the model.
        for row in &grid {
            assert!(row.iter().any(|&l| solver.model_lit_value(l) == Some(true)));
        }
    }

    #[test]
    fn xor_chain_forces_unique_model() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 = 1  =>  x1 = 0, x2 = 1.
        let mut solver = solver_with_vars(3);
        let (a, b, c) = (pos(&solver, 0), pos(&solver, 1), pos(&solver, 2));
        // a ⊕ b = 1  <=>  (a ∨ b) ∧ (¬a ∨ ¬b)
        solver.add_clause([a, b]);
        solver.add_clause([!a, !b]);
        solver.add_clause([b, c]);
        solver.add_clause([!b, !c]);
        solver.add_clause([a]);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(1)), Some(false));
        assert_eq!(solver.model_value(Var::from_index(2)), Some(true));
    }

    #[test]
    fn model_satisfies_every_clause_on_random_instances() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..50 {
            let nvars = 8 + (next() % 8) as usize;
            let nclauses = 3 * nvars;
            let mut solver = solver_with_vars(nvars);
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let var = Var::from_index((next() as usize) % nvars);
                    clause.push(Lit::new(var, next() % 2 == 0));
                }
                clauses.push(clause.clone());
                solver.add_clause(clause);
            }
            if solver.solve(&[]) == SolveResult::Sat {
                for clause in &clauses {
                    assert!(
                        clause
                            .iter()
                            .any(|&l| solver.model_lit_value(l) == Some(true)),
                        "model violates clause {clauses:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_reflect_activity() {
        let (mut solver, _) = pigeonhole(5, 4);
        solver.solve(&[]);
        let stats = solver.stats();
        assert!(stats.conflicts > 0);
        assert!(stats.propagations > 0);
        assert_eq!(stats.solves, 1);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "unallocated variable")]
    fn rejects_foreign_literal() {
        let mut solver = solver_with_vars(1);
        solver.add_clause([Lit::positive(Var::from_index(5))]);
    }

    #[test]
    fn incremental_use_after_sat() {
        let mut solver = solver_with_vars(4);
        let lits: Vec<Lit> = (0..4).map(|i| pos(&solver, i)).collect();
        solver.add_clause([lits[0], lits[1]]);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        solver.add_clause([!lits[0]]);
        solver.add_clause([!lits[1], lits[2]]);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(1)), Some(true));
        assert_eq!(solver.model_value(Var::from_index(2)), Some(true));
        solver.add_clause([!lits[2], lits[3]]);
        assert_eq!(solver.solve(&[!lits[3]]), SolveResult::Unsat);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }
}
