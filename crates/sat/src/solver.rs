//! The CDCL search engine: a Glucose-class incremental solver.
//!
//! Beyond the classic MiniSat loop (two-watched literals, first-UIP
//! learning, VSIDS, phase saving), the solver keeps per-learnt-clause
//! LBD scores, reduces the clause database by LBD + activity (logging
//! `Delete` proof events so audited runs stay checkable), restarts
//! dynamically on fast/slow exponential moving averages of conflict
//! LBDs (with the Luby sequence as a forced backstop), minimizes learnt
//! clauses recursively, and — the incremental part — retains the
//! propagation trail of a shared assumption *prefix* across consecutive
//! [`Solver::solve`] calls, so a stream of queries that grow one path
//! condition at a time re-propagates only the new suffix.

use std::fmt;

use crate::proof::{Proof, ProofLog, ProofStep};
use crate::{Lit, Var};

const UNDEF: u8 = 2;

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with
    /// [`Solver::model_value`].
    Sat,
    /// The formula is unsatisfiable under the given assumptions.
    Unsat,
}

/// Cumulative search statistics, exposed for the benchmark harness.
///
/// # Reset semantics
///
/// Every counter except `learnt_clauses` is cumulative over the
/// solver's lifetime: it only grows, across [`Solver::solve`] calls,
/// clause additions, and restarts, and is never reset by any API. Two
/// snapshots therefore always satisfy `later.field >= earlier.field`
/// field by field. `learnt_clauses` is the exception: it is a *gauge*
/// of the learnt clauses currently live, computed at [`Solver::stats`]
/// time, and goes down when clause-database reduction deletes clauses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of `solve` calls.
    pub solves: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database (a gauge, not a
    /// counter — see the struct docs).
    pub learnt_clauses: u64,
    /// Clause-database reductions performed.
    pub db_reductions: u64,
    /// Learnt clauses that survived database reductions, summed over
    /// all reductions.
    pub learned_kept: u64,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solves={} decisions={} propagations={} conflicts={} restarts={} learnt={} \
             db_reductions={} learned_kept={}",
            self.solves,
            self.decisions,
            self.propagations,
            self.conflicts,
            self.restarts,
            self.learnt_clauses,
            self.db_reductions,
            self.learned_kept
        )
    }
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
    /// Literal block distance: the number of distinct decision levels in
    /// the clause when it was learnt. Low-LBD ("glue") clauses are the
    /// ones worth keeping (Audemard & Simon).
    lbd: u32,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: usize,
    blocker: Lit,
}

/// Smoothing factor of the fast conflict-LBD average (≈ last 32
/// conflicts).
const EMA_FAST_ALPHA: f64 = 1.0 / 32.0;
/// Smoothing factor of the slow conflict-LBD average (≈ the whole run).
const EMA_SLOW_ALPHA: f64 = 1.0 / 4096.0;
/// Restart when the fast average exceeds the slow one by this margin:
/// recent conflicts are producing markedly worse (higher-LBD) clauses
/// than the run as a whole, so the current search region is poor.
const RESTART_MARGIN: f64 = 1.25;
/// Minimum conflicts between dynamic restarts, which also rides out the
/// EMA warm-up.
const MIN_RESTART_CONFLICTS: u64 = 50;

/// Conflicts a single `solve` call tolerates in cursor-walk decision
/// mode (see `solve_under`) before falling back to the activity heap:
/// a query whose candidate model keeps conflicting is not a small
/// perturbation of the last one, and VSIDS should guide it.
const WALK_CONFLICT_BUDGET: u64 = 8;

/// `lit_redundant` DFS verdicts, memoised per conflict analysis.
const RED_REMOVABLE: u8 = 1;
const RED_POISON: u8 = 2;

/// A conflict-driven clause-learning SAT solver.
///
/// See the [crate documentation](crate) for an end-to-end example. Clauses
/// may be added at any time between `solve` calls; learnt clauses persist,
/// making repeated [`Solver::solve`] calls under different assumptions cheap
/// (this is how the symbolic engine checks path feasibility incrementally).
///
/// On top of learnt-clause persistence, consecutive `solve` calls that
/// share a leading run of assumptions reuse the propagation trail of
/// that shared prefix (see [`Solver::solve_under`]), so only the suffix
/// is re-propagated.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    assign: Vec<u8>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    var_decay: f64,
    cla_decay: f64,
    heap: Vec<Var>,
    heap_index: Vec<usize>,
    seen: Vec<bool>,
    model: Vec<u8>,
    core: Vec<Lit>,
    ok: bool,
    stats: SolverStats,
    proof: Option<Box<ProofLog>>,
    /// Generation counter shared by the stamped scratch arrays below.
    stamp: u64,
    /// Per-decision-level stamps (LBD computation, minimization level
    /// set). Grown on demand: levels can exceed the variable count when
    /// duplicate assumptions open empty levels.
    level_stamp: Vec<u64>,
    /// Per-variable memo of `lit_redundant` verdicts, valid while
    /// `red_gen[v] == stamp`.
    red_gen: Vec<u64>,
    red_val: Vec<u8>,
    /// Fast/slow exponential moving averages of learnt-clause LBD, for
    /// dynamic restarts. Seeded from the first conflict.
    ema_fast: f64,
    ema_slow: f64,
    ema_seeded: bool,
    /// The assumption list of the previous `solve` call, and how many of
    /// its leading decision levels are still established on the trail
    /// (non-zero only after a Sat answer). Together they let the next
    /// call keep the longest common assumption prefix instead of
    /// re-propagating from scratch.
    prev_assumptions: Vec<Lit>,
    assumption_levels: usize,
    /// Assumption levels the most recent `solve` call reused.
    reused_levels: usize,
    /// Whether `solve` may retain assumption prefixes at all (the
    /// benchmark off-switch; `solve_under` ignores it).
    reuse_enabled: bool,
    /// Learnt-DB size slack before a reduction triggers (on top of the
    /// problem-clause count). Tunable so tests can force reductions.
    reduce_base: usize,
    /// Per-variable occurrence lists over the *problem* clauses, for
    /// [model completion](Solver::try_model_completion): `occurs[v]`
    /// holds the indices of the non-learnt clauses containing variable
    /// `v` in either polarity.
    occurs: Vec<Vec<u32>>,
    /// How many leading entries of `clauses` are known satisfied by
    /// `model` — the completion watermark. Clauses past it were added
    /// after the model was last verified and must be (re)checked.
    verified_clauses: usize,
    /// Generation counter of the completion overlay below.
    mgen: u64,
    /// Candidate-model overlay: `mval[v]` overrides `model[v]` while
    /// `mval_stamp[v] == mgen`, so a failed completion attempt discards
    /// its tentative values for free.
    mval: Vec<u8>,
    mval_stamp: Vec<u64>,
    /// Scratch worklist of overlay variables (doubles as the commit
    /// list on success).
    mtouched: Vec<u32>,
}

const HEAP_ABSENT: usize = usize::MAX;

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            var_decay: 0.95,
            cla_decay: 0.999,
            heap: Vec::new(),
            heap_index: Vec::new(),
            seen: Vec::new(),
            model: Vec::new(),
            core: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            proof: None,
            stamp: 0,
            level_stamp: Vec::new(),
            red_gen: Vec::new(),
            red_val: Vec::new(),
            ema_fast: 0.0,
            ema_slow: 0.0,
            ema_seeded: false,
            prev_assumptions: Vec::new(),
            assumption_levels: 0,
            reused_levels: 0,
            reuse_enabled: true,
            reduce_base: 2000,
            occurs: Vec::new(),
            verified_clauses: 0,
            mgen: 0,
            mval: Vec::new(),
            mval_stamp: Vec::new(),
            mtouched: Vec::new(),
        }
    }

    /// Turns on clausal proof logging (see [`crate::proof`]).
    ///
    /// Zero-cost when never called: every logging site is a single
    /// `Option` check. Idempotent. Best enabled on a fresh solver; when
    /// enabled mid-stream, the clauses and top-level facts already
    /// present are snapshotted as axioms (taken on faith), so only
    /// derivations from this point on are checkable.
    pub fn enable_proof(&mut self) {
        if self.proof.is_some() {
            return;
        }
        let mut log = Box::new(ProofLog::default());
        for clause in self.clauses.iter().filter(|c| !c.deleted) {
            log.axiom(&clause.lits);
        }
        let boundary = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for &lit in &self.trail[..boundary] {
            log.axiom(&[lit]);
        }
        if !self.ok {
            log.steps.push(ProofStep::Axiom(Box::default()));
        }
        self.proof = Some(log);
    }

    /// Whether proof logging is on.
    pub fn proof_enabled(&self) -> bool {
        self.proof.is_some()
    }

    /// Drains the proof steps accumulated since the last call.
    ///
    /// Returns an empty proof when logging is off. Consecutive drains
    /// form consecutive segments of one logical proof, which is how the
    /// incremental audit applies them between solves.
    pub fn take_proof(&mut self) -> Proof {
        match &mut self.proof {
            Some(log) => Proof {
                steps: std::mem::take(&mut log.steps),
            },
            None => Proof::default(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var(self.assign.len() as u32);
        self.assign.push(UNDEF);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.red_gen.push(0);
        self.red_val.push(0);
        self.heap_index.push(HEAP_ABSENT);
        self.occurs.push(Vec::new());
        self.mval.push(UNDEF);
        self.mval_stamp.push(0);
        self.heap_insert(var);
        var
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Seeds the saved phase of `var` — the polarity it will be decided
    /// with, and the value [model completion](Solver::solve_under) uses
    /// for it while it is unassigned and not yet covered by a model.
    ///
    /// Clients that know a variable's intended semantics (e.g. a Tseitin
    /// gate output whose input values are already known) can seed it so
    /// a freshly encoded cone is consistent with the current candidate
    /// values, keeping the cheap completion path alive across encoding
    /// growth.
    /// Purely a heuristic hint: it never affects soundness or verdicts,
    /// only which model a satisfiable query settles on and how fast.
    ///
    /// # Panics
    ///
    /// Panics if `var` was not created by [`Solver::new_var`].
    pub fn set_phase(&mut self, var: Var, value: bool) {
        self.phase[var.index()] = value;
    }

    /// The value `lit` currently takes under the partial assignment,
    /// falling back to its variable's saved phase when unassigned.
    ///
    /// This is the candidate value [model
    /// completion](Solver::solve_under) would use for a variable no
    /// model covers yet; gate-output seeding via [`Solver::set_phase`]
    /// computes from these.
    pub fn phase_value(&self, lit: Lit) -> bool {
        match self.lit_value(lit) {
            Some(value) => value,
            None => self.phase[lit.var().index()] == lit.is_positive(),
        }
    }

    /// Number of problem (non-learnt) clauses added.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Search statistics accumulated so far (see [`SolverStats`] for
    /// which fields are cumulative counters and which are gauges).
    pub fn stats(&self) -> SolverStats {
        let mut stats = self.stats;
        stats.learnt_clauses = self
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted)
            .count() as u64;
        stats
    }

    /// Sets the VSIDS variable- and clause-activity decay factors, each
    /// in the open interval (0, 1). Smaller values focus the search
    /// harder on recent conflicts. Activity rescaling (against overflow)
    /// is unaffected.
    ///
    /// # Panics
    ///
    /// Panics when either factor is outside (0, 1).
    pub fn set_decay(&mut self, var_decay: f64, cla_decay: f64) {
        assert!(
            var_decay > 0.0 && var_decay < 1.0,
            "variable decay must be in (0, 1), got {var_decay}"
        );
        assert!(
            cla_decay > 0.0 && cla_decay < 1.0,
            "clause decay must be in (0, 1), got {cla_decay}"
        );
        self.var_decay = var_decay;
        self.cla_decay = cla_decay;
    }

    /// Sets the learnt-database slack before a reduction triggers: a
    /// reduction runs (at a restart) once the live learnt-clause count
    /// exceeds `base` plus the problem-clause count. The default is
    /// 2000; tests lower it to exercise reductions on small instances.
    pub fn set_reduce_db_base(&mut self, base: usize) {
        self.reduce_base = base;
    }

    /// Enables or disables assumption-prefix retention in
    /// [`Solver::solve`] (on by default). Disabling makes every solve
    /// start from decision level zero, the historical behaviour —
    /// answers are identical either way, which is what the differential
    /// fuzz suites pin down.
    pub fn set_assumption_reuse(&mut self, enabled: bool) {
        self.reuse_enabled = enabled;
    }

    /// Whether assumption-prefix retention is enabled.
    pub fn assumption_reuse(&self) -> bool {
        self.reuse_enabled
    }

    /// How many leading assumption decision levels the most recent
    /// [`Solver::solve`] call retained from its predecessor instead of
    /// re-propagating them.
    pub fn reused_assumption_levels(&self) -> usize {
        self.reused_levels
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Tautologies are dropped; literals already false at the top level are
    /// removed. Adding the empty clause (or a clause whose literals are all
    /// false at the top level) makes the formula permanently unsatisfiable.
    ///
    /// Returns `false` if the solver is already in an unsatisfiable state.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable not created by
    /// [`Solver::new_var`] on this solver.
    pub fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for lit in &lits {
            assert!(
                lit.var().index() < self.num_vars(),
                "literal {lit} references an unallocated variable"
            );
        }
        if !self.ok {
            return false;
        }
        lits.sort_unstable();
        lits.dedup();
        if let Some(log) = self.proof.as_mut() {
            log.axiom(&lits);
        }
        // Tautology: contains l and ¬l (adjacent after sorting).
        if lits.windows(2).any(|pair| pair[0] == !pair[1]) {
            return true;
        }
        // Simplify against *level-zero* assignments only: those are the
        // permanent facts. Assignments on a retained assumption trail
        // (see `solve_under`) hold merely until the next backtrack, so
        // they must not leak into clause contents.
        let mut simplified = Vec::with_capacity(lits.len());
        for lit in lits {
            match self.lit_value(lit) {
                Some(value) if self.level[lit.var().index()] == 0 => {
                    if value {
                        return true; // already satisfied at top level
                    }
                    // drop falsified literal
                }
                _ => simplified.push(lit),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                if let Some(log) = self.proof.as_mut() {
                    log.derive_unhinted(&[]);
                }
                false
            }
            1 => {
                // A new top-level fact: assert it at level zero, giving
                // up any retained assumption trail.
                self.cancel_until(0);
                self.assumption_levels = 0;
                debug_assert!(self.lit_value(simplified[0]).is_none());
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    if let Some(log) = self.proof.as_mut() {
                        log.derive_unhinted(&[]);
                    }
                }
                self.ok
            }
            _ => {
                // Attach without disturbing a retained assumption trail
                // when possible: the watch invariant needs two non-false
                // literals in the watch slots, and a clause that is unit
                // or conflicting under the current partial assignment
                // must not be attached silently (its due propagation
                // would be missed). Both conditions hold exactly when
                // two non-false literals exist.
                let mut nonfalse = 0;
                for i in 0..simplified.len() {
                    if self.lit_value(simplified[i]) != Some(false) {
                        simplified.swap(nonfalse, i);
                        nonfalse += 1;
                        if nonfalse == 2 {
                            break;
                        }
                    }
                }
                if nonfalse < 2 {
                    // Unit or conflicting under the retained trail:
                    // retreat to the top level, where (after the level-0
                    // simplification above) every literal is unassigned.
                    self.cancel_until(0);
                    self.assumption_levels = 0;
                }
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    /// Solves under the given assumptions.
    ///
    /// Assumptions are literals forced true for this call only. After
    /// [`SolveResult::Sat`], the model is available via
    /// [`Solver::model_value`] until mutated again.
    ///
    /// When assumption reuse is on (the default, see
    /// [`Solver::set_assumption_reuse`]), the call retains the
    /// propagation trail of the longest assumption prefix shared with
    /// the previous call — see [`Solver::solve_under`], to which this
    /// delegates.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        let max_prefix = if self.reuse_enabled { usize::MAX } else { 0 };
        self.solve_under(assumptions, max_prefix)
    }

    /// Solves under `assumptions`, retaining at most `max_prefix`
    /// leading assumption decision levels from the previous call.
    ///
    /// This is the incremental entry point: consecutive calls whose
    /// assumption lists share a leading run (as feasibility queries
    /// along one symbolic path do — each query appends the new branch
    /// condition) skip re-propagating the shared prefix entirely. The
    /// retained trail levels were established from literally equal
    /// assumption literals, so everything on them is still implied;
    /// clause additions between calls invalidate retention themselves
    /// (see [`Solver::add_clause`]). Retention never changes an answer
    /// — only which model a Sat answer happens to find — because
    /// conflicts are detected by the watch lists, which backtracking
    /// does not touch.
    ///
    /// `max_prefix = 0` forces the historical from-scratch behaviour;
    /// [`Solver::solve`] passes `usize::MAX` (or 0 when reuse is
    /// disabled). The number of levels actually reused is reported by
    /// [`Solver::reused_assumption_levels`].
    pub fn solve_under(&mut self, assumptions: &[Lit], max_prefix: usize) -> SolveResult {
        self.stats.solves += 1;
        self.core.clear();
        self.reused_levels = 0;
        if !self.ok {
            return SolveResult::Unsat;
        }

        // Longest still-established assumption prefix shared with the
        // previous call.
        let bound = max_prefix
            .min(self.assumption_levels)
            .min(assumptions.len())
            .min(self.decision_level());
        let mut reuse = 0;
        while reuse < bound && self.prev_assumptions[reuse] == assumptions[reuse] {
            reuse += 1;
        }
        self.cancel_until(reuse);
        self.reused_levels = reuse;
        // Invalidated until this call ends with the prefix re-established.
        self.assumption_levels = 0;
        self.prev_assumptions.clear();
        self.prev_assumptions.extend_from_slice(assumptions);

        let mut restart_budget = self.restart_budget();
        let mut conflicts_since_restart = 0u64;
        let mut completion_tried = false;
        let mut walk_cursor = 0usize;
        let mut solve_conflicts = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                solve_conflicts += 1;
                walk_cursor = 0;
                if self.decision_level() == 0 {
                    self.ok = false;
                    if let Some(log) = self.proof.as_mut() {
                        log.derive_unhinted(&[]);
                    }
                    return SolveResult::Unsat;
                }
                let (learnt, backjump, lbd) = self.analyze(confl);
                self.note_learnt_lbd(lbd);
                // A conflict forcing us below the assumption prefix means
                // the assumptions themselves are inconsistent with the
                // formula once the asserting literal contradicts one.
                self.cancel_until(backjump);
                if let Some(log) = self.proof.as_mut() {
                    // Consumes the antecedent hints `analyze` collected.
                    log.derive(&learnt);
                }
                match learnt.len() {
                    0 => {
                        self.ok = false;
                        return SolveResult::Unsat;
                    }
                    1 => {
                        if self.lit_value(learnt[0]) == Some(false) {
                            self.ok = false;
                            if let Some(log) = self.proof.as_mut() {
                                log.derive_unhinted(&[]);
                            }
                            return SolveResult::Unsat;
                        }
                        if self.lit_value(learnt[0]).is_none() {
                            self.unchecked_enqueue(learnt[0], None);
                        }
                    }
                    _ => {
                        let asserting = learnt[0];
                        let cref = self.attach_clause(learnt, true);
                        self.clauses[cref].lbd = lbd;
                        self.bump_clause(cref);
                        self.unchecked_enqueue(asserting, Some(cref));
                    }
                }
                self.decay_activities();
                // The conflict taught the search something the failed
                // completion attempt did not know; once it is propagated
                // to a fixpoint, completion deserves another try.
                completion_tried = false;
            } else {
                // Restart when the Luby budget runs out (forced backstop)
                // or when recent conflicts yield markedly worse clauses
                // than the run average (Glucose's dynamic policy).
                let forced = conflicts_since_restart >= restart_budget;
                let drifting = conflicts_since_restart >= MIN_RESTART_CONFLICTS
                    && self.ema_fast > RESTART_MARGIN * self.ema_slow;
                if forced || drifting {
                    self.stats.restarts += 1;
                    restart_budget = self.restart_budget();
                    conflicts_since_restart = 0;
                    walk_cursor = 0;
                    // Re-anchor the fast average so one bad stretch does
                    // not cause a burst of back-to-back restarts.
                    self.ema_fast = self.ema_slow;
                    self.cancel_until(0);
                    self.maybe_reduce_db();
                    continue;
                }
                // Establish assumptions, one decision level each.
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        Some(true) => {
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        Some(false) => {
                            // The formula (plus earlier assumptions) implies ¬p.
                            self.analyze_final(p);
                            self.cancel_until(0);
                            self.minimize_core();
                            self.restore_model_phases();
                            return SolveResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                            continue;
                        }
                    }
                }
                // All assumptions are established and propagation is at a
                // fixpoint: before paying for a search that assigns every
                // variable in the (shared, ever-growing) clause database,
                // try to patch the last verified model with the trail
                // values. For the query streams symbolic execution
                // produces — each query a small perturbation of an
                // earlier one — re-checking just the clauses around the
                // changed variables usually certifies a model outright,
                // at a cost proportional to the change, not the database.
                // The attempt is re-armed after every conflict: a few
                // decisions and learnt clauses repair the region the
                // completion wedged on, and the next attempt snaps the
                // rest of the model into place without the search ever
                // assigning the full variable set.
                if !completion_tried && self.decision_level() >= assumptions.len() {
                    completion_tried = true;
                    if self.try_model_completion() {
                        self.cancel_until(assumptions.len());
                        self.assumption_levels = self.decision_level();
                        return SolveResult::Sat;
                    }
                }
                // After a failed completion attempt the saved phases point
                // at the candidate model, so decision *order* carries no
                // information — any conflict-free extension lands on the
                // same total assignment. Walk the variables by index with
                // a cursor instead of popping the activity heap: the
                // variables stay in the heap (so a later backtrack has
                // nothing to reinsert), and a conflict falls back into
                // regular conflict analysis, re-arms completion, and
                // resets the walk. A query that keeps conflicting is not
                // the near-model perturbation this mode bets on, so past
                // a small conflict budget decisions revert to VSIDS.
                let walking = completion_tried
                    && solve_conflicts < WALK_CONFLICT_BUDGET
                    && self.decision_level() >= assumptions.len();
                let next_var = if walking {
                    loop {
                        if walk_cursor >= self.num_vars() {
                            break None;
                        }
                        let var = Var(walk_cursor as u32);
                        if self.var_value(var).is_none() {
                            break Some(var);
                        }
                        walk_cursor += 1;
                    }
                } else {
                    self.pick_branch_var()
                };
                match next_var {
                    None => {
                        // All variables assigned: model found. Keep the
                        // assumption levels established for the next call
                        // (levels 1..=n correspond 1:1 to the assumption
                        // list); drop only the search decisions above.
                        self.model = self.assign.clone();
                        self.verified_clauses = self.clauses.len();
                        self.cancel_until(assumptions.len());
                        self.assumption_levels = self.decision_level();
                        return SolveResult::Sat;
                    }
                    Some(var) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(var, self.phase[var.index()]);
                        self.unchecked_enqueue(lit, None);
                    }
                }
            }
        }
    }

    /// The value of `var` in the most recent satisfying assignment.
    ///
    /// `None` if no model is available or the variable was created after
    /// the last successful solve.
    pub fn model_value(&self, var: Var) -> Option<bool> {
        match self.model.get(var.index()) {
            Some(&0) => Some(false),
            Some(&1) => Some(true),
            _ => None,
        }
    }

    /// The value of `lit` in the most recent satisfying assignment.
    pub fn model_lit_value(&self, lit: Lit) -> Option<bool> {
        self.model_value(lit.var()).map(|v| v == lit.is_positive())
    }

    /// The subset of the last [`Solver::solve`] call's assumptions proven
    /// jointly unsatisfiable with the formula — the *assumption core*,
    /// recovered by final conflict analysis over the assumption trail
    /// (MiniSat's `analyzeFinal`).
    ///
    /// Empty after a [`SolveResult::Sat`] answer, and also when the
    /// unsatisfiability does not depend on the assumptions at all (the
    /// formula itself is inconsistent). A non-empty core is a genuine
    /// certificate: any superset of its literals is again unsatisfiable,
    /// which is what makes cores usable as counterexample-cache keys.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn restart_budget(&self) -> u64 {
        100 * luby(self.stats.restarts + 1)
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    #[inline]
    fn var_value(&self, var: Var) -> Option<bool> {
        match self.assign[var.index()] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    #[inline]
    fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.var_value(lit.var()).map(|v| v == lit.is_positive())
    }

    /// Re-seeds the saved phases of every variable covered by the last
    /// model with its model value.
    ///
    /// Called on assumption-refuted Unsat exits: the conflict-driven
    /// establishment loop scrambles saved phases with values from failed
    /// search branches, which would otherwise steer the next (typically
    /// satisfiable, typically near the last model) query's search
    /// decisions away from the model it is perturbing. Variables created
    /// after the last model keep their current phases — for blasted gate
    /// variables those are the semantically seeded values (see
    /// [`Solver::set_phase`]).
    fn restore_model_phases(&mut self) {
        for (var, &value) in self.model.iter().enumerate() {
            match value {
                0 => self.phase[var] = false,
                1 => self.phase[var] = true,
                _ => {}
            }
        }
    }

    /// Tries to extend the current (assumption-complete, propagated)
    /// partial assignment to a full model by *incremental maintenance*
    /// of the last verified model, without touching the trail.
    ///
    /// The candidate assignment is the last model with the trail values
    /// overlaid (plus saved phases for variables created since). Every
    /// clause the last model satisfied and the overlay does not touch
    /// is still satisfied, so only two clause sets need checking: the
    /// clauses added since the model was verified (the
    /// `verified_clauses` watermark), and — via the per-variable
    /// occurrence lists — the clauses containing a *changed* variable.
    ///
    /// Repair is forced-first, mirroring unit propagation: an
    /// unsatisfied clause with exactly one repair candidate (an
    /// unassigned variable not yet fixed this attempt) flips it
    /// immediately, while a clause with several candidates is deferred.
    /// Only when no forced repair remains is a deferred clause decided —
    /// by flipping its newest candidate, which for Tseitin clauses is
    /// the gate output, so the decision recomputes a stale gate from its
    /// inputs. Every flipped variable joins the worklist so its own
    /// occurrences are re-checked in turn. Each variable is fixed at
    /// most once per attempt, so the repair terminates and its cost is
    /// proportional to the *change cone* of the query, not the clause
    /// database.
    ///
    /// On success the overlay is committed to [`Solver::model`] — the
    /// answer is a directly verified model no matter how the candidate
    /// values got there. On failure the overlay is discarded (it lives
    /// behind a generation stamp) and the regular CDCL search runs.
    /// Learnt clauses are never checked: each is a RUP consequence of
    /// the problem clauses, so a total assignment satisfying the latter
    /// satisfies them too.
    fn try_model_completion(&mut self) -> bool {
        if !self.complete_model() {
            // Leave the search a map of where this attempt got to: point
            // the saved phases at the candidate model (last model plus
            // the partial repairs), so the fallback's decisions walk
            // straight toward it and conflict only where the candidate
            // is genuinely inconsistent — which is exactly what the
            // post-conflict completion retry needs repaired.
            self.restore_model_phases();
            for i in 0..self.mtouched.len() {
                let v = self.mtouched[i] as usize;
                self.phase[v] = self.mval[v] == 1;
            }
            return false;
        }
        true
    }

    fn complete_model(&mut self) -> bool {
        self.mgen += 1;
        let mgen = self.mgen;
        let num_vars = self.num_vars();
        {
            let clauses = &self.clauses;
            let occurs = &self.occurs;
            let model = &self.model;
            let phase = &self.phase;
            let assign = &self.assign;
            let mval = &mut self.mval;
            let mstamp = &mut self.mval_stamp;
            let touched = &mut self.mtouched;
            touched.clear();
            let mut deferred: Vec<u32> = Vec::new();

            // Seed the overlay with the trail values that differ from
            // the last model (including everything the model predates).
            for &lit in &self.trail {
                let v = lit.var().index();
                let value = lit.is_positive() as u8;
                if model.get(v).copied() != Some(value) {
                    mval[v] = value;
                    mstamp[v] = mgen;
                    touched.push(v as u32);
                }
            }

            // Checks one clause under the candidate assignment. `None`
            // means satisfied; `Some(candidates)` returns the repair
            // candidates found (capped at two — the caller only
            // distinguishes zero, one, or several).
            let inspect = |cref: usize,
                           mval: &[u8],
                           mstamp: &[u64],
                           candidates: &mut [Lit; 2]|
             -> Option<usize> {
                let clause = &clauses[cref];
                if clause.learnt || clause.deleted {
                    return None;
                }
                let mut found = 0usize;
                for &lit in &clause.lits {
                    let v = lit.var().index();
                    let value = if mstamp[v] == mgen {
                        mval[v] == 1
                    } else if assign[v] != UNDEF {
                        assign[v] == 1
                    } else if let Some(&m) = model.get(v) {
                        m == 1
                    } else {
                        phase[v]
                    };
                    if value == lit.is_positive() {
                        return None;
                    }
                    if assign[v] == UNDEF && mstamp[v] != mgen {
                        // Keep the newest candidate first: for Tseitin
                        // clauses the newest variable is the gate output.
                        if found == 0 || v > candidates[0].var().index() {
                            candidates[1] = candidates[0];
                            candidates[0] = lit;
                        } else {
                            candidates[1] = lit;
                        }
                        found = (found + 1).min(2);
                    }
                }
                Some(found)
            };

            let flip = |lit: Lit, mval: &mut [u8], mstamp: &mut [u64], touched: &mut Vec<u32>| {
                let v = lit.var().index();
                mval[v] = lit.is_positive() as u8;
                mstamp[v] = mgen;
                touched.push(v as u32);
            };

            // Clauses added since the model was last verified.
            let mut candidates = [Lit::positive(Var(0)); 2];
            for cref in self.verified_clauses..clauses.len() {
                match inspect(cref, mval, mstamp, &mut candidates) {
                    None => {}
                    Some(0) => return false,
                    Some(1) => flip(candidates[0], mval, mstamp, touched),
                    Some(_) => deferred.push(cref as u32),
                }
            }
            // Drain forced repairs first (the worklist: every flipped
            // variable gets its occurrence list re-checked); only at a
            // fixpoint decide one deferred clause, then re-drain. By
            // decision time most deferred clauses have become satisfied
            // or forced, so few decisions — the error-prone part — are
            // ever taken.
            let mut next = 0;
            loop {
                while next < touched.len() {
                    let v = touched[next] as usize;
                    next += 1;
                    for &cref in &occurs[v] {
                        match inspect(cref as usize, mval, mstamp, &mut candidates) {
                            None => {}
                            Some(0) => return false,
                            Some(1) => flip(candidates[0], mval, mstamp, touched),
                            Some(_) => deferred.push(cref),
                        }
                    }
                }
                match deferred.pop() {
                    None => break,
                    Some(cref) => match inspect(cref as usize, mval, mstamp, &mut candidates) {
                        None => {}
                        Some(0) => return false,
                        Some(_) => flip(candidates[0], mval, mstamp, touched),
                    },
                }
            }
        }

        // Verified: commit the overlay as the new model.
        for v in self.model.len()..num_vars {
            self.model.push(match self.assign[v] {
                UNDEF => self.phase[v] as u8,
                value => value,
            });
        }
        for &v in &self.mtouched {
            self.model[v as usize] = self.mval[v as usize];
        }
        self.verified_clauses = self.clauses.len();
        true
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> usize {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        self.watches[(!lits[0]).code()].push(Watch {
            cref,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watch {
            cref,
            blocker: lits[0],
        });
        if !learnt {
            // Model completion only ever re-checks problem clauses;
            // learnt clauses are RUP consequences of them, so any total
            // assignment satisfying the problem clauses satisfies the
            // learnt ones too.
            for &lit in &lits {
                self.occurs[lit.var().index()].push(cref as u32);
            }
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd: 0,
        });
        cref
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<usize>) {
        debug_assert!(self.lit_value(lit).is_none());
        let var = lit.var();
        self.assign[var.index()] = lit.is_positive() as u8;
        self.level[var.index()] = self.decision_level() as u32;
        self.reason[var.index()] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < ws.len() {
                let watch = ws[i];
                if self.lit_value(watch.blocker) == Some(true) {
                    i += 1;
                    continue;
                }
                let cref = watch.cref;
                if self.clauses[cref].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Ensure the falsified literal ¬p sits at index 1.
                let false_lit = !p;
                {
                    let lits = &mut self.clauses[cref].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                    debug_assert_eq!(lits[1], false_lit);
                }
                let first = self.clauses[cref].lits[0];
                if first != watch.blocker && self.lit_value(first) == Some(true) {
                    ws[i] = Watch {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Search for a replacement watch.
                let mut moved = false;
                for k in 2..self.clauses[cref].lits.len() {
                    let lit = self.clauses[cref].lits[k];
                    if self.lit_value(lit) != Some(false) {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!lit).code()].push(Watch {
                            cref,
                            blocker: first,
                        });
                        moved = true;
                        break;
                    }
                }
                if moved {
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == Some(false) {
                    self.watches[p.code()] = ws;
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
                self.unchecked_enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[p.code()] = ws;
        }
        None
    }

    /// First-UIP conflict analysis with recursive clause minimization.
    /// Returns the learnt clause (asserting literal first), the backjump
    /// level, and the clause's LBD.
    fn analyze(&mut self, confl: usize) -> (Vec<Lit>, usize, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cref = confl;
        let current_level = self.decision_level() as u32;

        loop {
            self.bump_clause(cref);
            if let Some(log) = self.proof.as_mut() {
                log.hint(&self.clauses[cref].lits);
            }
            let start = usize::from(p.is_some());
            let clause_lits: Vec<Lit> = self.clauses[cref].lits[start..].to_vec();
            for q in clause_lits {
                let var = q.var();
                if !self.seen[var.index()] && self.level[var.index()] > 0 {
                    self.seen[var.index()] = true;
                    self.bump_var(var);
                    if self.level[var.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next trail literal contributing to the conflict.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            p = Some(lit);
            cref = self.reason[lit.var().index()].expect("non-decision literal has a reason");
        }

        let asserting = !p.expect("conflict at level > 0 has a UIP");
        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(asserting);
        clause.extend(learnt.iter().copied());

        // Recursive minimization; also clears the remaining seen flags.
        self.minimize_learnt(&mut clause);
        let lbd = self.compute_lbd(&clause);

        // Backjump level: highest level among the non-asserting literals.
        let mut backjump = 0usize;
        if clause.len() > 1 {
            let mut max_i = 1;
            for i in 2..clause.len() {
                if self.level[clause[i].var().index()] > self.level[clause[max_i].var().index()] {
                    max_i = i;
                }
            }
            clause.swap(1, max_i);
            backjump = self.level[clause[1].var().index()] as usize;
        }
        (clause, backjump, lbd)
    }

    /// Drops every literal of the learnt clause (except the asserting
    /// one at index 0) whose negation is implied by the *rest* of the
    /// clause through reason chains — MiniSat's recursive `ccmin`. The
    /// shrunk clause is still a consequence by reverse unit propagation,
    /// so proof checking is unaffected (the checker re-propagates in
    /// full; antecedent hints are advisory).
    ///
    /// Expects `seen` to be set for exactly the clause's literals and
    /// clears all of them before returning.
    fn minimize_learnt(&mut self, clause: &mut Vec<Lit>) {
        if clause.len() <= 1 {
            for &lit in clause.iter() {
                self.seen[lit.var().index()] = false;
            }
            return;
        }
        // Stamp the decision levels present in the clause: a reason
        // chain that leaves this level set can never ground out in
        // clause literals, which prunes the DFS early.
        self.stamp += 1;
        for &lit in clause.iter() {
            let lvl = self.level[lit.var().index()] as usize;
            self.stamp_level(lvl);
        }
        let mut kept = Vec::with_capacity(clause.len());
        kept.push(clause[0]);
        for &lit in clause.iter().skip(1) {
            if self.reason[lit.var().index()].is_none() || !self.lit_redundant(lit) {
                kept.push(lit);
            }
        }
        for &lit in clause.iter() {
            self.seen[lit.var().index()] = false;
        }
        *clause = kept;
    }

    /// Whether the (falsified) clause literal `lit` is redundant: the
    /// reason chain of its variable grounds out entirely in other clause
    /// literals (`seen`) and level-0 facts. Iterative DFS with a
    /// per-analysis memo (`red_gen`/`red_val`), the explicit-stack form
    /// of MiniSat's `litRedundant`.
    fn lit_redundant(&mut self, lit: Lit) -> bool {
        match self.red_mark(lit.var().index()) {
            RED_REMOVABLE => return true,
            RED_POISON => return false,
            _ => {}
        }
        // Each frame: (variable under test, next antecedent index in its
        // reason clause — index 0 is the implied literal itself).
        let mut stack: Vec<(usize, usize)> = vec![(lit.var().index(), 1)];
        while let Some((var, idx)) = stack.pop() {
            let cref = self.reason[var].expect("stacked variables have reasons");
            let len = self.clauses[cref].lits.len();
            let mut i = idx;
            let mut descended = false;
            while i < len {
                let q = self.clauses[cref].lits[i];
                let qvar = q.var().index();
                let qlvl = self.level[qvar] as usize;
                i += 1;
                if qlvl == 0 || self.seen[qvar] || self.red_mark(qvar) == RED_REMOVABLE {
                    continue; // grounded
                }
                if self.reason[qvar].is_none()
                    || !self.level_stamped(qlvl)
                    || self.red_mark(qvar) == RED_POISON
                {
                    // `q` can never ground out; everything on the DFS
                    // path depends on it, so poison the lot.
                    self.set_red_mark(var, RED_POISON);
                    for &(pvar, _) in &stack {
                        self.set_red_mark(pvar, RED_POISON);
                    }
                    return false;
                }
                stack.push((var, i));
                stack.push((qvar, 1));
                descended = true;
                break;
            }
            if !descended {
                self.set_red_mark(var, RED_REMOVABLE);
            }
        }
        true
    }

    #[inline]
    fn red_mark(&self, var: usize) -> u8 {
        if self.red_gen[var] == self.stamp {
            self.red_val[var]
        } else {
            0
        }
    }

    #[inline]
    fn set_red_mark(&mut self, var: usize, mark: u8) {
        self.red_gen[var] = self.stamp;
        self.red_val[var] = mark;
    }

    #[inline]
    fn stamp_level(&mut self, lvl: usize) {
        if lvl >= self.level_stamp.len() {
            self.level_stamp.resize(lvl + 1, 0);
        }
        self.level_stamp[lvl] = self.stamp;
    }

    #[inline]
    fn level_stamped(&self, lvl: usize) -> bool {
        self.level_stamp.get(lvl) == Some(&self.stamp)
    }

    /// Literal block distance: the number of distinct non-zero decision
    /// levels among the clause's literals.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.stamp += 1;
        let mut lbd = 0;
        for &lit in lits {
            let lvl = self.level[lit.var().index()] as usize;
            if lvl > 0 && !self.level_stamped(lvl) {
                self.stamp_level(lvl);
                lbd += 1;
            }
        }
        lbd
    }

    /// Feeds a learnt clause's LBD into the fast/slow restart averages.
    fn note_learnt_lbd(&mut self, lbd: u32) {
        let x = f64::from(lbd);
        if self.ema_seeded {
            self.ema_fast += EMA_FAST_ALPHA * (x - self.ema_fast);
            self.ema_slow += EMA_SLOW_ALPHA * (x - self.ema_slow);
        } else {
            self.ema_seeded = true;
            self.ema_fast = x;
            self.ema_slow = x;
        }
    }

    /// Final conflict analysis: `p` is an assumption found already false
    /// while establishing the assumption prefix. Walks the implication
    /// trail backwards from ¬p, collecting the assumption decisions that
    /// participated in forcing it; the resulting [`Solver::unsat_core`]
    /// is `{p} ∪ {those assumptions}`. At this point every decision on the
    /// trail *is* an assumption (search decisions only start once the whole
    /// prefix is established), so `reason == None` identifies them.
    fn analyze_final(&mut self, p: Lit) {
        self.core.clear();
        self.core.push(p);
        if self.level[p.var().index()] == 0 {
            // ¬p is a top-level fact: p alone contradicts the formula.
            return;
        }
        self.seen[p.var().index()] = true;
        let bottom = self.trail_lim[0];
        for i in (bottom..self.trail.len()).rev() {
            let lit = self.trail[i];
            let var = lit.var();
            if !self.seen[var.index()] {
                continue;
            }
            match self.reason[var.index()] {
                None => self.core.push(lit),
                Some(cref) => {
                    let antecedents: Vec<Lit> = self.clauses[cref].lits[1..].to_vec();
                    for q in antecedents {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[var.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    /// Greedy minimization of [`Solver::core`], in canonical (sorted)
    /// literal order: a literal is dropped when unit propagation refutes
    /// the remaining core without it. Sorting first makes the result —
    /// content *and* order — independent of the assumption ordering that
    /// produced the raw `analyze_final` core, so cores are usable as
    /// deterministic cache keys.
    fn minimize_core(&mut self) {
        self.core.sort_unstable();
        self.core.dedup();
        if self.core.len() <= 1 {
            return;
        }
        let mut i = 0;
        while i < self.core.len() {
            let mut candidate = std::mem::take(&mut self.core);
            let removed = candidate.remove(i);
            if self.propagation_refutes(&candidate) {
                self.core = candidate;
            } else {
                candidate.insert(i, removed);
                self.core = candidate;
                i += 1;
            }
        }
    }

    /// Whether asserting `lits` leads to a conflict by unit propagation
    /// alone. Leaves the solver back at decision level zero; never
    /// learns clauses.
    fn propagation_refutes(&mut self, lits: &[Lit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let mut refuted = false;
        for &lit in lits {
            match self.lit_value(lit) {
                Some(false) => {
                    refuted = true;
                    break;
                }
                Some(true) => {}
                None => {
                    self.trail_lim.push(self.trail.len());
                    self.unchecked_enqueue(lit, None);
                    if self.propagate().is_some() {
                        refuted = true;
                        break;
                    }
                }
            }
        }
        self.cancel_until(0);
        refuted
    }

    fn cancel_until(&mut self, target_level: usize) {
        if self.decision_level() <= target_level {
            return;
        }
        let boundary = self.trail_lim[target_level];
        for i in (boundary..self.trail.len()).rev() {
            let lit = self.trail[i];
            let var = lit.var();
            self.phase[var.index()] = lit.is_positive();
            self.assign[var.index()] = UNDEF;
            self.reason[var.index()] = None;
            if self.heap_index[var.index()] == HEAP_ABSENT {
                self.heap_insert(var);
            }
        }
        self.trail.truncate(boundary);
        self.trail_lim.truncate(target_level);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(var) = self.heap_pop() {
            if self.var_value(var).is_none() {
                return Some(var);
            }
        }
        None
    }

    fn bump_var(&mut self, var: Var) {
        self.activity[var.index()] += self.var_inc;
        if self.activity[var.index()] > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.heap_index[var.index()] != HEAP_ABSENT {
            self.heap_sift_up(self.heap_index[var.index()]);
        }
    }

    fn bump_clause(&mut self, cref: usize) {
        if !self.clauses[cref].learnt {
            return;
        }
        self.clauses[cref].activity += self.cla_inc;
        if self.clauses[cref].activity > 1e20 {
            for clause in &mut self.clauses {
                clause.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.var_decay;
        self.cla_inc /= self.cla_decay;
    }

    /// Deletes the worst half of the learnt database when it grows past
    /// the threshold, ranking by LBD first and activity second. Glue
    /// clauses (LBD ≤ 2), binary clauses, and clauses currently acting
    /// as a reason are kept unconditionally. Runs only at decision level
    /// zero; every deletion is mirrored into the proof log so audited
    /// runs remain checkable.
    fn maybe_reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let live: Vec<usize> = (0..self.clauses.len())
            .filter(|&c| self.clauses[c].learnt && !self.clauses[c].deleted)
            .collect();
        if live.len() <= self.reduce_base + self.num_clauses() {
            return;
        }
        let mut locked = vec![false; self.clauses.len()];
        for cref in self.reason.iter().flatten() {
            locked[*cref] = true;
        }
        let mut candidates: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&c| self.clauses[c].lbd > 2 && self.clauses[c].lits.len() > 2 && !locked[c])
            .collect();
        // Worst first: highest LBD, then lowest activity, then oldest.
        candidates.sort_by(|&a, &b| {
            self.clauses[b]
                .lbd
                .cmp(&self.clauses[a].lbd)
                .then(
                    self.clauses[a]
                        .activity
                        .partial_cmp(&self.clauses[b].activity)
                        .expect("activities are finite"),
                )
                .then(a.cmp(&b))
        });
        let drop_count = (live.len() / 2).min(candidates.len());
        if drop_count == 0 {
            return;
        }
        for &cref in &candidates[..drop_count] {
            self.clauses[cref].deleted = true;
        }
        if let Some(log) = self.proof.as_mut() {
            for &cref in &candidates[..drop_count] {
                log.delete(&self.clauses[cref].lits);
            }
        }
        self.stats.db_reductions += 1;
        self.stats.learned_kept += (live.len() - drop_count) as u64;
        // Rebuild watches from scratch, dropping deleted clauses.
        for list in &mut self.watches {
            list.clear();
        }
        for cref in 0..self.clauses.len() {
            if self.clauses[cref].deleted {
                continue;
            }
            let (l0, l1) = (self.clauses[cref].lits[0], self.clauses[cref].lits[1]);
            self.watches[(!l0).code()].push(Watch { cref, blocker: l1 });
            self.watches[(!l1).code()].push(Watch { cref, blocker: l0 });
        }
    }

    // Indexed binary max-heap ordered by variable activity.

    fn heap_insert(&mut self, var: Var) {
        debug_assert_eq!(self.heap_index[var.index()], HEAP_ABSENT);
        self.heap.push(var);
        self.heap_index[var.index()] = self.heap.len() - 1;
        self.heap_sift_up(self.heap.len() - 1);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.heap_index[top.index()] = HEAP_ABSENT;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.heap_index[last.index()] = 0;
            self.heap_sift_down(0);
        }
        Some(top)
    }

    fn heap_sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.activity[self.heap[pos].index()] <= self.activity[self.heap[parent].index()] {
                break;
            }
            self.heap_swap(pos, parent);
            pos = parent;
        }
    }

    fn heap_sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            let right = 2 * pos + 2;
            let mut best = pos;
            if left < self.heap.len()
                && self.activity[self.heap[left].index()] > self.activity[self.heap[best].index()]
            {
                best = left;
            }
            if right < self.heap.len()
                && self.activity[self.heap[right].index()] > self.activity[self.heap[best].index()]
            {
                best = right;
            }
            if best == pos {
                break;
            }
            self.heap_swap(pos, best);
            pos = best;
        }
    }

    fn heap_swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.heap_index[self.heap[a].index()] = a;
        self.heap_index[self.heap[b].index()] = b;
    }
}

/// The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
fn luby(mut i: u64) -> u64 {
    loop {
        if (i + 1).is_power_of_two() {
            return i.div_ceil(2);
        }
        // Strip the longest complete prefix of length 2^k − 1.
        let k = 63 - (i + 1).leading_zeros() as u64;
        i -= (1u64 << k) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(solver: &Solver, i: usize) -> Lit {
        let _ = solver;
        Lit::positive(Var::from_index(i))
    }

    fn solver_with_vars(n: usize) -> Solver {
        let mut solver = Solver::new();
        for _ in 0..n {
            solver.new_var();
        }
        solver
    }

    #[test]
    fn luby_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &want) in expected.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), want, "luby({})", i + 1);
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut solver = Solver::new();
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut solver = solver_with_vars(3);
        let (a, b, c) = (pos(&solver, 0), pos(&solver, 1), pos(&solver, 2));
        solver.add_clause([a]);
        solver.add_clause([!a, b]);
        solver.add_clause([!b, c]);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(0)), Some(true));
        assert_eq!(solver.model_value(Var::from_index(1)), Some(true));
        assert_eq!(solver.model_value(Var::from_index(2)), Some(true));
    }

    #[test]
    fn direct_contradiction_is_unsat() {
        let mut solver = solver_with_vars(1);
        let a = pos(&solver, 0);
        solver.add_clause([a]);
        assert!(!solver.add_clause([!a]));
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut solver = solver_with_vars(1);
        assert!(!solver.add_clause([]));
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut solver = solver_with_vars(2);
        let (a, b) = (pos(&solver, 0), pos(&solver, 1));
        assert!(solver.add_clause([a, !a]));
        assert!(solver.add_clause([b, !b, a]));
        assert_eq!(solver.num_clauses(), 0);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn assumptions_restrict_but_do_not_persist() {
        let mut solver = solver_with_vars(2);
        let (a, b) = (pos(&solver, 0), pos(&solver, 1));
        solver.add_clause([a, b]);
        assert_eq!(solver.solve(&[!a]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(1)), Some(true));
        assert_eq!(solver.solve(&[!a, !b]), SolveResult::Unsat);
        // The failed assumption query must not poison later queries.
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.solve(&[!b]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(0)), Some(true));
    }

    #[test]
    fn contradictory_assumptions_are_unsat() {
        let mut solver = solver_with_vars(1);
        let a = pos(&solver, 0);
        assert_eq!(solver.solve(&[a, !a]), SolveResult::Unsat);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn unsat_core_of_contradictory_assumptions() {
        let mut solver = solver_with_vars(1);
        let a = pos(&solver, 0);
        assert_eq!(solver.solve(&[a, !a]), SolveResult::Unsat);
        let mut core = solver.unsat_core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![a, !a]);
    }

    #[test]
    fn unsat_core_excludes_irrelevant_assumptions() {
        // (¬a ∨ ¬b) with assumptions [z, a, b, w]: only a and b conflict.
        let mut solver = solver_with_vars(4);
        let (a, b, z, w) = (
            pos(&solver, 0),
            pos(&solver, 1),
            pos(&solver, 2),
            pos(&solver, 3),
        );
        solver.add_clause([!a, !b]);
        assert_eq!(solver.solve(&[z, a, b, w]), SolveResult::Unsat);
        let mut core = solver.unsat_core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![a, b], "core must not mention z or w");
    }

    #[test]
    fn unsat_core_follows_propagation_chains() {
        // a → x, x → y, y → ¬b: assuming [a, b] is unsat through a chain.
        let mut solver = solver_with_vars(4);
        let (a, b, x, y) = (
            pos(&solver, 0),
            pos(&solver, 1),
            pos(&solver, 2),
            pos(&solver, 3),
        );
        solver.add_clause([!a, x]);
        solver.add_clause([!x, y]);
        solver.add_clause([!y, !b]);
        assert_eq!(solver.solve(&[a, b]), SolveResult::Unsat);
        let mut core = solver.unsat_core().to_vec();
        core.sort_unstable();
        assert_eq!(core, vec![a, b]);
        // The core is a certificate: re-asking just the core is unsat,
        // and a strict subset is sat.
        assert_eq!(solver.solve(&core), SolveResult::Unsat);
        assert_eq!(solver.solve(&[a]), SolveResult::Sat);
        assert!(solver.unsat_core().is_empty(), "sat answers clear the core");
    }

    #[test]
    fn unsat_core_is_empty_for_formula_level_unsat() {
        let mut solver = solver_with_vars(2);
        let a = pos(&solver, 0);
        solver.add_clause([a]);
        solver.add_clause([!a]);
        assert_eq!(solver.solve(&[pos(&solver, 1)]), SolveResult::Unsat);
        assert!(solver.unsat_core().is_empty());
    }

    #[test]
    fn unsat_core_with_top_level_fact() {
        // ¬a is a unit (level-0) fact, so assuming a conflicts alone.
        let mut solver = solver_with_vars(2);
        let (a, b) = (pos(&solver, 0), pos(&solver, 1));
        solver.add_clause([!a]);
        assert_eq!(solver.solve(&[b, a]), SolveResult::Unsat);
        assert_eq!(solver.unsat_core(), &[a]);
    }

    /// Pigeonhole principle PHP(n+1, n) is unsatisfiable — a classic
    /// exercise for the conflict analysis machinery.
    fn pigeonhole(pigeons: usize, holes: usize) -> (Solver, Vec<Vec<Lit>>) {
        let mut solver = Solver::new();
        let mut grid = Vec::new();
        for _ in 0..pigeons {
            let row: Vec<Lit> = (0..holes)
                .map(|_| Lit::positive(solver.new_var()))
                .collect();
            grid.push(row);
        }
        for row in &grid {
            solver.add_clause(row.iter().copied());
        }
        #[allow(clippy::needless_range_loop)] // 2-D pigeonhole indexing
        for hole in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    let (a, b) = (grid[p1][hole], grid[p2][hole]);
                    solver.add_clause([!a, !b]);
                }
            }
        }
        (solver, grid)
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in 2..=5 {
            let (mut solver, _) = pigeonhole(holes + 1, holes);
            assert_eq!(
                solver.solve(&[]),
                SolveResult::Unsat,
                "PHP({}, {})",
                holes + 1,
                holes
            );
        }
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let (mut solver, grid) = pigeonhole(4, 4);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        // Each pigeon sits in at least one hole in the model.
        for row in &grid {
            assert!(row.iter().any(|&l| solver.model_lit_value(l) == Some(true)));
        }
    }

    #[test]
    fn xor_chain_forces_unique_model() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 = 1  =>  x1 = 0, x2 = 1.
        let mut solver = solver_with_vars(3);
        let (a, b, c) = (pos(&solver, 0), pos(&solver, 1), pos(&solver, 2));
        // a ⊕ b = 1  <=>  (a ∨ b) ∧ (¬a ∨ ¬b)
        solver.add_clause([a, b]);
        solver.add_clause([!a, !b]);
        solver.add_clause([b, c]);
        solver.add_clause([!b, !c]);
        solver.add_clause([a]);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(1)), Some(false));
        assert_eq!(solver.model_value(Var::from_index(2)), Some(true));
    }

    #[test]
    fn model_satisfies_every_clause_on_random_instances() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..50 {
            let nvars = 8 + (next() % 8) as usize;
            let nclauses = 3 * nvars;
            let mut solver = solver_with_vars(nvars);
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let var = Var::from_index((next() as usize) % nvars);
                    clause.push(Lit::new(var, next() % 2 == 0));
                }
                clauses.push(clause.clone());
                solver.add_clause(clause);
            }
            if solver.solve(&[]) == SolveResult::Sat {
                for clause in &clauses {
                    assert!(
                        clause
                            .iter()
                            .any(|&l| solver.model_lit_value(l) == Some(true)),
                        "model violates clause {clauses:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_reflect_activity() {
        let (mut solver, _) = pigeonhole(5, 4);
        solver.solve(&[]);
        let stats = solver.stats();
        assert!(stats.conflicts > 0);
        assert!(stats.propagations > 0);
        assert_eq!(stats.solves, 1);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "unallocated variable")]
    fn rejects_foreign_literal() {
        let mut solver = solver_with_vars(1);
        solver.add_clause([Lit::positive(Var::from_index(5))]);
    }

    #[test]
    fn incremental_use_after_sat() {
        let mut solver = solver_with_vars(4);
        let lits: Vec<Lit> = (0..4).map(|i| pos(&solver, i)).collect();
        solver.add_clause([lits[0], lits[1]]);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        solver.add_clause([!lits[0]]);
        solver.add_clause([!lits[1], lits[2]]);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
        assert_eq!(solver.model_value(Var::from_index(1)), Some(true));
        assert_eq!(solver.model_value(Var::from_index(2)), Some(true));
        solver.add_clause([!lits[2], lits[3]]);
        assert_eq!(solver.solve(&[!lits[3]]), SolveResult::Unsat);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn assumption_prefix_is_retained_across_solves() {
        // Two solves sharing the first two assumptions: the second call
        // must reuse exactly those two levels and still answer correctly.
        let mut solver = solver_with_vars(5);
        let lits: Vec<Lit> = (0..5).map(|i| pos(&solver, i)).collect();
        solver.add_clause([!lits[0], !lits[4]]);
        assert_eq!(solver.solve(&[lits[0], lits[1], lits[2]]), SolveResult::Sat);
        assert_eq!(solver.reused_assumption_levels(), 0);
        assert_eq!(solver.solve(&[lits[0], lits[1], lits[3]]), SolveResult::Sat);
        assert_eq!(solver.reused_assumption_levels(), 2);
        // Identical assumptions: the whole prefix is reused.
        assert_eq!(solver.solve(&[lits[0], lits[1], lits[3]]), SolveResult::Sat);
        assert_eq!(solver.reused_assumption_levels(), 3);
        // The retained prefix must not leak into unrelated queries.
        assert_eq!(solver.solve(&[lits[4]]), SolveResult::Sat);
        assert_eq!(solver.reused_assumption_levels(), 0);
        assert_eq!(solver.model_lit_value(lits[0]), Some(false));
    }

    #[test]
    fn retention_is_invalidated_by_clause_additions() {
        let mut solver = solver_with_vars(5);
        let lits: Vec<Lit> = (0..5).map(|i| pos(&solver, i)).collect();
        assert_eq!(solver.solve(&[lits[0], lits[1]]), SolveResult::Sat);
        // A unit clause retreats to the top level: nothing left to reuse.
        solver.add_clause([lits[4]]);
        assert_eq!(solver.solve(&[lits[0], lits[1]]), SolveResult::Sat);
        assert_eq!(solver.reused_assumption_levels(), 0);
        // A clause with two literals unassigned under the retained trail
        // attaches without disturbing it.
        assert_eq!(solver.solve(&[lits[0], lits[1]]), SolveResult::Sat);
        solver.add_clause([!lits[2], !lits[3]]);
        assert_eq!(solver.solve(&[lits[0], lits[1]]), SolveResult::Sat);
        assert_eq!(solver.reused_assumption_levels(), 2);
        // The new clause must still bite even though the trail was kept.
        assert_eq!(
            solver.solve(&[lits[0], lits[1], lits[2], lits[3]]),
            SolveResult::Unsat
        );
    }

    #[test]
    fn solve_under_caps_the_reused_prefix() {
        let mut solver = solver_with_vars(4);
        let lits: Vec<Lit> = (0..4).map(|i| pos(&solver, i)).collect();
        assert_eq!(solver.solve(&[lits[0], lits[1], lits[2]]), SolveResult::Sat);
        assert_eq!(
            solver.solve_under(&[lits[0], lits[1], lits[2]], 1),
            SolveResult::Sat
        );
        assert_eq!(solver.reused_assumption_levels(), 1);
        assert_eq!(
            solver.solve_under(&[lits[0], lits[1], lits[2]], 0),
            SolveResult::Sat
        );
        assert_eq!(solver.reused_assumption_levels(), 0);
        solver.set_assumption_reuse(false);
        assert_eq!(solver.solve(&[lits[0], lits[1], lits[2]]), SolveResult::Sat);
        assert_eq!(solver.reused_assumption_levels(), 0);
        assert!(!solver.assumption_reuse());
    }

    #[test]
    fn retained_and_fresh_solvers_agree_on_random_prefix_streams() {
        // Random 3-SAT instances queried with prefix-growing assumption
        // streams (the path-exploration shape): an incremental solver, a
        // reuse-disabled twin, and a fresh solver per query must agree
        // on every verdict, and Sat models must satisfy the clauses.
        let mut state = 0x5eed_cafe_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..30 {
            let nvars = 6 + (next() % 6) as usize;
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..2 * nvars {
                let clause: Vec<Lit> = (0..3)
                    .map(|_| Lit::new(Var::from_index((next() as usize) % nvars), next() % 2 == 0))
                    .collect();
                clauses.push(clause);
            }
            let build = |clauses: &[Vec<Lit>]| {
                let mut solver = solver_with_vars(nvars);
                for clause in clauses {
                    solver.add_clause(clause.iter().copied());
                }
                solver
            };
            let mut retained = build(&clauses);
            let mut scratch = build(&clauses);
            scratch.set_assumption_reuse(false);

            let mut prefix: Vec<Lit> = Vec::new();
            for step in 0..8 {
                // Grow the assumption prefix, occasionally rewinding as
                // sibling paths do.
                if next() % 4 == 0 {
                    prefix.truncate((next() as usize) % (prefix.len() + 1));
                }
                prefix.push(Lit::new(
                    Var::from_index((next() as usize) % nvars),
                    next() % 2 == 0,
                ));
                let incremental = retained.solve(&prefix);
                let fresh = build(&clauses).solve(&prefix);
                assert_eq!(
                    incremental, fresh,
                    "round {round} step {step}: retention flipped the verdict \
                     for {prefix:?}"
                );
                assert_eq!(scratch.solve(&prefix), fresh, "reuse-off twin diverged");
                if incremental == SolveResult::Sat {
                    for clause in &clauses {
                        assert!(
                            clause
                                .iter()
                                .any(|&l| retained.model_lit_value(l) == Some(true)),
                            "retained model violates a clause"
                        );
                    }
                } else {
                    // The core must be a subset of the assumptions and a
                    // genuine certificate on a fresh solver.
                    let core = retained.unsat_core().to_vec();
                    assert!(core.iter().all(|l| prefix.contains(l)));
                    assert_eq!(build(&clauses).solve(&core), SolveResult::Unsat);
                }
            }
        }
    }

    #[test]
    fn stats_counters_are_monotone_across_incremental_solves() {
        // Regression for counter drift: every cumulative field only
        // grows across incremental solve calls and clause additions
        // (`learnt_clauses` is exempt — it is a gauge; see SolverStats).
        let (mut solver, grid) = pigeonhole(6, 5);
        let probes: Vec<Vec<Lit>> = vec![
            vec![],
            vec![grid[0][0]],
            vec![grid[0][0], grid[1][1]],
            vec![grid[0][0], grid[1][1], grid[2][2]],
            vec![grid[0][0], grid[1][0]],
            vec![],
        ];
        let mut previous = solver.stats();
        for probe in &probes {
            solver.solve(probe);
            let current = solver.stats();
            assert!(current.solves > previous.solves, "solves must advance");
            assert!(current.decisions >= previous.decisions);
            assert!(current.propagations >= previous.propagations);
            assert!(current.conflicts >= previous.conflicts);
            assert!(current.restarts >= previous.restarts);
            assert!(current.db_reductions >= previous.db_reductions);
            assert!(current.learned_kept >= previous.learned_kept);
            previous = current;
        }
    }

    #[test]
    fn clause_db_reduction_deletes_and_counts() {
        // Force reductions on a small instance: with zero slack, any
        // learnt DB bigger than the problem triggers a reduction at the
        // next restart. Glue (LBD ≤ 2) and binary clauses survive.
        let (mut solver, _) = pigeonhole(7, 6);
        solver.set_reduce_db_base(0);
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
        let stats = solver.stats();
        assert!(stats.restarts > 0, "expected restarts, got {stats}");
        assert!(stats.db_reductions > 0, "expected reductions, got {stats}");
        assert!(stats.learned_kept > 0, "kept clauses are counted");
    }

    #[test]
    fn db_reduction_logs_delete_steps() {
        let (mut solver, _) = pigeonhole(7, 6);
        solver.enable_proof();
        solver.set_reduce_db_base(0);
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
        assert!(solver.stats().db_reductions > 0);
        let proof = solver.take_proof();
        let deletes = proof
            .steps
            .iter()
            .filter(|s| matches!(s, ProofStep::Delete(_)))
            .count();
        assert!(deletes > 0, "reductions must mirror into the proof log");
    }

    #[test]
    fn dynamic_restarts_trigger_on_lbd_drift() {
        // PHP produces enough conflicts that either the EMA condition or
        // the Luby backstop fires; the combined policy must restart well
        // before the old fixed budget would on a hard instance.
        let (mut solver, _) = pigeonhole(7, 6);
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
        let stats = solver.stats();
        assert!(stats.restarts > 0, "no restarts on PHP(7,6): {stats}");
        assert!(stats.conflicts > stats.restarts);
    }

    #[test]
    fn decay_is_tunable() {
        let (mut solver, _) = pigeonhole(6, 5);
        solver.set_decay(0.8, 0.99);
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    #[should_panic(expected = "variable decay must be in (0, 1)")]
    fn rejects_out_of_range_decay() {
        Solver::new().set_decay(1.0, 0.99);
    }

    #[test]
    fn stats_display_carries_every_field() {
        let stats = SolverStats {
            solves: 1,
            decisions: 2,
            propagations: 3,
            conflicts: 4,
            restarts: 5,
            learnt_clauses: 6,
            db_reductions: 7,
            learned_kept: 8,
        };
        let printed = stats.to_string();
        for field in [
            "solves=1",
            "decisions=2",
            "propagations=3",
            "conflicts=4",
            "restarts=5",
            "learnt=6",
            "db_reductions=7",
            "learned_kept=8",
        ] {
            assert!(printed.contains(field), "missing `{field}` in `{printed}`");
        }
        assert_eq!(printed.matches('=').count(), 8);
    }
}
