//! Concrete test vectors (the `.ktest` equivalent).

use std::fmt;

use crate::eval::Env;

/// One symbol assignment inside a [`TestVector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestVectorEntry {
    /// Symbol name as registered with the context.
    pub name: String,
    /// Symbol width in bits.
    pub width: u32,
    /// Assigned value (high bits zero).
    pub value: u64,
}

/// A concrete assignment to every symbolic input of a path.
///
/// Produced from a solver model (see
/// [`SolverBackend::test_vector`](crate::SolverBackend::test_vector));
/// replaying the co-simulation with these inputs deterministically
/// reproduces the path — including any mismatch it exposed.
///
/// # Example
///
/// ```
/// use symcosim_symex::TestVector;
///
/// let mut vector = TestVector::new();
/// vector.push("instr_0".to_string(), 32, 0x0000_0013);
/// assert_eq!(vector.get("instr_0"), Some(0x13));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TestVector {
    entries: Vec<TestVectorEntry>,
}

impl TestVector {
    /// Creates an empty test vector.
    pub fn new() -> TestVector {
        TestVector::default()
    }

    /// Appends an assignment.
    pub fn push(&mut self, name: String, width: u32, value: u64) {
        self.entries.push(TestVectorEntry { name, width, value });
    }

    /// Looks up an assignment by symbol name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
    }

    /// The assignments, in symbol registration order.
    pub fn entries(&self) -> &[TestVectorEntry] {
        &self.entries
    }

    /// Number of assignments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Converts to an evaluation environment for [`eval`](crate::eval).
    pub fn to_env(&self) -> Env {
        self.entries
            .iter()
            .map(|e| (e.name.clone(), e.value))
            .collect()
    }
}

impl fmt::Display for TestVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={:#x}", entry.name, entry.value)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_env_conversion() {
        let mut vector = TestVector::new();
        vector.push("a".into(), 32, 7);
        vector.push("b".into(), 8, 0xff);
        assert_eq!(vector.get("a"), Some(7));
        assert_eq!(vector.get("missing"), None);
        assert_eq!(vector.len(), 2);
        assert!(!vector.is_empty());
        let env = vector.to_env();
        assert_eq!(env["b"], 0xff);
    }

    #[test]
    fn display_lists_assignments() {
        let mut vector = TestVector::new();
        vector.push("x".into(), 32, 16);
        assert_eq!(vector.to_string(), "{x=0x10}");
    }
}
