//! Path exploration by deterministic re-execution.
//!
//! A *path* is identified by the sequence of branch directions taken at
//! symbolic [`decide`](crate::Domain::decide) points. The engine keeps a
//! frontier of unexplored decision prefixes; to run a path it re-executes
//! the user closure from scratch, forcing recorded decisions and forking at
//! the first fresh symbolic branch whose both sides are feasible. This is
//! functionally the exploration KLEE performs by snapshotting, traded for
//! re-execution — sound because the closure is deterministic, and cheap
//! because co-simulation paths are bounded to one or two instructions.

use crate::solve::SolverBackend;
use crate::term::TermId;
use crate::{Context, Domain, TestVector};

/// Frontier discipline for pending paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Depth-first: explore the most recent fork first (KLEE's DFS).
    #[default]
    Dfs,
    /// Breadth-first: explore forks in creation order.
    Bfs,
    /// Uniform random choice from the frontier (KLEE's random-path flavour),
    /// deterministic in [`EngineConfig::seed`].
    RandomPath,
}

/// Exploration limits and policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Frontier discipline.
    pub strategy: SearchStrategy,
    /// Stop after this many paths have been run (complete or not).
    pub max_paths: usize,
    /// Kill a path after this many symbolic decisions.
    pub max_decisions_per_path: usize,
    /// Produce a [`TestVector`] for every finished path (one extra solver
    /// call per path, like KLEE's test-case emission).
    pub emit_test_vectors: bool,
    /// Seed for [`SearchStrategy::RandomPath`].
    pub seed: u64,
    /// Upper bound on copy-on-write snapshots resident in a
    /// [`ForkEngine`](crate::ForkEngine) frontier; beyond it new forks
    /// spill back to prefix replay. Ignored by the re-execution engine.
    pub max_resident_snapshots: usize,
    /// Route feasibility queries through the KLEE-style solver chain
    /// (independence slicing + counterexample/model caching). Answers are
    /// identical either way; disabling is for benchmarking and debugging.
    pub solver_chain: bool,
    /// Log clausal proofs and replay every solver answer through the
    /// independent checker (see [`crate::audit`]). Answers and explored
    /// paths are identical either way; auditing only accumulates
    /// certification statistics (and their failures).
    pub audit: bool,
    /// Let the solver retain the propagation trail of the assumption
    /// prefix consecutive feasibility queries share (see
    /// [`SolverBackend::set_incremental`]). Answers are identical either
    /// way; disabling is for benchmarking and differential testing.
    pub incremental: bool,
    /// Let the solver chain statically answer feasibility queries whose
    /// path-condition conjunction is forced, via abstract interpretation
    /// (see [`SolverBackend::set_preflight`]). Answers are identical
    /// either way; disabling is for benchmarking and differential
    /// testing. Ignored when the chain is off.
    pub preflight: bool,
    /// Veritesting-style state merging in the [`ForkEngine`]
    /// ([`crate::merge`]): siblings whose post-step states are
    /// term-identical and whose divergence is provably decode-local are
    /// re-joined into one physical path carrying per-arm ledgers. The
    /// explored path *records* are byte-identical either way (each arm
    /// is expanded back into its own [`PathResult`]); only the physical
    /// path count and the solver work change. Ignored by the
    /// re-execution [`Engine`].
    ///
    /// [`ForkEngine`]: crate::ForkEngine
    pub merge: bool,
}

impl EngineConfig {
    /// Default [`EngineConfig::max_resident_snapshots`]: a snapshot is a
    /// few KiB of cloned model state, so about a thousand of them bound
    /// frontier memory to single-digit MiB.
    pub const DEFAULT_MAX_RESIDENT_SNAPSHOTS: usize = 1024;
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            strategy: SearchStrategy::Dfs,
            max_paths: 100_000,
            max_decisions_per_path: 100_000,
            emit_test_vectors: true,
            seed: 0x5eed_cafe,
            max_resident_snapshots: EngineConfig::DEFAULT_MAX_RESIDENT_SNAPSHOTS,
            solver_chain: true,
            audit: false,
            incremental: true,
            preflight: true,
            merge: false,
        }
    }
}

/// Why a path ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStatus {
    /// The closure ran to completion under feasible constraints.
    Complete,
    /// An [`assume`](crate::Domain::assume) made the path infeasible.
    Infeasible,
    /// The per-path decision limit was hit (counted as a *partial path*,
    /// like KLEE paths killed by resource limits).
    DecisionLimit,
}

/// One explored path and the value the closure returned on it.
#[derive(Debug, Clone)]
pub struct PathResult<R> {
    /// The closure's return value.
    pub value: R,
    /// Why the path ended.
    pub status: PathStatus,
    /// Branch directions taken at symbolic decision points.
    pub decisions: Vec<bool>,
    /// Number of path constraints collected.
    pub num_constraints: usize,
    /// Concrete inputs reproducing this path, if emission is enabled and
    /// the path is feasible.
    pub test_vector: Option<TestVector>,
}

/// Aggregate result of an [`Engine::explore`] call.
#[derive(Debug, Clone)]
pub struct ExploreOutcome<R> {
    /// All explored paths in completion order.
    pub paths: Vec<PathResult<R>>,
    /// Paths that ran to completion.
    pub complete_paths: usize,
    /// Paths cut short (infeasible assumes or decision limits).
    pub partial_paths: usize,
    /// `true` if exploration stopped because [`EngineConfig::max_paths`]
    /// was reached while the frontier was non-empty.
    pub frontier_exhausted: bool,
    /// Path records recovered from merged physical paths: a merged path
    /// representing *k* sibling arms contributes *k − 1* here (see
    /// [`EngineConfig::merge`]). Always zero for the re-execution engine
    /// and for merge-off runs.
    pub merged_paths: usize,
    /// Frontier jobs left unexplored when exploration stopped early
    /// (path budget or stop predicate) — a lower bound on the paths the
    /// truncation dropped, since an unexplored job can fork further.
    /// Zero when the frontier drained.
    pub paths_dropped: usize,
}

impl<R> ExploreOutcome<R> {
    /// Iterates over the values of complete paths.
    pub fn complete_values(&self) -> impl Iterator<Item = &R> {
        self.paths
            .iter()
            .filter(|p| p.status == PathStatus::Complete)
            .map(|p| &p.value)
    }
}

/// One explored prefix: the finished path plus the sibling prefixes it
/// scheduled at fresh forks.
///
/// This is the unit of work a parallel executor distributes: feed a prefix
/// to [`Engine::run_prefix`], collect the result, enqueue the forks.
#[derive(Debug, Clone)]
pub struct PrefixOutcome<R> {
    /// The path that was run.
    pub result: PathResult<R>,
    /// Unexplored sibling prefixes discovered at fresh forks, in creation
    /// order (shallowest first).
    pub forks: Vec<Vec<bool>>,
}

#[derive(Debug)]
struct PendingPath {
    prefix: Vec<bool>,
}

/// The symbolic exploration engine.
///
/// Owns the term [`Context`] and the incremental [`SolverBackend`]; both
/// are shared across paths so hash-consed terms and learnt clauses carry
/// over. See the [crate documentation](crate) for an example.
#[derive(Debug)]
pub struct Engine {
    ctx: Context,
    backend: SolverBackend,
    config: EngineConfig,
    rng_state: u64,
    projector: crate::project::Projector,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Engine {
        let mut backend =
            SolverBackend::with_config(config.solver_chain, config.audit, config.incremental);
        backend.set_preflight(config.preflight);
        Engine {
            ctx: Context::new(),
            backend,
            config: config.clone(),
            rng_state: config.seed | 1,
            projector: crate::project::Projector::new(),
        }
    }

    /// Read access to the term context (for inspecting returned terms).
    pub fn ctx(&self) -> &Context {
        &self.ctx
    }

    /// Mutable access to the term context.
    pub fn ctx_mut(&mut self) -> &mut Context {
        &mut self.ctx
    }

    /// The solver backend, e.g. for statistics.
    pub fn backend(&self) -> &SolverBackend {
        &self.backend
    }

    /// Drains the proof auditor's certified conflict cones (see
    /// [`SolverBackend::take_audit_units`]). Empty when auditing is off.
    pub fn take_audit_units(&mut self) -> Vec<symcosim_sat::CoreReplayUnit> {
        self.backend.take_audit_units()
    }

    /// Exports the solver chain's caches for warming a later identical
    /// run (see [`crate::ChainSeed`]). Empty when the chain is disabled.
    pub fn export_chain_seed(&self) -> crate::ChainSeed {
        self.backend.export_chain_seed()
    }

    /// Pre-warms the solver chain from a seed exported by an identical
    /// run; answers are unchanged, only cheaper.
    pub fn import_chain_seed(&mut self, seed: &crate::ChainSeed) {
        self.backend.import_chain_seed(seed);
    }

    /// Explores every feasible path through `f`.
    ///
    /// `f` must be deterministic: given the same decisions it must perform
    /// the same domain operations in the same order, and it must name its
    /// symbolic inputs canonically (see
    /// [`Domain::fresh_word`](crate::Domain::fresh_word)). Each invocation
    /// corresponds to one path; the engine re-invokes `f` until the
    /// frontier empties or [`EngineConfig::max_paths`] is hit.
    pub fn explore<F, R>(&mut self, f: F) -> ExploreOutcome<R>
    where
        F: FnMut(&mut SymExec<'_>) -> R,
    {
        self.explore_until(f, |_| false)
    }

    /// Like [`Engine::explore`], but stops as soon as `stop` returns true
    /// for a just-completed path (e.g. "a mismatch was found") — the
    /// error-injection experiments' mode of operation.
    pub fn explore_until<F, R, P>(&mut self, mut f: F, mut stop: P) -> ExploreOutcome<R>
    where
        F: FnMut(&mut SymExec<'_>) -> R,
        P: FnMut(&PathResult<R>) -> bool,
    {
        let mut frontier = vec![PendingPath { prefix: Vec::new() }];
        let mut paths = Vec::new();
        let mut complete = 0usize;
        let mut partial = 0usize;

        while let Some(pending) = self.pop_frontier(&mut frontier) {
            if paths.len() >= self.config.max_paths {
                return ExploreOutcome {
                    paths,
                    complete_paths: complete,
                    partial_paths: partial,
                    frontier_exhausted: true,
                    merged_paths: 0,
                    paths_dropped: frontier.len() + 1,
                };
            }
            let outcome = self.run_prefix(pending.prefix, &mut f);
            for prefix in outcome.forks {
                frontier.push(PendingPath { prefix });
            }
            match outcome.result.status {
                PathStatus::Complete => complete += 1,
                _ => partial += 1,
            }
            paths.push(outcome.result);
            if stop(paths.last().expect("just pushed")) {
                return ExploreOutcome {
                    frontier_exhausted: !frontier.is_empty(),
                    paths_dropped: frontier.len(),
                    paths,
                    complete_paths: complete,
                    partial_paths: partial,
                    merged_paths: 0,
                };
            }
        }

        ExploreOutcome {
            paths,
            complete_paths: complete,
            partial_paths: partial,
            frontier_exhausted: false,
            merged_paths: 0,
            paths_dropped: 0,
        }
    }

    /// Runs the single path selected by `prefix` and returns its result
    /// plus the sibling prefixes scheduled at fresh forks.
    ///
    /// This is [`Engine::explore_until`]'s loop body, exposed so an
    /// external scheduler (the parallel executor) can drive its own
    /// frontier. Everything in the returned [`PrefixOutcome`] except the
    /// closure's own value is a pure function of `prefix` and the closure:
    /// feasibility answers are objective (independent of the persistent
    /// solver's query history), and model extraction uses a fresh solver —
    /// so two engines given the same prefix agree, whatever they ran
    /// before.
    pub fn run_prefix<F, R>(&mut self, prefix: Vec<bool>, f: F) -> PrefixOutcome<R>
    where
        F: FnOnce(&mut SymExec<'_>) -> R,
    {
        let mut exec = SymExec {
            ctx: &mut self.ctx,
            backend: &mut self.backend,
            prefix,
            taken: Vec::new(),
            constraints: Vec::new(),
            origins: Vec::new(),
            forks: Vec::new(),
            path_symbols: Vec::new(),
            status: PathStatus::Complete,
            max_decisions: self.config.max_decisions_per_path,
            projector: &mut self.projector,
        };
        let value = f(&mut exec);
        // Debug builds re-validate the path condition after every path
        // (node-local checks only; the full pass is SymExec::lint_path).
        #[cfg(debug_assertions)]
        crate::wf::debug_validate_path(exec.ctx, &exec.constraints);
        let SymExec {
            taken,
            constraints,
            forks,
            path_symbols,
            status,
            ..
        } = exec;
        let test_vector = if self.config.emit_test_vectors && status != PathStatus::Infeasible {
            self.model_for(&constraints, &path_symbols)
        } else {
            None
        };
        PrefixOutcome {
            result: PathResult {
                value,
                status,
                decisions: taken,
                num_constraints: constraints.len(),
                test_vector,
            },
            forks,
        }
    }

    fn pop_frontier(&mut self, frontier: &mut Vec<PendingPath>) -> Option<PendingPath> {
        if frontier.is_empty() {
            return None;
        }
        let index = match self.config.strategy {
            SearchStrategy::Dfs => frontier.len() - 1,
            SearchStrategy::Bfs => 0,
            SearchStrategy::RandomPath => {
                // xorshift64* — deterministic, no external dependency.
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                (self.rng_state as usize) % frontier.len()
            }
        };
        Some(frontier.swap_remove(index))
    }

    fn model_for(&mut self, constraints: &[TermId], symbols: &[TermId]) -> Option<TestVector> {
        // Deliberately a fresh solver, not the engine's persistent one: the
        // persistent solver's models depend on its query history (phase
        // saving, branching activity), while a fresh solve depends only on
        // the path condition. Emitted vectors are therefore identical
        // however paths are scheduled across engines/workers.
        crate::solve::fresh_model_vector(&self.ctx, constraints, symbols)
    }
}

/// Per-path symbolic executor; implements [`Domain`] over term handles.
///
/// Handed to the exploration closure by [`Engine::explore`]. Beyond the
/// `Domain` operations it offers path-level queries used by verification
/// harnesses: [`SymExec::check_sat`] (is a condition possible here?) and
/// [`SymExec::concrete_witness`] (a model value under the path condition).
#[derive(Debug)]
pub struct SymExec<'e> {
    ctx: &'e mut Context,
    backend: &'e mut SolverBackend,
    prefix: Vec<bool>,
    taken: Vec<bool>,
    constraints: Vec<TermId>,
    origins: Vec<crate::project::ConstraintOrigin>,
    forks: Vec<Vec<bool>>,
    path_symbols: Vec<TermId>,
    status: PathStatus,
    max_decisions: usize,
    projector: &'e mut crate::project::Projector,
}

impl SymExec<'_> {
    /// The term context (symbolic values are [`TermId`]s into it).
    pub fn context(&mut self) -> &mut Context {
        self.ctx
    }

    /// The constraints accumulated on this path so far.
    pub fn constraints(&self) -> &[TermId] {
        &self.constraints
    }

    /// Whether `cond` is satisfiable together with the path condition —
    /// *without* committing to it.
    ///
    /// This is the voter's primitive: "can the two models disagree here?".
    pub fn check_sat(&mut self, cond: TermId) -> bool {
        if let Some(value) = self.ctx.const_value(cond) {
            return value == 1;
        }
        // Feasibility only (no model is read afterwards), so the memoised
        // query cache applies: sibling paths sharing a prefix ask the same
        // condition sets over and over.
        self.backend.prefix_sync(&self.constraints);
        self.backend.check_suffix(self.ctx, &[cond]).is_sat()
    }

    /// A concrete witness for `term` under the path condition plus `extra`.
    ///
    /// Returns `None` if the combined constraints are infeasible.
    pub fn concrete_witness(&mut self, term: TermId, extra: &[TermId]) -> Option<u64> {
        let mut conditions = self.constraints.clone();
        conditions.extend_from_slice(extra);
        if !self.backend.check(self.ctx, &conditions).is_sat() {
            return None;
        }
        self.backend.value_of(self.ctx, term)
    }

    /// A test vector for the path condition plus `extra` constraints,
    /// covering the symbols created on this path.
    pub fn witness_vector(&mut self, extra: &[TermId]) -> Option<TestVector> {
        let mut conditions = self.constraints.clone();
        conditions.extend_from_slice(extra);
        if !self.backend.check(self.ctx, &conditions).is_sat() {
            return None;
        }
        let mut vector = TestVector::new();
        for &sym in &self.path_symbols {
            let name = self.ctx.symbol_name(sym)?.to_string();
            let width = self.ctx.width(sym);
            let value = self.backend.value_of(self.ctx, sym).unwrap_or(0);
            vector.push(name, width, value);
        }
        Some(vector)
    }

    /// Like [`SymExec::concrete_witness`], but extracted from a fresh
    /// solver: the returned value depends only on the path condition plus
    /// `extra`, not on the query history of the engine's persistent
    /// solver. Reports that must be identical across sequential and
    /// parallel exploration extract their witnesses through this.
    pub fn stable_concrete_witness(&mut self, term: TermId, extra: &[TermId]) -> Option<u64> {
        let mut conditions = self.constraints.clone();
        conditions.extend_from_slice(extra);
        crate::solve::fresh_model_value(self.ctx, &conditions, term)
    }

    /// Like [`SymExec::witness_vector`], but extracted from a fresh solver
    /// (see [`SymExec::stable_concrete_witness`]).
    pub fn stable_witness_vector(&mut self, extra: &[TermId]) -> Option<TestVector> {
        let mut conditions = self.constraints.clone();
        conditions.extend_from_slice(extra);
        crate::solve::fresh_model_vector(self.ctx, &conditions, &self.path_symbols)
    }

    /// Permanently adds `cond` to the path condition (it is already known
    /// to hold, e.g. after a mismatch witness has been found).
    pub fn add_constraint(&mut self, cond: TermId) {
        self.constraints.push(cond);
        self.origins
            .push(crate::project::ConstraintOrigin::Committed);
    }

    /// Projects this path's condition onto every symbolic fetch slot whose
    /// symbol name starts with `slot_prefix` (see
    /// [`Projector::project_path`](crate::Projector::project_path)).
    /// Constraints committed after the fact are excluded.
    #[must_use]
    pub fn project_coverage(&mut self, slot_prefix: &str) -> Vec<crate::project::SlotCoverage> {
        self.projector
            .project_path(self.ctx, slot_prefix, &self.constraints, &self.origins)
    }

    /// Runs the full [well-formedness pass](crate::wf::validate_path) over
    /// this path's condition and symbolic reads.
    #[must_use]
    pub fn lint_path(&self) -> Vec<crate::wf::WfIssue> {
        crate::wf::validate_path(self.ctx, &self.constraints, &self.path_symbols)
    }

    /// [`SymExec::lint_path`] with the path's output frontier, so symbols
    /// in no constraint and no output term are reported as dead (see
    /// [`validate_path_with_outputs`](crate::wf::validate_path_with_outputs)).
    #[must_use]
    pub fn lint_path_with_outputs(&self, outputs: &[TermId]) -> Vec<crate::wf::WfIssue> {
        crate::wf::validate_path_with_outputs(
            self.ctx,
            &self.constraints,
            &self.path_symbols,
            outputs,
        )
    }

    fn kill(&mut self, status: PathStatus) {
        if self.status == PathStatus::Complete {
            self.status = status;
        }
    }
}

impl Domain for SymExec<'_> {
    type Word = TermId;
    type Bool = TermId;

    fn const_word(&mut self, value: u32) -> TermId {
        self.ctx.constant(32, value as u64)
    }

    fn const_bool(&mut self, value: bool) -> TermId {
        self.ctx.bool_const(value)
    }

    fn fresh_word(&mut self, name: &str) -> TermId {
        let sym = self.ctx.symbol(32, name);
        if !self.path_symbols.contains(&sym) {
            self.path_symbols.push(sym);
        }
        sym
    }

    fn word_value(&self, word: TermId) -> Option<u32> {
        self.ctx.const_value(word).map(|v| v as u32)
    }

    fn bool_value(&self, b: TermId) -> Option<bool> {
        self.ctx.const_value(b).map(|v| v == 1)
    }

    fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.add(a, b)
    }

    fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.sub(a, b)
    }

    fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.mul(a, b)
    }

    fn and(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.and(a, b)
    }

    fn or(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.or(a, b)
    }

    fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.xor(a, b)
    }

    fn not_w(&mut self, a: TermId) -> TermId {
        self.ctx.not(a)
    }

    fn shl(&mut self, a: TermId, amount: TermId) -> TermId {
        self.ctx.shl(a, amount)
    }

    fn lshr(&mut self, a: TermId, amount: TermId) -> TermId {
        self.ctx.lshr(a, amount)
    }

    fn ashr(&mut self, a: TermId, amount: TermId) -> TermId {
        self.ctx.ashr(a, amount)
    }

    fn eq_w(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.eq(a, b)
    }

    fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.ult(a, b)
    }

    fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.slt(a, b)
    }

    fn ite(&mut self, cond: TermId, then_w: TermId, else_w: TermId) -> TermId {
        self.ctx.ite(cond, then_w, else_w)
    }

    fn not_b(&mut self, a: TermId) -> TermId {
        self.ctx.not(a)
    }

    fn and_b(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.and(a, b)
    }

    fn or_b(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.or(a, b)
    }

    fn bool_to_word(&mut self, b: TermId) -> TermId {
        self.ctx.zero_ext(b, 32)
    }

    fn decide(&mut self, cond: TermId) -> bool {
        if self.is_dead() {
            return false;
        }
        if let Some(value) = self.ctx.const_value(cond) {
            return value == 1;
        }
        let index = self.taken.len();
        if index < self.prefix.len() {
            // Replaying a recorded prefix: feasibility was established when
            // the fork was scheduled.
            let choice = self.prefix[index];
            let constraint = if choice { cond } else { self.ctx.not(cond) };
            self.constraints.push(constraint);
            self.origins
                .push(crate::project::ConstraintOrigin::Decision(index as u32));
            self.taken.push(choice);
            return choice;
        }
        if self.taken.len() >= self.max_decisions {
            self.kill(PathStatus::DecisionLimit);
            return false;
        }
        let negated = self.ctx.not(cond);
        // Both polarity probes share the whole path condition as their
        // prefix; phrasing them as suffix queries lets the incremental
        // solver retain the prefix's propagation trail between them.
        self.backend.prefix_sync(&self.constraints);
        let true_feasible = self.backend.check_suffix(self.ctx, &[cond]).is_sat();
        let (choice, constraint) = if true_feasible {
            if self.backend.check_suffix(self.ctx, &[negated]).is_sat() {
                // Both sides feasible: fork, continue on `true`.
                let mut sibling = self.taken.clone();
                sibling.push(false);
                self.forks.push(sibling);
            }
            (true, cond)
        } else {
            // The path condition is feasible by induction, so `false` is.
            (false, negated)
        };
        self.constraints.push(constraint);
        self.backend.prefix_push(constraint);
        self.origins
            .push(crate::project::ConstraintOrigin::Decision(index as u32));
        self.taken.push(choice);
        choice
    }

    fn assume(&mut self, cond: TermId) {
        if self.is_dead() {
            return;
        }
        match self.ctx.const_value(cond) {
            Some(1) => return,
            Some(_) => {
                self.kill(PathStatus::Infeasible);
                return;
            }
            None => {}
        }
        self.backend.prefix_sync(&self.constraints);
        let feasible = self.backend.check_suffix(self.ctx, &[cond]).is_sat();
        self.constraints.push(cond);
        self.backend.prefix_push(cond);
        self.origins.push(crate::project::ConstraintOrigin::Assumed);
        if !feasible {
            self.kill(PathStatus::Infeasible);
        }
    }

    fn is_dead(&self) -> bool {
        self.status != PathStatus::Complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_symbol_forks_both_ways() {
        let mut engine = Engine::new(EngineConfig::default());
        let outcome = engine.explore(|exec| {
            let x = exec.fresh_word("x");
            let ten = exec.const_word(10);
            let lt = exec.ult(x, ten);
            exec.decide(lt)
        });
        assert_eq!(outcome.paths.len(), 2);
        assert_eq!(outcome.complete_paths, 2);
        let values: Vec<bool> = outcome.paths.iter().map(|p| p.value).collect();
        assert!(values.contains(&true) && values.contains(&false));
        // Test vectors respect the branch each path took.
        for path in &outcome.paths {
            let vector = path
                .test_vector
                .as_ref()
                .expect("feasible path has a vector");
            let x = vector.get("x").expect("x was an input");
            assert_eq!(path.value, x < 10, "vector {vector} inconsistent with path");
        }
    }

    #[test]
    fn nested_decisions_enumerate_all_combinations() {
        let mut engine = Engine::new(EngineConfig::default());
        let outcome = engine.explore(|exec| {
            let x = exec.fresh_word("x");
            let mut count = 0;
            for bit in 0..3 {
                let field = exec.field(x, bit, bit);
                let one = exec.const_word(1);
                let set = exec.eq_w(field, one);
                if exec.decide(set) {
                    count += 1;
                }
            }
            count
        });
        assert_eq!(outcome.paths.len(), 8);
        let mut histogram = [0usize; 4];
        for path in &outcome.paths {
            histogram[path.value] += 1;
        }
        assert_eq!(histogram, [1, 3, 3, 1]);
    }

    #[test]
    fn infeasible_branches_are_pruned() {
        let mut engine = Engine::new(EngineConfig::default());
        let outcome = engine.explore(|exec| {
            let x = exec.fresh_word("x");
            let five = exec.const_word(5);
            let lt5 = exec.ult(x, five);
            let first = exec.decide(lt5);
            // If x < 5, then x < 100 is forced: no second fork.
            let hundred = exec.const_word(100);
            let lt100 = exec.ult(x, hundred);
            let second = exec.decide(lt100);
            (first, second)
        });
        // Paths: (T,T), (F,T), (F,F) — (T,F) is infeasible and never forked.
        assert_eq!(outcome.paths.len(), 3);
        assert!(!outcome.paths.iter().any(|p| p.value == (true, false)));
    }

    #[test]
    fn assume_prunes_and_marks_infeasible() {
        let mut engine = Engine::new(EngineConfig::default());
        let outcome = engine.explore(|exec| {
            let x = exec.fresh_word("x");
            let three = exec.const_word(3);
            let is3 = exec.eq_w(x, three);
            exec.assume(is3);
            let four = exec.const_word(4);
            let is4 = exec.eq_w(x, four);
            exec.assume(is4); // contradiction
            exec.is_dead()
        });
        assert_eq!(outcome.paths.len(), 1);
        assert_eq!(outcome.paths[0].status, PathStatus::Infeasible);
        assert_eq!(outcome.partial_paths, 1);
        assert!(outcome.paths[0].value);
    }

    #[test]
    fn decision_limit_counts_as_partial() {
        let config = EngineConfig {
            max_decisions_per_path: 2,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(config);
        let outcome = engine.explore(|exec| {
            let x = exec.fresh_word("x");
            for bit in 0..8 {
                let field = exec.field(x, bit, bit);
                let one = exec.const_word(1);
                let set = exec.eq_w(field, one);
                exec.decide(set);
                if exec.is_dead() {
                    break;
                }
            }
        });
        assert!(outcome
            .paths
            .iter()
            .any(|p| p.status == PathStatus::DecisionLimit));
    }

    #[test]
    fn max_paths_truncates_search() {
        let config = EngineConfig {
            max_paths: 3,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(config);
        let outcome = engine.explore(|exec| {
            let x = exec.fresh_word("x");
            for bit in 0..6 {
                let field = exec.field(x, bit, bit);
                let one = exec.const_word(1);
                let set = exec.eq_w(field, one);
                exec.decide(set);
            }
        });
        assert_eq!(outcome.paths.len(), 3);
        assert!(outcome.frontier_exhausted);
    }

    #[test]
    fn strategies_cover_the_same_paths() {
        for strategy in [
            SearchStrategy::Dfs,
            SearchStrategy::Bfs,
            SearchStrategy::RandomPath,
        ] {
            let config = EngineConfig {
                strategy,
                ..EngineConfig::default()
            };
            let mut engine = Engine::new(config);
            let outcome = engine.explore(|exec| {
                let x = exec.fresh_word("x");
                let mut value = 0u32;
                for bit in 0..3 {
                    let field = exec.field(x, bit, bit);
                    let one = exec.const_word(1);
                    let set = exec.eq_w(field, one);
                    if exec.decide(set) {
                        value |= 1 << bit;
                    }
                }
                value
            });
            let mut values: Vec<u32> = outcome.paths.iter().map(|p| p.value).collect();
            values.sort_unstable();
            assert_eq!(values, (0..8).collect::<Vec<u32>>(), "{strategy:?}");
        }
    }

    #[test]
    fn concrete_computations_do_not_fork() {
        let mut engine = Engine::new(EngineConfig::default());
        let outcome = engine.explore(|exec| {
            let a = exec.const_word(6);
            let b = exec.const_word(7);
            let product = exec.mul(a, b);
            let c42 = exec.const_word(42);
            let eq = exec.eq_w(product, c42);
            exec.decide(eq)
        });
        assert_eq!(outcome.paths.len(), 1);
        assert!(outcome.paths[0].value);
        assert!(outcome.paths[0].decisions.is_empty());
    }

    #[test]
    fn replayed_queries_hit_the_cache() {
        // Re-executed paths repeat the parent's check_sat query with the
        // identical condition set; the backend memoises it.
        let mut engine = Engine::new(EngineConfig::default());
        engine.explore(|exec| {
            let x = exec.fresh_word("x");
            let ten = exec.const_word(10);
            let lt = exec.ult(x, ten);
            let possible = exec.check_sat(lt);
            let zero = exec.const_word(0);
            let is_zero = exec.eq_w(x, zero);
            exec.decide(is_zero);
            possible
        });
        let stats = engine.backend().query_cache_stats();
        assert!(stats.hits > 0, "the sibling path repeats the query");
        assert!(stats.misses > 0);
    }

    #[test]
    fn check_sat_does_not_commit() {
        let mut engine = Engine::new(EngineConfig::default());
        let outcome = engine.explore(|exec| {
            let x = exec.fresh_word("x");
            let seven = exec.const_word(7);
            let is7 = exec.eq_w(x, seven);
            let possible = exec.check_sat(is7);
            let not7 = exec.not_b(is7);
            let also_possible = exec.check_sat(not7);
            (possible, also_possible)
        });
        assert_eq!(outcome.paths.len(), 1);
        assert_eq!(outcome.paths[0].value, (true, true));
    }

    /// Three decisions over distinct bits of one symbol: 8 feasible paths.
    fn three_bit_task(exec: &mut SymExec<'_>) -> u32 {
        let x = exec.fresh_word("x");
        let mut value = 0u32;
        for bit in 0..3 {
            let field = exec.field(x, bit, bit);
            let one = exec.const_word(1);
            let set = exec.eq_w(field, one);
            if exec.decide(set) {
                value |= 1 << bit;
            }
        }
        value
    }

    #[test]
    fn run_prefix_drives_an_external_frontier() {
        // DFS exploration re-implemented on top of run_prefix matches
        // the engine's own explore().
        let mut engine = Engine::new(EngineConfig::default());
        let mut frontier = vec![Vec::new()];
        let mut values = Vec::new();
        while let Some(prefix) = frontier.pop() {
            let outcome = engine.run_prefix(prefix, three_bit_task);
            frontier.extend(outcome.forks);
            values.push(outcome.result.value);
        }
        values.sort_unstable();
        assert_eq!(values, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn run_prefix_is_history_independent() {
        // The same prefix on a fresh engine and on an engine that explored
        // other paths first: identical result, forks and test vector.
        let prefix = vec![true, false];
        let mut fresh = Engine::new(EngineConfig::default());
        let baseline = fresh.run_prefix(prefix.clone(), three_bit_task);

        let mut warmed = Engine::new(EngineConfig::default());
        warmed.run_prefix(Vec::new(), three_bit_task);
        warmed.run_prefix(vec![false], three_bit_task);
        let repeat = warmed.run_prefix(prefix, three_bit_task);

        assert_eq!(repeat.result.value, baseline.result.value);
        assert_eq!(repeat.result.status, baseline.result.status);
        assert_eq!(repeat.result.decisions, baseline.result.decisions);
        assert_eq!(repeat.forks, baseline.forks);
        let (a, b) = (
            baseline.result.test_vector.expect("feasible"),
            repeat.result.test_vector.expect("feasible"),
        );
        assert_eq!(a.to_string(), b.to_string(), "models must be stable");
    }

    #[test]
    fn concrete_witness_respects_constraints() {
        let mut engine = Engine::new(EngineConfig::default());
        let outcome = engine.explore(|exec| {
            let x = exec.fresh_word("x");
            let c100 = exec.const_word(100);
            let lt = exec.ult(x, c100);
            exec.assume(lt);
            let c50 = exec.const_word(50);
            let gt50 = exec.ult(c50, x);
            exec.concrete_witness(x, &[gt50])
        });
        let witness = outcome.paths[0].value.expect("feasible");
        assert!(witness > 50 && witness < 100, "witness {witness}");
    }
}
