//! Tseitin bit-blasting of bit-vector terms to CNF.
//!
//! Each term is translated once per [`Blaster`]; the resulting literals are
//! cached by [`TermId`], which makes repeated feasibility queries over a
//! growing path condition incremental — exactly the access pattern of the
//! exploration engine.

use std::collections::HashMap;

use symcosim_sat::{Lit, Solver};

use crate::term::{Node, TermId};
use crate::Context;

/// Translates terms to CNF over a [`Solver`], caching per-term literal
/// vectors.
///
/// # Example
///
/// ```
/// use symcosim_sat::{SolveResult, Solver};
/// use symcosim_symex::blast::Blaster;
/// use symcosim_symex::Context;
///
/// let mut ctx = Context::new();
/// let x = ctx.symbol(8, "x");
/// let c200 = ctx.constant(8, 200);
/// let gt = ctx.ult(c200, x); // 200 < x
/// let mut solver = Solver::new();
/// let mut blaster = Blaster::new();
/// let lit = blaster.bool_lit(&ctx, &mut solver, gt);
/// assert_eq!(solver.solve(&[lit]), SolveResult::Sat);
/// ```
#[derive(Debug, Default)]
pub struct Blaster {
    bits: HashMap<TermId, Vec<Lit>>,
    true_lit: Option<Lit>,
}

impl Blaster {
    /// Creates an empty blaster.
    pub fn new() -> Blaster {
        Blaster::default()
    }

    /// The literal that is constant-true in `solver`.
    pub fn true_lit(&mut self, solver: &mut Solver) -> Lit {
        if let Some(lit) = self.true_lit {
            return lit;
        }
        let lit = Lit::positive(solver.new_var());
        solver.add_clause([lit]);
        self.true_lit = Some(lit);
        lit
    }

    /// The literal that is constant-false in `solver`.
    pub fn false_lit(&mut self, solver: &mut Solver) -> Lit {
        !self.true_lit(solver)
    }

    /// The CNF literal equivalent to a width-1 term.
    ///
    /// # Panics
    ///
    /// Panics if `term` does not have width 1.
    pub fn bool_lit(&mut self, ctx: &Context, solver: &mut Solver, term: TermId) -> Lit {
        assert_eq!(ctx.width(term), 1, "bool_lit needs a width-1 term");
        self.bits(ctx, solver, term)[0]
    }

    /// The CNF literals of `term`, least significant bit first.
    pub fn bits(&mut self, ctx: &Context, solver: &mut Solver, term: TermId) -> Vec<Lit> {
        if let Some(bits) = self.bits.get(&term) {
            return bits.clone();
        }
        let width = ctx.width(term) as usize;
        let result: Vec<Lit> = match ctx.node(term) {
            Node::Const { value, .. } => (0..width)
                .map(|i| {
                    if (value >> i) & 1 == 1 {
                        self.true_lit(solver)
                    } else {
                        self.false_lit(solver)
                    }
                })
                .collect(),
            Node::Symbol { .. } => (0..width)
                .map(|_| Lit::positive(solver.new_var()))
                .collect(),
            Node::Not(a) => {
                let a = self.bits(ctx, solver, a);
                a.into_iter().map(|l| !l).collect()
            }
            Node::And(a, b) => self.bitwise(ctx, solver, a, b, Blaster::and_gate),
            Node::Or(a, b) => self.bitwise(ctx, solver, a, b, Blaster::or_gate),
            Node::Xor(a, b) => self.bitwise(ctx, solver, a, b, Blaster::xor_gate),
            Node::Add(a, b) => {
                let a = self.bits(ctx, solver, a);
                let b = self.bits(ctx, solver, b);
                let cin = self.false_lit(solver);
                self.adder(solver, &a, &b, cin)
            }
            Node::Sub(a, b) => {
                let a = self.bits(ctx, solver, a);
                let b: Vec<Lit> = self.bits(ctx, solver, b).into_iter().map(|l| !l).collect();
                let cin = self.true_lit(solver);
                self.adder(solver, &a, &b, cin)
            }
            Node::Mul(a, b) => {
                let a = self.bits(ctx, solver, a);
                let b = self.bits(ctx, solver, b);
                self.multiplier(solver, &a, &b)
            }
            Node::Shl(a, s) => self.shifter(ctx, solver, a, s, ShiftKind::Left),
            Node::Lshr(a, s) => self.shifter(ctx, solver, a, s, ShiftKind::LogicalRight),
            Node::Ashr(a, s) => self.shifter(ctx, solver, a, s, ShiftKind::ArithmeticRight),
            Node::Eq(a, b) => {
                let a = self.bits(ctx, solver, a);
                let b = self.bits(ctx, solver, b);
                let mut acc = self.true_lit(solver);
                for (x, y) in a.iter().zip(&b) {
                    let diff = self.xor_gate(solver, *x, *y);
                    acc = self.and_gate(solver, acc, !diff);
                }
                vec![acc]
            }
            Node::Ult(a, b) => {
                let a = self.bits(ctx, solver, a);
                let b = self.bits(ctx, solver, b);
                vec![self.less_than(solver, &a, &b)]
            }
            Node::Slt(a, b) => {
                let mut a = self.bits(ctx, solver, a);
                let mut b = self.bits(ctx, solver, b);
                // Signed compare = unsigned compare with inverted sign bits.
                let msb = a.len() - 1;
                a[msb] = !a[msb];
                b[msb] = !b[msb];
                vec![self.less_than(solver, &a, &b)]
            }
            Node::Ite(c, t, e) => {
                let c = self.bool_lit(ctx, solver, c);
                let t = self.bits(ctx, solver, t);
                let e = self.bits(ctx, solver, e);
                t.iter()
                    .zip(&e)
                    .map(|(x, y)| self.mux_gate(solver, c, *x, *y))
                    .collect()
            }
            Node::Extract { term, hi, lo } => {
                let source = self.bits(ctx, solver, term);
                source[lo as usize..=hi as usize].to_vec()
            }
            Node::Concat { hi, lo } => {
                let mut bits = self.bits(ctx, solver, lo);
                bits.extend(self.bits(ctx, solver, hi));
                bits
            }
            Node::ZeroExt { term, .. } => {
                let mut bits = self.bits(ctx, solver, term);
                let f = self.false_lit(solver);
                bits.resize(width, f);
                bits
            }
            Node::SignExt { term, .. } => {
                let mut bits = self.bits(ctx, solver, term);
                let sign = *bits.last().expect("non-empty term");
                bits.resize(width, sign);
                bits
            }
        };
        debug_assert_eq!(result.len(), width);
        self.bits.insert(term, result.clone());
        result
    }

    fn bitwise(
        &mut self,
        ctx: &Context,
        solver: &mut Solver,
        a: TermId,
        b: TermId,
        gate: fn(&mut Blaster, &mut Solver, Lit, Lit) -> Lit,
    ) -> Vec<Lit> {
        let a = self.bits(ctx, solver, a);
        let b = self.bits(ctx, solver, b);
        a.iter()
            .zip(&b)
            .map(|(x, y)| gate(self, solver, *x, *y))
            .collect()
    }

    /// `out = a ∧ b` as a fresh Tseitin-defined literal.
    fn and_gate(&mut self, solver: &mut Solver, a: Lit, b: Lit) -> Lit {
        let t = self.true_lit(solver);
        if a == t {
            return b;
        }
        if b == t {
            return a;
        }
        if a == !t || b == !t {
            return !t;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return !t;
        }
        let value = solver.phase_value(a) && solver.phase_value(b);
        let out = Lit::positive(solver.new_var());
        solver.set_phase(out.var(), value);
        solver.add_clause([!out, a]);
        solver.add_clause([!out, b]);
        solver.add_clause([out, !a, !b]);
        out
    }

    /// `out = a ∨ b`.
    fn or_gate(&mut self, solver: &mut Solver, a: Lit, b: Lit) -> Lit {
        !self.and_gate(solver, !a, !b)
    }

    /// `out = a ⊕ b`.
    fn xor_gate(&mut self, solver: &mut Solver, a: Lit, b: Lit) -> Lit {
        let t = self.true_lit(solver);
        if a == t {
            return !b;
        }
        if b == t {
            return !a;
        }
        if a == !t {
            return b;
        }
        if b == !t {
            return a;
        }
        if a == b {
            return !t;
        }
        if a == !b {
            return t;
        }
        let value = solver.phase_value(a) != solver.phase_value(b);
        let out = Lit::positive(solver.new_var());
        solver.set_phase(out.var(), value);
        solver.add_clause([!out, a, b]);
        solver.add_clause([!out, !a, !b]);
        solver.add_clause([out, !a, b]);
        solver.add_clause([out, a, !b]);
        out
    }

    /// `out = if c { t } else { e }`.
    fn mux_gate(&mut self, solver: &mut Solver, c: Lit, t: Lit, e: Lit) -> Lit {
        let tl = self.true_lit(solver);
        if c == tl {
            return t;
        }
        if c == !tl {
            return e;
        }
        if t == e {
            return t;
        }
        let then_part = self.and_gate(solver, c, t);
        let else_part = self.and_gate(solver, !c, e);
        self.or_gate(solver, then_part, else_part)
    }

    /// Ripple-carry adder with carry-in; returns the sum bits.
    fn adder(&mut self, solver: &mut Solver, a: &[Lit], b: &[Lit], cin: Lit) -> Vec<Lit> {
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (x, y) in a.iter().zip(b) {
            let xy = self.xor_gate(solver, *x, *y);
            sum.push(self.xor_gate(solver, xy, carry));
            // carry' = (x ∧ y) ∨ (carry ∧ (x ⊕ y))
            let and_xy = self.and_gate(solver, *x, *y);
            let and_c = self.and_gate(solver, carry, xy);
            carry = self.or_gate(solver, and_xy, and_c);
        }
        sum
    }

    /// Shift-and-add multiplier (low half).
    fn multiplier(&mut self, solver: &mut Solver, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let width = a.len();
        let f = self.false_lit(solver);
        let mut acc = vec![f; width];
        for (i, &ai) in a.iter().enumerate() {
            // Partial product: (b << i) masked by a_i.
            let mut partial = vec![f; width];
            for j in i..width {
                partial[j] = self.and_gate(solver, ai, b[j - i]);
            }
            acc = self.adder(solver, &acc, &partial, f);
        }
        acc
    }

    /// Unsigned less-than over raw bit vectors.
    fn less_than(&mut self, solver: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        let mut lt = self.false_lit(solver);
        for (x, y) in a.iter().zip(b) {
            // lt' = (¬x ∧ y) ∨ ((x ≡ y) ∧ lt)
            let strictly = self.and_gate(solver, !*x, *y);
            let diff = self.xor_gate(solver, *x, *y);
            let carried = self.and_gate(solver, !diff, lt);
            lt = self.or_gate(solver, strictly, carried);
        }
        lt
    }

    /// Barrel shifter covering the full shift-amount range.
    fn shifter(
        &mut self,
        ctx: &Context,
        solver: &mut Solver,
        a: TermId,
        amount: TermId,
        kind: ShiftKind,
    ) -> Vec<Lit> {
        let bits = self.bits(ctx, solver, a);
        let shamt = self.bits(ctx, solver, amount);
        let width = bits.len();
        let f = self.false_lit(solver);
        let mut current = bits;
        for (k, &sk) in shamt.iter().enumerate() {
            let step = 1u128 << k.min(127);
            let shifted: Vec<Lit> = if step >= width as u128 {
                match kind {
                    ShiftKind::Left | ShiftKind::LogicalRight => vec![f; width],
                    ShiftKind::ArithmeticRight => {
                        vec![current[width - 1]; width]
                    }
                }
            } else {
                let step = step as usize;
                (0..width)
                    .map(|i| match kind {
                        ShiftKind::Left => {
                            if i >= step {
                                current[i - step]
                            } else {
                                f
                            }
                        }
                        ShiftKind::LogicalRight => {
                            if i + step < width {
                                current[i + step]
                            } else {
                                f
                            }
                        }
                        ShiftKind::ArithmeticRight => {
                            if i + step < width {
                                current[i + step]
                            } else {
                                current[width - 1]
                            }
                        }
                    })
                    .collect()
            };
            current = current
                .iter()
                .zip(&shifted)
                .map(|(keep, shift)| self.mux_gate(solver, sk, *shift, *keep))
                .collect();
        }
        current
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShiftKind {
    Left,
    LogicalRight,
    ArithmeticRight,
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_sat::SolveResult;

    fn check_sat(ctx: &mut Context, cond: TermId) -> bool {
        let mut solver = Solver::new();
        let mut blaster = Blaster::new();
        let lit = blaster.bool_lit(ctx, &mut solver, cond);
        solver.solve(&[lit]) == SolveResult::Sat
    }

    #[test]
    fn addition_inverts() {
        // exists x: x + 3 == 10 (yes), forall-free check of unsat: x + 1 == x (no)
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let three = ctx.constant(8, 3);
        let ten = ctx.constant(8, 10);
        let sum = ctx.add(x, three);
        let cond = ctx.eq(sum, ten);
        assert!(check_sat(&mut ctx, cond));

        let one = ctx.constant(8, 1);
        let inc = ctx.add(x, one);
        let fixed = ctx.eq(inc, x);
        assert!(!check_sat(&mut ctx, fixed));
    }

    #[test]
    fn subtraction_matches_addition() {
        // x - y == 5 && y == 7 => x == 12: check the implication's negation is UNSAT.
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let y = ctx.symbol(8, "y");
        let diff = ctx.sub(x, y);
        let five = ctx.constant(8, 5);
        let seven = ctx.constant(8, 7);
        let twelve = ctx.constant(8, 12);
        let c1 = ctx.eq(diff, five);
        let c2 = ctx.eq(y, seven);
        let x_is_12 = ctx.eq(x, twelve);
        let not_12 = ctx.not(x_is_12);
        let both = ctx.and(c1, c2);
        let counterexample = ctx.and(both, not_12);
        assert!(!check_sat(&mut ctx, counterexample));
    }

    #[test]
    fn multiplication_factors() {
        // exists x,y > 1: x*y == 35 over 8 bits (x=5, y=7).
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let y = ctx.symbol(8, "y");
        let product = ctx.mul(x, y);
        let c35 = ctx.constant(8, 35);
        let one = ctx.constant(8, 1);
        let is35 = ctx.eq(product, c35);
        let x_gt1 = ctx.ult(one, x);
        let y_gt1 = ctx.ult(one, y);
        let t1 = ctx.and(is35, x_gt1);
        let cond = ctx.and(t1, y_gt1);

        let mut solver = Solver::new();
        let mut blaster = Blaster::new();
        let lit = blaster.bool_lit(&ctx, &mut solver, cond);
        assert_eq!(solver.solve(&[lit]), SolveResult::Sat);
        let x_bits = blaster.bits(&ctx, &mut solver, x);
        let x_val: u64 = x_bits
            .iter()
            .enumerate()
            .map(|(i, l)| (solver.model_lit_value(*l).unwrap_or(false) as u64) << i)
            .sum();
        let y_bits = blaster.bits(&ctx, &mut solver, y);
        let y_val: u64 = y_bits
            .iter()
            .enumerate()
            .map(|(i, l)| (solver.model_lit_value(*l).unwrap_or(false) as u64) << i)
            .sum();
        assert_eq!((x_val * y_val) & 0xff, 35);
        assert!(x_val > 1 && y_val > 1);
    }

    #[test]
    fn shifts_against_semantics() {
        // exists x: (x << 2) == 0b100 and x == 1; and shifting by >= width zeroes.
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let s = ctx.symbol(8, "s");
        let shifted = ctx.shl(x, s);
        let eight = ctx.constant(8, 8);
        let nonzero = {
            let zero = ctx.constant(8, 0);
            ctx.ne(shifted, zero)
        };
        let s_ge_8 = ctx.ule(eight, s);
        let cond = ctx.and(nonzero, s_ge_8);
        assert!(
            !check_sat(&mut ctx, cond),
            "shift ≥ width must produce zero"
        );
    }

    #[test]
    fn arithmetic_shift_keeps_sign() {
        // For x with MSB set, (x ashr 200) must be 0xff.
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let s = ctx.symbol(8, "s");
        let shifted = ctx.ashr(x, s);
        let c80 = ctx.constant(8, 0x80);
        let cff = ctx.constant(8, 0xff);
        let c8 = ctx.constant(8, 8);
        let msb_set = {
            let masked = ctx.and(x, c80);
            ctx.eq(masked, c80)
        };
        let wide = ctx.ule(c8, s);
        let not_all_ones = ctx.ne(shifted, cff);
        let t1 = ctx.and(msb_set, wide);
        let cond = ctx.and(t1, not_all_ones);
        assert!(!check_sat(&mut ctx, cond));
    }

    #[test]
    fn signed_unsigned_compare_disagree_on_negatives() {
        // exists x: slt(x, 0) && !ult(x, 0)  — all negative x (ult _ 0 is false).
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let zero = ctx.constant(8, 0);
        let slt = ctx.slt(x, zero);
        let ult = ctx.ult(x, zero);
        let not_ult = ctx.not(ult);
        let cond = ctx.and(slt, not_ult);
        assert!(check_sat(&mut ctx, cond));
    }

    #[test]
    fn ite_selects() {
        let mut ctx = Context::new();
        let c = ctx.symbol(1, "c");
        let a = ctx.constant(8, 11);
        let b = ctx.constant(8, 22);
        let sel = ctx.ite(c, a, b);
        let c33 = ctx.constant(8, 33);
        let bad = ctx.eq(sel, c33);
        assert!(!check_sat(&mut ctx, bad));
        let good = ctx.eq(sel, a);
        assert!(check_sat(&mut ctx, good));
    }

    #[test]
    fn extract_concat_extend() {
        // sign_ext(extract(x, 7, 0), 16) == 0xFFxx exactly when bit 7 is set.
        let mut ctx = Context::new();
        let x = ctx.symbol(16, "x");
        let byte = ctx.extract(x, 7, 0);
        let wide = ctx.sign_ext(byte, 16);
        let hi = ctx.extract(wide, 15, 8);
        let cff = ctx.constant(8, 0xff);
        let high_ones = ctx.eq(hi, cff);
        let bit7 = ctx.extract(x, 7, 7);
        let one1 = ctx.constant(1, 1);
        let msb_set = ctx.eq(bit7, one1);
        // (high_ones XOR msb_set) must be UNSAT.
        let disagree = ctx.xor(high_ones, msb_set);
        assert!(!check_sat(&mut ctx, disagree));
    }
}
