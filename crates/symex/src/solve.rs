//! High-level solver facade: feasibility checks and model extraction.

use std::collections::HashMap;

use symcosim_sat::{Lit, SolveResult, Solver, SolverStats};

use crate::blast::Blaster;
use crate::term::TermId;
use crate::{Context, TestVector};

/// Outcome of a [`SolverBackend::check`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckResult {
    /// The conjunction of conditions is satisfiable.
    Sat,
    /// The conjunction of conditions is unsatisfiable.
    Unsat,
}

impl CheckResult {
    /// `true` for [`CheckResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == CheckResult::Sat
    }
}

/// Hit/miss counters of the feasibility-query memoisation cache
/// (see [`SolverBackend::check_cached`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Queries answered from the cache without touching the solver.
    pub hits: u64,
    /// Queries that had to run the SAT solver.
    pub misses: u64,
}

impl QueryCacheStats {
    /// Component-wise sum, for aggregating per-worker statistics.
    pub fn merge(self, other: QueryCacheStats) -> QueryCacheStats {
        QueryCacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

/// Persistent solver state shared by all feasibility queries of an
/// exploration: one CDCL instance plus the bit-blasting cache.
///
/// Conditions are passed as *assumptions*, so clauses learnt for one path
/// condition accelerate all later queries (the incremental pattern KLEE
/// uses through its solver chain).
///
/// # Example
///
/// ```
/// use symcosim_symex::{Context, SolverBackend};
///
/// let mut ctx = Context::new();
/// let x = ctx.symbol(8, "x");
/// let c5 = ctx.constant(8, 5);
/// let lt = ctx.ult(x, c5);
/// let ge = ctx.not(lt);
///
/// let mut backend = SolverBackend::new();
/// assert!(backend.check(&ctx, &[lt]).is_sat());
/// assert!(backend.check(&ctx, &[ge]).is_sat());
/// assert!(!backend.check(&ctx, &[lt, ge]).is_sat());
/// ```
#[derive(Debug, Default)]
pub struct SolverBackend {
    solver: Solver,
    blaster: Blaster,
    cache: HashMap<Box<[TermId]>, CheckResult>,
    cache_stats: QueryCacheStats,
}

impl SolverBackend {
    /// Creates a fresh backend.
    pub fn new() -> SolverBackend {
        SolverBackend::default()
    }

    /// Checks the conjunction of width-1 `conditions` for satisfiability.
    ///
    /// On [`CheckResult::Sat`] a model is retained and can be inspected
    /// with [`SolverBackend::value_of`] or exported with
    /// [`SolverBackend::test_vector`].
    ///
    /// # Panics
    ///
    /// Panics if any condition does not have width 1.
    pub fn check(&mut self, ctx: &Context, conditions: &[TermId]) -> CheckResult {
        let assumptions: Vec<Lit> = conditions
            .iter()
            .map(|&c| self.blaster.bool_lit(ctx, &mut self.solver, c))
            .collect();
        match self.solver.solve(&assumptions) {
            SolveResult::Sat => CheckResult::Sat,
            SolveResult::Unsat => CheckResult::Unsat,
        }
    }

    /// Checks feasibility like [`check`](SolverBackend::check), memoising
    /// the answer per *condition set*.
    ///
    /// The cache key is the sorted, deduplicated list of condition terms,
    /// so the same conjunction asked in any order (as happens when sibling
    /// paths replay a shared prefix) is answered without re-running the
    /// solver. Because hash-consing makes term identity structural,
    /// equal keys mean equal formulas.
    ///
    /// A cache hit does **not** refresh the solver model: use the plain
    /// [`check`](SolverBackend::check) before [`value_of`](Self::value_of)
    /// or [`test_vector`](Self::test_vector). This method is meant for
    /// feasibility-only call sites (branch decisions, assumptions).
    pub fn check_cached(&mut self, ctx: &Context, conditions: &[TermId]) -> CheckResult {
        let mut key: Vec<TermId> = conditions.to_vec();
        key.sort_unstable();
        key.dedup();
        let key: Box<[TermId]> = key.into_boxed_slice();
        if let Some(&cached) = self.cache.get(&key) {
            self.cache_stats.hits += 1;
            return cached;
        }
        self.cache_stats.misses += 1;
        let result = self.check(ctx, conditions);
        self.cache.insert(key, result);
        result
    }

    /// The value of `term` in the most recent model.
    ///
    /// Returns `None` if no successful [`check`](SolverBackend::check) has
    /// happened yet, **or** if no bit of `term` was constrained by that
    /// check — i.e. the term never reached the solver, so the model is
    /// silent about it and any value would do. When at least one bit is
    /// constrained, the remaining unconstrained bits read as zero.
    pub fn value_of(&mut self, ctx: &Context, term: TermId) -> Option<u64> {
        let bits = self.blaster.bits(ctx, &mut self.solver, term);
        let mut any = false;
        let mut value = 0u64;
        for (i, lit) in bits.iter().enumerate() {
            match self.solver.model_lit_value(*lit) {
                Some(true) => {
                    value |= 1 << i;
                    any = true;
                }
                Some(false) => any = true,
                None => {}
            }
        }
        if any {
            Some(value)
        } else {
            None
        }
    }

    /// Exports the most recent model as a [`TestVector`] covering every
    /// symbol registered in `ctx`.
    pub fn test_vector(&mut self, ctx: &Context) -> TestVector {
        let mut vector = TestVector::new();
        for &sym in ctx.symbols() {
            let name = ctx.symbol_name(sym).expect("registered symbol").to_string();
            let width = ctx.width(sym);
            let value = self.value_of(ctx, sym).unwrap_or(0);
            vector.push(name, width, value);
        }
        vector
    }

    /// Statistics of the underlying SAT solver.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Hit/miss counters of the [`check_cached`](Self::check_cached)
    /// memoisation cache.
    pub fn query_cache_stats(&self) -> QueryCacheStats {
        self.cache_stats
    }
}

/// Solves `conditions` on a *fresh* backend and extracts a test vector for
/// `extra_symbols` plus every path symbol in the conditions.
///
/// Using a throw-away solver makes the extracted model independent of query
/// history, so the same path yields the same vector no matter which engine
/// or worker explored it.
pub(crate) fn fresh_model_vector(
    ctx: &Context,
    conditions: &[TermId],
    symbols: &[TermId],
) -> Option<TestVector> {
    let mut backend = SolverBackend::new();
    if !backend.check(ctx, conditions).is_sat() {
        return None;
    }
    let mut vector = TestVector::new();
    for &sym in symbols {
        let name = ctx.symbol_name(sym)?.to_string();
        let width = ctx.width(sym);
        let value = backend.value_of(ctx, sym).unwrap_or(0);
        vector.push(name, width, value);
    }
    Some(vector)
}

/// Solves `conditions` on a fresh backend and evaluates `term` in the
/// resulting model. `None` if the conditions are infeasible or no bit of
/// `term` was constrained (same contract as [`SolverBackend::value_of`]).
pub(crate) fn fresh_model_value(ctx: &Context, conditions: &[TermId], term: TermId) -> Option<u64> {
    let mut backend = SolverBackend::new();
    if !backend.check(ctx, conditions).is_sat() {
        return None;
    }
    backend.value_of(ctx, term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};

    #[test]
    fn model_satisfies_condition() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let sum = ctx.add(x, y);
        let target = ctx.constant(32, 0x1234_5678);
        let cond = ctx.eq(sum, target);

        let mut backend = SolverBackend::new();
        assert!(backend.check(&ctx, &[cond]).is_sat());
        let vector = backend.test_vector(&ctx);
        let env: Env = vector.to_env();
        assert_eq!(
            eval(&ctx, cond, &env),
            1,
            "model {vector} violates the condition"
        );
    }

    #[test]
    fn unsat_conjunction_detected() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let is1 = ctx.eq(x, c1);
        let is2 = ctx.eq(x, c2);
        let mut backend = SolverBackend::new();
        assert!(backend.check(&ctx, &[is1]).is_sat());
        assert!(backend.check(&ctx, &[is2]).is_sat());
        assert!(!backend.check(&ctx, &[is1, is2]).is_sat());
        // Still usable afterwards.
        assert!(backend.check(&ctx, &[is1]).is_sat());
        assert_eq!(backend.value_of(&ctx, x), Some(1));
    }

    #[test]
    fn no_model_before_check() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let mut backend = SolverBackend::new();
        assert_eq!(backend.value_of(&ctx, x), None);
    }

    #[test]
    fn value_of_unconstrained_symbol_is_none() {
        // `value_of` answers None exactly when *no* bit of the term was
        // constrained by the last check — here `y` never reached the
        // solver, so the model is silent about it.
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let y = ctx.symbol(8, "y");
        let c7 = ctx.constant(8, 7);
        let cond = ctx.eq(x, c7);
        let mut backend = SolverBackend::new();
        assert!(backend.check(&ctx, &[cond]).is_sat());
        assert_eq!(backend.value_of(&ctx, x), Some(7));
        assert_eq!(backend.value_of(&ctx, y), None, "y has no constrained bit");
    }

    #[test]
    fn check_cached_memoises_condition_sets() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let is1 = ctx.eq(x, c1);
        let is2 = ctx.eq(x, c2);

        let mut backend = SolverBackend::new();
        assert!(backend.check_cached(&ctx, &[is1]).is_sat());
        assert!(!backend.check_cached(&ctx, &[is1, is2]).is_sat());
        assert_eq!(backend.query_cache_stats().misses, 2);
        assert_eq!(backend.query_cache_stats().hits, 0);

        // Same sets again — order and duplicates don't matter.
        assert!(backend.check_cached(&ctx, &[is1]).is_sat());
        assert!(!backend.check_cached(&ctx, &[is2, is1]).is_sat());
        assert!(!backend.check_cached(&ctx, &[is1, is2, is1]).is_sat());
        assert_eq!(backend.query_cache_stats().misses, 2);
        assert_eq!(backend.query_cache_stats().hits, 3);
    }

    #[test]
    fn fresh_model_helpers_are_history_independent() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c9 = ctx.constant(8, 9);
        let cond = ctx.eq(x, c9);
        assert_eq!(fresh_model_value(&ctx, &[cond], x), Some(9));
        let vector = fresh_model_vector(&ctx, &[cond], &[x]).expect("sat");
        assert_eq!(eval(&ctx, x, &vector.to_env()), 9);
        let not_cond = ctx.not(cond);
        assert_eq!(fresh_model_value(&ctx, &[cond, not_cond], x), None);
    }
}
