//! High-level solver facade: feasibility checks and model extraction.

use std::collections::HashMap;

use symcosim_sat::{CoreReplayUnit, Lit, SolveResult, Solver, SolverStats};

use crate::audit::{ProofAuditStats, ProofAuditor};
use crate::blast::Blaster;
use crate::chain::{ChainSeed, SolverChain, SolverChainStats};
use crate::term::TermId;
use crate::{Context, TestVector};

/// Outcome of a [`SolverBackend::check`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckResult {
    /// The conjunction of conditions is satisfiable.
    Sat,
    /// The conjunction of conditions is unsatisfiable.
    Unsat,
}

impl CheckResult {
    /// `true` for [`CheckResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == CheckResult::Sat
    }
}

/// Hit/miss counters of the feasibility-query memoisation cache
/// (see [`SolverBackend::check_cached`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Queries answered from the cache without touching the solver.
    pub hits: u64,
    /// Queries that had to run the SAT solver.
    pub misses: u64,
}

impl QueryCacheStats {
    /// Component-wise sum, for aggregating per-worker statistics.
    pub fn merge(self, other: QueryCacheStats) -> QueryCacheStats {
        QueryCacheStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
        }
    }
}

impl std::fmt::Display for QueryCacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hits={} misses={}", self.hits, self.misses)
    }
}

impl std::str::FromStr for QueryCacheStats {
    type Err = String;

    /// Parses the `Display` form back; the round trip pins the printed
    /// field set to the struct.
    fn from_str(s: &str) -> Result<QueryCacheStats, String> {
        let mut stats = QueryCacheStats::default();
        let mut seen = 0u32;
        for pair in s.split_whitespace() {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed cache stat `{pair}`"))?;
            let value: u64 = value
                .parse()
                .map_err(|_| format!("non-numeric cache stat `{pair}`"))?;
            match key {
                "hits" => stats.hits = value,
                "misses" => stats.misses = value,
                other => return Err(format!("unknown cache stat `{other}`")),
            }
            seen += 1;
        }
        if seen != 2 {
            return Err(format!("expected 2 cache stats, found {seen}"));
        }
        Ok(stats)
    }
}

/// Persistent solver state shared by all feasibility queries of an
/// exploration: one CDCL instance plus the bit-blasting cache.
///
/// Conditions are passed as *assumptions*, so clauses learnt for one path
/// condition accelerate all later queries (the incremental pattern KLEE
/// uses through its solver chain).
///
/// # Example
///
/// ```
/// use symcosim_symex::{Context, SolverBackend};
///
/// let mut ctx = Context::new();
/// let x = ctx.symbol(8, "x");
/// let c5 = ctx.constant(8, 5);
/// let lt = ctx.ult(x, c5);
/// let ge = ctx.not(lt);
///
/// let mut backend = SolverBackend::new();
/// assert!(backend.check(&ctx, &[lt]).is_sat());
/// assert!(backend.check(&ctx, &[ge]).is_sat());
/// assert!(!backend.check(&ctx, &[lt, ge]).is_sat());
/// ```
#[derive(Debug, Default)]
pub struct SolverBackend {
    solver: Solver,
    blaster: Blaster,
    cache: HashMap<Box<[TermId]>, CheckResult>,
    cache_stats: QueryCacheStats,
    /// The KLEE-style solver chain (see [`crate::chain`]); `None` when
    /// disabled, in which case cache misses solve the full condition set
    /// directly.
    chain: Option<SolverChain>,
    /// The proof auditor (see [`crate::audit`]); `None` unless auditing
    /// was requested, in which case the solver logs proofs and every
    /// answer is replayed through the independent checker.
    auditor: Option<Box<ProofAuditor>>,
    /// Bumped on every query; a model is readable only while
    /// `model_generation == Some(generation)`, i.e. the most recent query
    /// was a plain [`check`](Self::check) that answered Sat. This is what
    /// prevents [`value_of`](Self::value_of) from reading a *previous*
    /// query's stale model after a cached or chain-routed answer.
    generation: u64,
    model_generation: Option<u64>,
    /// The shared path-condition prefix maintained by the engines (see
    /// [`prefix_sync`](Self::prefix_sync)): queries via
    /// [`check_suffix`](Self::check_suffix) check `prefix ∪ suffix`.
    /// Purely a bookkeeping convenience — the prefix and suffix are
    /// recombined into the same sorted condition-set key `check_cached`
    /// would build, so verdicts and caching are unchanged; the speed
    /// comes from the solver retaining the prefix's propagation trail
    /// across consecutive queries.
    path_prefix: Vec<TermId>,
}

impl SolverBackend {
    /// Creates a fresh backend with the solver chain enabled.
    pub fn new() -> SolverBackend {
        SolverBackend::with_chain(true)
    }

    /// Creates a fresh backend, with the KLEE-style solver chain
    /// (independence slicing + counterexample/model caching, see
    /// [`crate::chain`]) enabled or disabled. The chain changes how
    /// [`check_cached`](Self::check_cached) answers are computed, never
    /// what they are.
    pub fn with_chain(enabled: bool) -> SolverBackend {
        SolverBackend::with_options(enabled, false)
    }

    /// Creates a fresh backend with the solver chain and proof auditing
    /// each enabled or disabled. With `audit` on, the SAT solver logs a
    /// clausal proof and every answer — including every chain
    /// cache-producing solve — is re-verified by the independent checker
    /// (see [`crate::audit`]). Auditing never changes an answer; it only
    /// counts certifications and failures
    /// ([`proof_audit_stats`](Self::proof_audit_stats)).
    pub fn with_options(chain: bool, audit: bool) -> SolverBackend {
        let mut backend = SolverBackend {
            chain: chain.then(SolverChain::new),
            ..SolverBackend::default()
        };
        if audit {
            backend.solver.enable_proof();
            backend.auditor = Some(Box::default());
        }
        backend
    }

    /// Creates a fresh backend with the solver chain, proof auditing, and
    /// incremental solving (assumption-prefix retention, see
    /// [`set_incremental`](Self::set_incremental)) each enabled or
    /// disabled.
    pub fn with_config(chain: bool, audit: bool, incremental: bool) -> SolverBackend {
        let mut backend = SolverBackend::with_options(chain, audit);
        backend.set_incremental(incremental);
        backend
    }

    /// Enables or disables incremental solving: with it on (the default),
    /// the underlying solver retains the propagation trail of the
    /// assumption prefix consecutive queries share, so prefix-growing
    /// query streams — the shape path exploration produces — skip
    /// re-establishing the shared conditions. Answers are identical
    /// either way; disabling exists for benchmarking and differential
    /// testing.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.solver.set_assumption_reuse(enabled);
    }

    /// Whether incremental solving is enabled.
    pub fn incremental(&self) -> bool {
        self.solver.assumption_reuse()
    }

    /// Enables or disables the solver chain's abstract-interpretation
    /// preflight stage (on by default): condition sets whose conjunction
    /// is statically forced are answered before any slicing or solver
    /// work. Preflight is sound, so answers are identical either way;
    /// disabling exists for benchmarking and differential testing. A
    /// no-op when the chain itself is disabled.
    pub fn set_preflight(&mut self, enabled: bool) {
        if let Some(chain) = &mut self.chain {
            chain.set_preflight(enabled);
        }
    }

    /// Whether the chain's preflight stage is enabled (`false` when the
    /// chain itself is disabled).
    pub fn preflight(&self) -> bool {
        self.chain
            .as_ref()
            .is_some_and(SolverChain::preflight_enabled)
    }

    /// Replaces the tracked path prefix with `constraints` (the engine's
    /// current path-condition set). Cheap when nothing changed.
    pub fn prefix_sync(&mut self, constraints: &[TermId]) {
        if self.path_prefix != constraints {
            self.path_prefix.clear();
            self.path_prefix.extend_from_slice(constraints);
        }
    }

    /// Appends one condition to the tracked path prefix (the engine took
    /// a branch).
    pub fn prefix_push(&mut self, condition: TermId) {
        self.path_prefix.push(condition);
    }

    /// Retracts the tracked path prefix to `len` conditions (the engine
    /// backtracked to a shallower fork point).
    pub fn prefix_truncate(&mut self, len: usize) {
        self.path_prefix.truncate(len);
    }

    /// Current length of the tracked path prefix, in conditions.
    pub fn prefix_len(&self) -> usize {
        self.path_prefix.len()
    }

    /// Checks the conjunction of the tracked path prefix and `suffix`.
    ///
    /// Exactly equivalent to [`check_cached`](Self::check_cached) on
    /// `prefix ∪ suffix` — same cache key, same verdict — but lets
    /// engines phrase per-path query streams as "prefix + one new
    /// condition", which is the access pattern the incremental solver
    /// core rewards.
    pub fn check_suffix(&mut self, ctx: &Context, suffix: &[TermId]) -> CheckResult {
        let mut conditions = std::mem::take(&mut self.path_prefix);
        let prefix_len = conditions.len();
        conditions.extend_from_slice(suffix);
        let result = self.check_cached(ctx, &conditions);
        conditions.truncate(prefix_len);
        self.path_prefix = conditions;
        result
    }

    /// Checks the conjunction of width-1 `conditions` for satisfiability.
    ///
    /// On [`CheckResult::Sat`] a model is retained and can be inspected
    /// with [`SolverBackend::value_of`] or exported with
    /// [`SolverBackend::test_vector`].
    ///
    /// # Panics
    ///
    /// Panics if any condition does not have width 1.
    pub fn check(&mut self, ctx: &Context, conditions: &[TermId]) -> CheckResult {
        self.generation += 1;
        let assumptions: Vec<Lit> = conditions
            .iter()
            .map(|&c| self.blaster.bool_lit(ctx, &mut self.solver, c))
            .collect();
        match self.solver.solve(&assumptions) {
            SolveResult::Sat => {
                if let Some(auditor) = self.auditor.as_mut() {
                    auditor.audit_sat(&mut self.solver);
                }
                self.model_generation = Some(self.generation);
                CheckResult::Sat
            }
            SolveResult::Unsat => {
                if let Some(auditor) = self.auditor.as_mut() {
                    auditor.audit_unsat(&mut self.solver);
                }
                self.model_generation = None;
                CheckResult::Unsat
            }
        }
    }

    /// Checks feasibility like [`check`](SolverBackend::check), memoising
    /// the answer per *condition set*.
    ///
    /// The cache key is the sorted, deduplicated list of condition terms,
    /// so the same conjunction asked in any order (as happens when sibling
    /// paths replay a shared prefix) is answered without re-running the
    /// solver. Because hash-consing makes term identity structural,
    /// equal keys mean equal formulas. Cache misses are answered by the
    /// solver chain when it is enabled (see
    /// [`with_chain`](Self::with_chain)), and by a direct full-set solve
    /// otherwise.
    ///
    /// `check_cached` never leaves a readable model behind — after it,
    /// [`value_of`](Self::value_of) and [`test_vector`](Self::test_vector)
    /// report no model until the next plain [`check`](Self::check). This
    /// method is meant for feasibility-only call sites (branch decisions,
    /// assumptions).
    pub fn check_cached(&mut self, ctx: &Context, conditions: &[TermId]) -> CheckResult {
        // Any answer given here bypasses (parts of) the solver, so
        // whatever model the solver still holds no longer matches the
        // most recent query: invalidate it.
        self.generation += 1;
        let mut key: Vec<TermId> = conditions.to_vec();
        key.sort_unstable();
        key.dedup();
        let key: Box<[TermId]> = key.into_boxed_slice();
        if let Some(&cached) = self.cache.get(&key) {
            self.cache_stats.hits += 1;
            return cached;
        }
        self.cache_stats.misses += 1;
        let result = match self.chain.as_mut() {
            Some(chain) => chain.check(
                ctx,
                &mut self.solver,
                &mut self.blaster,
                &key,
                self.auditor.as_deref_mut(),
            ),
            None => {
                let assumptions: Vec<Lit> = key
                    .iter()
                    .map(|&c| self.blaster.bool_lit(ctx, &mut self.solver, c))
                    .collect();
                match self.solver.solve(&assumptions) {
                    SolveResult::Sat => {
                        if let Some(auditor) = self.auditor.as_mut() {
                            auditor.audit_sat(&mut self.solver);
                        }
                        CheckResult::Sat
                    }
                    SolveResult::Unsat => {
                        if let Some(auditor) = self.auditor.as_mut() {
                            auditor.audit_unsat(&mut self.solver);
                        }
                        CheckResult::Unsat
                    }
                }
            }
        };
        self.cache.insert(key, result);
        result
    }

    /// The value of `term` in the most recent model.
    ///
    /// Returns `None` if the most recent query was not a satisfiable
    /// plain [`check`](SolverBackend::check) — in particular after any
    /// [`check_cached`](Self::check_cached), whose answers don't refresh
    /// the model — **or** if no bit of `term` was constrained by that
    /// check, i.e. the term never reached the solver, so the model is
    /// silent about it and any value would do. When at least one bit is
    /// constrained, the remaining unconstrained bits read as zero.
    pub fn value_of(&mut self, ctx: &Context, term: TermId) -> Option<u64> {
        if self.model_generation != Some(self.generation) {
            return None;
        }
        let bits = self.blaster.bits(ctx, &mut self.solver, term);
        let mut any = false;
        let mut value = 0u64;
        for (i, lit) in bits.iter().enumerate() {
            match self.solver.model_lit_value(*lit) {
                Some(true) => {
                    value |= 1 << i;
                    any = true;
                }
                Some(false) => any = true,
                None => {}
            }
        }
        if any {
            Some(value)
        } else {
            None
        }
    }

    /// Exports the most recent model as a [`TestVector`] covering every
    /// symbol registered in `ctx`. Symbols without a readable model value
    /// (see [`value_of`](Self::value_of)) export as zero, so this is only
    /// meaningful right after a satisfiable plain
    /// [`check`](Self::check).
    pub fn test_vector(&mut self, ctx: &Context) -> TestVector {
        let mut vector = TestVector::new();
        for &sym in ctx.symbols() {
            let name = ctx.symbol_name(sym).expect("registered symbol").to_string();
            let width = ctx.width(sym);
            let value = self.value_of(ctx, sym).unwrap_or(0);
            vector.push(name, width, value);
        }
        vector
    }

    /// Statistics of the underlying SAT solver.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Hit/miss counters of the [`check_cached`](Self::check_cached)
    /// memoisation cache.
    pub fn query_cache_stats(&self) -> QueryCacheStats {
        self.cache_stats
    }

    /// Counters of the solver chain. All zero when the chain is disabled
    /// (every cache miss then solves directly).
    pub fn solver_chain_stats(&self) -> SolverChainStats {
        self.chain
            .as_ref()
            .map(SolverChain::stats)
            .unwrap_or_default()
    }

    /// Counters of the proof auditor. All zero when auditing is off.
    pub fn proof_audit_stats(&self) -> ProofAuditStats {
        self.auditor.as_ref().map(|a| a.stats()).unwrap_or_default()
    }

    /// The first audit failure message, if any answer failed to certify.
    pub fn proof_audit_failure(&self) -> Option<&str> {
        self.auditor.as_ref().and_then(|a| a.first_failure())
    }

    /// Drains the conflict cones certified so far, for dumping into an
    /// offline-verifiable audit artifact. Empty when auditing is off.
    pub fn take_audit_units(&mut self) -> Vec<CoreReplayUnit> {
        self.auditor
            .as_mut()
            .map(|a| a.take_units())
            .unwrap_or_default()
    }

    /// Exports the solver chain's caches as a portable [`ChainSeed`]
    /// (empty when the chain is disabled). See [`ChainSeed`] for when
    /// re-importing it is sound.
    pub fn export_chain_seed(&self) -> ChainSeed {
        self.chain
            .as_ref()
            .map(SolverChain::export_seed)
            .unwrap_or_default()
    }

    /// Pre-warms the solver chain from a seed exported by an identical
    /// run; a no-op when the chain is disabled. The chain re-validates
    /// models and only short-circuits identically-keyed components, so
    /// answers are unchanged — only cheaper.
    pub fn import_chain_seed(&mut self, seed: &ChainSeed) {
        if let Some(chain) = self.chain.as_mut() {
            chain.import_seed(seed);
        }
    }
}

/// Solves `conditions` on a *fresh* backend and extracts a test vector for
/// `extra_symbols` plus every path symbol in the conditions.
///
/// Using a throw-away solver makes the extracted model independent of query
/// history, so the same path yields the same vector no matter which engine
/// or worker explored it.
pub(crate) fn fresh_model_vector(
    ctx: &Context,
    conditions: &[TermId],
    symbols: &[TermId],
) -> Option<TestVector> {
    let mut backend = SolverBackend::new();
    if !backend.check(ctx, conditions).is_sat() {
        return None;
    }
    let mut vector = TestVector::new();
    for &sym in symbols {
        let name = ctx.symbol_name(sym)?.to_string();
        let width = ctx.width(sym);
        let value = backend.value_of(ctx, sym).unwrap_or(0);
        vector.push(name, width, value);
    }
    Some(vector)
}

/// Solves `conditions` on a fresh backend and evaluates `term` in the
/// resulting model. `None` if the conditions are infeasible or no bit of
/// `term` was constrained (same contract as [`SolverBackend::value_of`]).
pub(crate) fn fresh_model_value(ctx: &Context, conditions: &[TermId], term: TermId) -> Option<u64> {
    let mut backend = SolverBackend::new();
    if !backend.check(ctx, conditions).is_sat() {
        return None;
    }
    backend.value_of(ctx, term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};

    #[test]
    fn query_cache_stats_display_round_trips() {
        let stats = QueryCacheStats {
            hits: 123,
            misses: 45,
        };
        let printed = stats.to_string();
        assert_eq!(printed, "hits=123 misses=45");
        let parsed: QueryCacheStats = printed.parse().expect("display form parses");
        assert_eq!(parsed, stats, "Display must carry every field");
        assert!("hits=1".parse::<QueryCacheStats>().is_err());
        assert!("hits=1 misses=nope".parse::<QueryCacheStats>().is_err());
        assert!("hits=1 bogus=2".parse::<QueryCacheStats>().is_err());
    }

    #[test]
    fn backend_chain_seed_round_trips_across_backends() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let x1 = ctx.eq(x, c1);
        let x2 = ctx.eq(x, c2);

        let mut cold = SolverBackend::new();
        assert!(cold.check_cached(&ctx, &[x1]).is_sat());
        assert!(!cold.check_cached(&ctx, &[x1, x2]).is_sat());
        let seed = cold.export_chain_seed();
        assert!(!seed.is_empty());

        // Same term graph, fresh backend: the warm chain answers without
        // a single SAT solve.
        let mut warm = SolverBackend::new();
        warm.import_chain_seed(&seed);
        assert!(warm.check_cached(&ctx, &[x1]).is_sat());
        assert!(!warm.check_cached(&ctx, &[x1, x2]).is_sat());
        assert_eq!(warm.solver_chain_stats().solves, 0);

        // A chain-disabled backend exports an empty seed and ignores
        // imports.
        let mut direct = SolverBackend::with_chain(false);
        direct.import_chain_seed(&seed);
        assert!(direct.export_chain_seed().is_empty());
        assert!(direct.check_cached(&ctx, &[x1]).is_sat());
    }

    #[test]
    fn model_satisfies_condition() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let sum = ctx.add(x, y);
        let target = ctx.constant(32, 0x1234_5678);
        let cond = ctx.eq(sum, target);

        let mut backend = SolverBackend::new();
        assert!(backend.check(&ctx, &[cond]).is_sat());
        let vector = backend.test_vector(&ctx);
        let env: Env = vector.to_env();
        assert_eq!(
            eval(&ctx, cond, &env),
            1,
            "model {vector} violates the condition"
        );
    }

    #[test]
    fn unsat_conjunction_detected() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let is1 = ctx.eq(x, c1);
        let is2 = ctx.eq(x, c2);
        let mut backend = SolverBackend::new();
        assert!(backend.check(&ctx, &[is1]).is_sat());
        assert!(backend.check(&ctx, &[is2]).is_sat());
        assert!(!backend.check(&ctx, &[is1, is2]).is_sat());
        // Still usable afterwards.
        assert!(backend.check(&ctx, &[is1]).is_sat());
        assert_eq!(backend.value_of(&ctx, x), Some(1));
    }

    #[test]
    fn no_model_before_check() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let mut backend = SolverBackend::new();
        assert_eq!(backend.value_of(&ctx, x), None);
    }

    #[test]
    fn value_of_unconstrained_symbol_is_none() {
        // `value_of` answers None exactly when *no* bit of the term was
        // constrained by the last check — here `y` never reached the
        // solver, so the model is silent about it.
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let y = ctx.symbol(8, "y");
        let c7 = ctx.constant(8, 7);
        let cond = ctx.eq(x, c7);
        let mut backend = SolverBackend::new();
        assert!(backend.check(&ctx, &[cond]).is_sat());
        assert_eq!(backend.value_of(&ctx, x), Some(7));
        assert_eq!(backend.value_of(&ctx, y), None, "y has no constrained bit");
    }

    #[test]
    fn check_cached_memoises_condition_sets() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let is1 = ctx.eq(x, c1);
        let is2 = ctx.eq(x, c2);

        let mut backend = SolverBackend::new();
        assert!(backend.check_cached(&ctx, &[is1]).is_sat());
        assert!(!backend.check_cached(&ctx, &[is1, is2]).is_sat());
        assert_eq!(backend.query_cache_stats().misses, 2);
        assert_eq!(backend.query_cache_stats().hits, 0);

        // Same sets again — order and duplicates don't matter.
        assert!(backend.check_cached(&ctx, &[is1]).is_sat());
        assert!(!backend.check_cached(&ctx, &[is2, is1]).is_sat());
        assert!(!backend.check_cached(&ctx, &[is1, is2, is1]).is_sat());
        assert_eq!(backend.query_cache_stats().misses, 2);
        assert_eq!(backend.query_cache_stats().hits, 3);
    }

    #[test]
    fn cached_answers_do_not_expose_stale_models() {
        // Regression: a `check_cached` hit used to leave the *previous*
        // query's model readable, so asking about x == 1 and then reading
        // the model silently returned the stale x == 2.
        for chain in [false, true] {
            let mut ctx = Context::new();
            let x = ctx.symbol(8, "x");
            let c1 = ctx.constant(8, 1);
            let c2 = ctx.constant(8, 2);
            let is1 = ctx.eq(x, c1);
            let is2 = ctx.eq(x, c2);

            let mut backend = SolverBackend::with_chain(chain);
            assert!(backend.check_cached(&ctx, &[is1]).is_sat());
            assert!(backend.check_cached(&ctx, &[is2]).is_sat());
            // Cache hit: internally the solver still holds the x == 2
            // model, which must not leak out (chain={chain}).
            assert!(backend.check_cached(&ctx, &[is1]).is_sat());
            assert_eq!(
                backend.value_of(&ctx, x),
                None,
                "cached answer exposed a stale model (chain={chain})"
            );
            assert_eq!(backend.test_vector(&ctx).to_env().get("x"), Some(&0));
            // A plain check refreshes the model.
            assert!(backend.check(&ctx, &[is1]).is_sat());
            assert_eq!(backend.value_of(&ctx, x), Some(1));
        }
    }

    #[test]
    fn unsat_check_invalidates_model() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let is1 = ctx.eq(x, c1);
        let is2 = ctx.eq(x, c2);
        let mut backend = SolverBackend::new();
        assert!(backend.check(&ctx, &[is1]).is_sat());
        assert_eq!(backend.value_of(&ctx, x), Some(1));
        assert!(!backend.check(&ctx, &[is1, is2]).is_sat());
        assert_eq!(backend.value_of(&ctx, x), None, "no model after Unsat");
    }

    #[test]
    fn chain_and_direct_backends_agree() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let y = ctx.symbol(8, "y");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let x1 = ctx.eq(x, c1);
        let x2 = ctx.eq(x, c2);
        let y1 = ctx.eq(y, c1);
        let sets: Vec<Vec<TermId>> = vec![
            vec![x1],
            vec![x1, y1],
            vec![x1, x2],
            vec![x1, x2, y1],
            vec![y1],
            vec![x1, y1],
        ];

        let mut chained = SolverBackend::new();
        let mut direct = SolverBackend::with_chain(false);
        for set in &sets {
            assert_eq!(
                chained.check_cached(&ctx, set),
                direct.check_cached(&ctx, set),
                "chain flipped the answer for {set:?}"
            );
        }
        let stats = chained.solver_chain_stats();
        assert!(stats.queries > 0, "misses must route through the chain");
        assert!(
            stats.solves < direct.stats().solves,
            "slicing should save solver calls even on this tiny workload"
        );
        assert_eq!(direct.solver_chain_stats(), Default::default());
    }

    #[test]
    fn audited_backends_certify_every_answer_without_changing_it() {
        // Same query stream, audit on and off, chain on and off: answers
        // are identical, and the audited runs certify every answer.
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let y = ctx.symbol(8, "y");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let x1 = ctx.eq(x, c1);
        let x2 = ctx.eq(x, c2);
        let y1 = ctx.eq(y, c1);
        let sets: Vec<Vec<TermId>> = vec![
            vec![x1],
            vec![x1, y1],
            vec![x1, x2],
            vec![x1, x2, y1],
            vec![y1],
        ];

        for chain in [false, true] {
            let mut plain = SolverBackend::with_options(chain, false);
            let mut audited = SolverBackend::with_options(chain, true);
            for set in &sets {
                assert_eq!(
                    audited.check_cached(&ctx, set),
                    plain.check_cached(&ctx, set),
                    "audit flipped the answer for {set:?} (chain={chain})"
                );
            }
            // Plain checks (model-producing) are audited too.
            assert!(audited.check(&ctx, &[x1]).is_sat());
            assert!(!audited.check(&ctx, &[x1, x2]).is_sat());

            let stats = audited.proof_audit_stats();
            assert_eq!(
                stats.failures,
                0,
                "checker rejected an answer (chain={chain}): {:?}",
                audited.proof_audit_failure()
            );
            assert!(stats.models > 0, "SAT answers were audited");
            assert!(stats.cores > 0, "UNSAT answers were audited");
            assert!(stats.steps > 0 && stats.bytes > 0);
            let units = audited.take_audit_units();
            assert_eq!(units.len() as u64, stats.cores);
            for unit in &units {
                unit.verify().expect("every cone verifies offline");
            }
            assert!(audited.take_audit_units().is_empty(), "units drain once");

            // The unaudited backend never pays for any of this.
            assert_eq!(plain.proof_audit_stats(), ProofAuditStats::default());
            assert!(plain.take_audit_units().is_empty());
        }
    }

    #[test]
    fn fresh_model_helpers_are_history_independent() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c9 = ctx.constant(8, 9);
        let cond = ctx.eq(x, c9);
        assert_eq!(fresh_model_value(&ctx, &[cond], x), Some(9));
        let vector = fresh_model_vector(&ctx, &[cond], &[x]).expect("sat");
        assert_eq!(eval(&ctx, x, &vector.to_env()), 9);
        let not_cond = ctx.not(cond);
        assert_eq!(fresh_model_value(&ctx, &[cond, not_cond], x), None);
    }
}
