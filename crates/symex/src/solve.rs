//! High-level solver facade: feasibility checks and model extraction.

use symcosim_sat::{Lit, SolveResult, Solver, SolverStats};

use crate::blast::Blaster;
use crate::term::TermId;
use crate::{Context, TestVector};

/// Outcome of a [`SolverBackend::check`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckResult {
    /// The conjunction of conditions is satisfiable.
    Sat,
    /// The conjunction of conditions is unsatisfiable.
    Unsat,
}

impl CheckResult {
    /// `true` for [`CheckResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == CheckResult::Sat
    }
}

/// Persistent solver state shared by all feasibility queries of an
/// exploration: one CDCL instance plus the bit-blasting cache.
///
/// Conditions are passed as *assumptions*, so clauses learnt for one path
/// condition accelerate all later queries (the incremental pattern KLEE
/// uses through its solver chain).
///
/// # Example
///
/// ```
/// use symcosim_symex::{Context, SolverBackend};
///
/// let mut ctx = Context::new();
/// let x = ctx.symbol(8, "x");
/// let c5 = ctx.constant(8, 5);
/// let lt = ctx.ult(x, c5);
/// let ge = ctx.not(lt);
///
/// let mut backend = SolverBackend::new();
/// assert!(backend.check(&ctx, &[lt]).is_sat());
/// assert!(backend.check(&ctx, &[ge]).is_sat());
/// assert!(!backend.check(&ctx, &[lt, ge]).is_sat());
/// ```
#[derive(Debug, Default)]
pub struct SolverBackend {
    solver: Solver,
    blaster: Blaster,
}

impl SolverBackend {
    /// Creates a fresh backend.
    pub fn new() -> SolverBackend {
        SolverBackend::default()
    }

    /// Checks the conjunction of width-1 `conditions` for satisfiability.
    ///
    /// On [`CheckResult::Sat`] a model is retained and can be inspected
    /// with [`SolverBackend::value_of`] or exported with
    /// [`SolverBackend::test_vector`].
    ///
    /// # Panics
    ///
    /// Panics if any condition does not have width 1.
    pub fn check(&mut self, ctx: &Context, conditions: &[TermId]) -> CheckResult {
        let assumptions: Vec<Lit> = conditions
            .iter()
            .map(|&c| self.blaster.bool_lit(ctx, &mut self.solver, c))
            .collect();
        match self.solver.solve(&assumptions) {
            SolveResult::Sat => CheckResult::Sat,
            SolveResult::Unsat => CheckResult::Unsat,
        }
    }

    /// The value of `term` in the most recent model.
    ///
    /// Returns `None` if no successful [`check`](SolverBackend::check) has
    /// happened yet. Bits the model does not constrain read as zero.
    pub fn value_of(&mut self, ctx: &Context, term: TermId) -> Option<u64> {
        let bits = self.blaster.bits(ctx, &mut self.solver, term);
        let mut any = false;
        let mut value = 0u64;
        for (i, lit) in bits.iter().enumerate() {
            match self.solver.model_lit_value(*lit) {
                Some(true) => {
                    value |= 1 << i;
                    any = true;
                }
                Some(false) => any = true,
                None => {}
            }
        }
        if any {
            Some(value)
        } else {
            None
        }
    }

    /// Exports the most recent model as a [`TestVector`] covering every
    /// symbol registered in `ctx`.
    pub fn test_vector(&mut self, ctx: &Context) -> TestVector {
        let mut vector = TestVector::new();
        for &sym in ctx.symbols().to_vec().iter() {
            let name = ctx.symbol_name(sym).expect("registered symbol").to_string();
            let width = ctx.width(sym);
            let value = self.value_of(ctx, sym).unwrap_or(0);
            vector.push(name, width, value);
        }
        vector
    }

    /// Statistics of the underlying SAT solver.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};

    #[test]
    fn model_satisfies_condition() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let sum = ctx.add(x, y);
        let target = ctx.constant(32, 0x1234_5678);
        let cond = ctx.eq(sum, target);

        let mut backend = SolverBackend::new();
        assert!(backend.check(&ctx, &[cond]).is_sat());
        let vector = backend.test_vector(&ctx);
        let env: Env = vector.to_env();
        assert_eq!(
            eval(&ctx, cond, &env),
            1,
            "model {vector} violates the condition"
        );
    }

    #[test]
    fn unsat_conjunction_detected() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let c1 = ctx.constant(8, 1);
        let c2 = ctx.constant(8, 2);
        let is1 = ctx.eq(x, c1);
        let is2 = ctx.eq(x, c2);
        let mut backend = SolverBackend::new();
        assert!(backend.check(&ctx, &[is1]).is_sat());
        assert!(backend.check(&ctx, &[is2]).is_sat());
        assert!(!backend.check(&ctx, &[is1, is2]).is_sat());
        // Still usable afterwards.
        assert!(backend.check(&ctx, &[is1]).is_sat());
        assert_eq!(backend.value_of(&ctx, x), Some(1));
    }

    #[test]
    fn no_model_before_check() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let mut backend = SolverBackend::new();
        assert_eq!(backend.value_of(&ctx, x), None);
    }
}
