//! Term graph node representation.

use std::fmt;

/// Bit-width of a term, in bits (1 to 64).
pub type Width = u32;

/// Handle to an interned term in a [`Context`](crate::Context).
///
/// Identical terms are hash-consed, so two `TermId`s are equal exactly when
/// the terms are structurally identical (after simplification). Handles are
/// only meaningful for the context that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// Dense index into the owning context's node table.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A bit-vector expression node.
///
/// All binary bitwise/arithmetic nodes require equal operand widths; the
/// comparison nodes produce width-1 results. Widths are validated by the
/// [`Context`](crate::Context) constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// Constant with `width` bits and value `value` (high bits zero).
    Const {
        /// Bit width.
        width: Width,
        /// The value, left-padded with zero bits.
        value: u64,
    },
    /// A free symbolic input, identified by an interned name.
    Symbol {
        /// Bit width.
        width: Width,
        /// Index into the context's symbol-name table.
        name: u32,
    },
    /// Bitwise NOT.
    Not(TermId),
    /// Bitwise AND.
    And(TermId, TermId),
    /// Bitwise OR.
    Or(TermId, TermId),
    /// Bitwise XOR.
    Xor(TermId, TermId),
    /// Two's-complement addition (wrapping).
    Add(TermId, TermId),
    /// Two's-complement subtraction (wrapping).
    Sub(TermId, TermId),
    /// Multiplication (wrapping, low half).
    Mul(TermId, TermId),
    /// Logical shift left; shifts ≥ width yield zero.
    Shl(TermId, TermId),
    /// Logical shift right; shifts ≥ width yield zero.
    Lshr(TermId, TermId),
    /// Arithmetic shift right; shifts ≥ width replicate the sign bit.
    Ashr(TermId, TermId),
    /// Equality; result has width 1.
    Eq(TermId, TermId),
    /// Unsigned less-than; result has width 1.
    Ult(TermId, TermId),
    /// Signed less-than; result has width 1.
    Slt(TermId, TermId),
    /// If-then-else; the condition has width 1, branches equal widths.
    Ite(TermId, TermId, TermId),
    /// Bit slice `[hi:lo]` (inclusive), width `hi - lo + 1`.
    Extract {
        /// Source term.
        term: TermId,
        /// Most significant extracted bit.
        hi: u32,
        /// Least significant extracted bit.
        lo: u32,
    },
    /// Concatenation; `hi` occupies the most significant bits.
    Concat {
        /// Upper part.
        hi: TermId,
        /// Lower part.
        lo: TermId,
    },
    /// Zero extension to `width`.
    ZeroExt {
        /// Source term (narrower than `width`).
        term: TermId,
        /// Target width.
        width: Width,
    },
    /// Sign extension to `width`.
    SignExt {
        /// Source term (narrower than `width`).
        term: TermId,
        /// Target width.
        width: Width,
    },
}
