//! Symbolic execution engine over fixed-width bit-vectors.
//!
//! This crate provides the KLEE-equivalent services the co-simulation flow
//! of the reproduced paper needs:
//!
//! * [`Context`] — a hash-consed bit-vector term graph with aggressive
//!   constant folding and algebraic simplification,
//! * [`blast::Blaster`] — Tseitin bit-blasting onto the `symcosim-sat`
//!   CDCL solver,
//! * [`Engine`] — path exploration by deterministic re-execution: every
//!   branch on symbolic data forks the path, path constraints are checked
//!   for feasibility incrementally, and each completed path can produce a
//!   concrete [`TestVector`] (KLEE's `.ktest` equivalent),
//! * [`ForkEngine`] — the same exploration by KLEE-style copy-on-write
//!   snapshot forking: a stepped [`ForkTask`] is cloned at decision points
//!   instead of re-run, with a spill-to-replay memory bound,
//! * [`Domain`] — the abstraction that lets the ISS and the RTL core be
//!   written once and executed both concretely (`u32`) and symbolically.
//!
//! # Example: solving for an input
//!
//! ```
//! use symcosim_symex::{Context, SolverBackend};
//!
//! let mut ctx = Context::new();
//! let x = ctx.symbol(32, "x");
//! let c41 = ctx.constant(32, 41);
//! let sum = ctx.add(x, c41);
//! let c42 = ctx.constant(32, 42);
//! let cond = ctx.eq(sum, c42);
//!
//! let mut backend = SolverBackend::new();
//! assert!(backend.check(&mut ctx, &[cond]).is_sat());
//! assert_eq!(backend.value_of(&ctx, x), Some(1));
//! ```
//!
//! # Example: forking exploration
//!
//! ```
//! use symcosim_symex::{Domain, Engine, EngineConfig, PathStatus};
//!
//! let mut engine = Engine::new(EngineConfig::default());
//! let outcome = engine.explore(|exec| {
//!     let x = exec.fresh_word("x");
//!     let zero = exec.const_word(0);
//!     let is_zero = exec.eq_w(x, zero);
//!     if exec.decide(is_zero) { "zero" } else { "non-zero" }
//! });
//! assert_eq!(outcome.paths.len(), 2);
//! assert!(outcome.paths.iter().all(|p| p.status == PathStatus::Complete));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod audit;
pub mod blast;
mod chain;
mod context;
mod display;
mod domain;
mod engine;
mod eval;
mod fork;
pub mod merge;
mod probe;
mod project;
mod solve;
mod term;
mod testvec;
pub mod wf;

pub use absint::{demanded_bits, AbsInt, Fact, KnownBits, Preflight};
pub use audit::{ProofAuditStats, ProofAuditor};
pub use chain::{ChainSeed, SolverChainStats};
pub use context::Context;
pub use display::ContextStats;
pub use domain::{ConcreteDomain, Domain};
pub use engine::{
    Engine, EngineConfig, ExploreOutcome, PathResult, PathStatus, PrefixOutcome, SearchStrategy,
    SymExec,
};
pub use eval::{eval, eval_memo, Env};
pub use fork::{EngineKind, ForkEngine, ForkExec, ForkJob, ForkTask, StepResult};
pub use merge::{bits_disjoint, fetch_slot_bits, proves_mergeable, FETCH_SLOT_PREFIX};
pub use probe::PathProbe;
pub use project::{union_covers, ConstraintOrigin, Projector, SlotCoverage};
pub use solve::{CheckResult, QueryCacheStats, SolverBackend};
pub use symcosim_sat::{CoreReplayUnit, SolverStats};
pub use term::{Node, TermId, Width};
pub use testvec::TestVector;
