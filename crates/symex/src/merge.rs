//! Merge proofs: the sibling-group analysis that decides when the fork
//! engine may re-join diverged paths (veritesting-style state merging).
//!
//! PR 9's `--merge-report` lint proved that most BRANCH decode sibling
//! groups diverge only on fetch-slot (instruction-word) bits that no
//! output cone demands. This module promotes that diagnosis from
//! lint-time reporting to engine-time decision: [`ForkEngine`] calls
//! [`proves_mergeable`] at post-instruction join points, and the lint's
//! dataflow pass now calls the same [`fetch_slot_bits`] /
//! [`bits_disjoint`] helpers instead of duplicating them.
//!
//! The proof has three legs, all conservative (any failure falls back to
//! unmerged forking):
//!
//! 1. **Divergence is decode-local** — the constraints present on one
//!    arm and not the other demand *some* fetch-slot bits (the arms
//!    differ in how the fetched word decodes, not merely in register
//!    data), computed with the bit-granular
//!    [`demanded_bits`](crate::absint::demanded_bits) pass.
//! 2. **Outputs are blind to the divergence** — no output term demands
//!    any of those diverging fetch-slot bits.
//! 3. **Coverage stays exact** — the *slot-pure* diverging constraints
//!    of each arm project to *exact* fetch-slot cube covers whose union
//!    is exact ([`union_covers`](crate::project::union_covers) on the
//!    projections), so the merged path's
//!    [`SlotCoverage`](crate::SlotCoverage) is provably the exact union
//!    of the siblings' cubes. *Mixed* diverging constraints — a branch
//!    condition compares registers *selected by* fetch bits 19:15 and
//!    24:20, so it demands slot bits and register symbols at once — are
//!    exactly the constraints the coverage projector widens to the
//!    universe on every path, merged or not; the gate admits them only
//!    when both arms widen identically (equal fetch-slot support per
//!    side), keeping the union claim exact over the cubes the arms'
//!    own coverage records actually carry. Certificates therefore keep
//!    byte-identical semantics: verdict `complete` on the same domains.
//!
//! The proof is a *gate*, not the soundness argument: the engine only
//! merges siblings whose post-step task states are term-identical, so
//! every per-arm record is reproduced byte-for-byte by construction and
//! any hard event (a feasibility answer that differs between arms)
//! abandons the merge and re-splits the arms into whole-prefix replays.
//!
//! [`ForkEngine`]: crate::ForkEngine

use crate::absint::demanded_bits;
use crate::context::Context;
use crate::project::{union_covers, ConstraintOrigin, Projector, SlotCoverage};
use crate::term::TermId;

/// Symbol-name prefix of fetch-slot (instruction-word) symbols, as
/// minted by the symbolic instruction memory.
pub const FETCH_SLOT_PREFIX: &str = "imem";

/// Fetch-slot symbols (name starts with [`FETCH_SLOT_PREFIX`]) among the
/// demanded bits of `roots`, as a `symbol -> bit mask` map in sorted
/// term order.
#[must_use]
pub fn fetch_slot_bits(ctx: &Context, roots: &[TermId]) -> Vec<(TermId, u64)> {
    let mut bits: Vec<(TermId, u64)> = demanded_bits(ctx, roots)
        .into_iter()
        .filter(|&(sym, _)| {
            ctx.symbol_name(sym)
                .is_some_and(|name| name.starts_with(FETCH_SLOT_PREFIX))
        })
        .collect();
    bits.sort_unstable_by_key(|&(sym, _)| sym);
    bits
}

/// Whether no bit of `diverging` appears in `observed` (both sorted by
/// symbol, as [`fetch_slot_bits`] returns them).
#[must_use]
pub fn bits_disjoint(diverging: &[(TermId, u64)], observed: &[(TermId, u64)]) -> bool {
    diverging.iter().all(|&(sym, bits)| {
        observed
            .binary_search_by_key(&sym, |&(s, _)| s)
            .map_or(true, |at| observed[at].1 & bits == 0)
    })
}

/// The constraints present in exactly one of the two arms (symmetric
/// set difference), split by side: `(only_a, only_b)`.
#[must_use]
pub fn diverging_constraints(a: &[TermId], b: &[TermId]) -> (Vec<TermId>, Vec<TermId>) {
    let only = |from: &[TermId], other: &[TermId]| -> Vec<TermId> {
        let mut out: Vec<TermId> = from
            .iter()
            .copied()
            .filter(|c| !other.contains(c))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    };
    (only(a, b), only(b, a))
}

/// The merge gate: whether the two arms' diverging constraints are
/// provably decode-local (legs 1 and 2 of the [module](self) proof) and
/// their slot-pure subsets project to exact fetch-slot cube covers
/// whose union is exact, with any mixed divergence widening both arms
/// symmetrically (leg 3).
///
/// `slot_prefix` scopes the coverage projection (the certifier's slot
/// prefix, e.g. `"imem_"`); `outputs` is the merged state's observable
/// frontier. Returns the exact union cover on success, `None` whenever
/// any leg fails — the caller then falls back to unmerged forking.
#[must_use]
pub fn proves_mergeable(
    ctx: &Context,
    projector: &mut Projector,
    arm_a: &[TermId],
    arm_b: &[TermId],
    outputs: &[TermId],
    slot_prefix: &str,
) -> Option<Vec<SlotCoverage>> {
    let (only_a, only_b) = diverging_constraints(arm_a, arm_b);
    let mut diverging = only_a.clone();
    diverging.extend_from_slice(&only_b);
    // Leg 1: the arms diverge on how the fetched word decodes. A fork on
    // pure register data (e.g. taken vs. not-taken) demands no fetch
    // bits and is not a decode sibling.
    let diverging_bits = fetch_slot_bits(ctx, &diverging);
    if diverging_bits.is_empty() {
        return None;
    }
    // Leg 2: nothing the models expose demands those bits.
    let observed_bits = fetch_slot_bits(ctx, outputs);
    if !bits_disjoint(&diverging_bits, &observed_bits) {
        return None;
    }
    // Leg 3: the slot-pure diverging constraints of each arm project to
    // exact cube covers whose union is exact. Mixed diverging
    // constraints (slot bits and foreign symbols in one term) widen any
    // projection to the universe — on the merged path exactly as on each
    // unmerged arm — so they are admissible only when the widening is
    // symmetric: both arms' mixed subsets demand the same fetch-slot
    // bits. Asymmetric mixing could let one arm's cover claim words the
    // other side's cubes do not, so it falls back to unmerged forking.
    let (pure_a, mixed_a) = split_by_slot_purity(ctx, slot_prefix, &only_a);
    let (pure_b, mixed_b) = split_by_slot_purity(ctx, slot_prefix, &only_b);
    if mixed_a != mixed_b {
        return None;
    }
    let cover_of = |projector: &mut Projector, side: &[TermId]| -> Vec<SlotCoverage> {
        let origins = vec![ConstraintOrigin::Assumed; side.len()];
        projector.project_path(ctx, slot_prefix, side, &origins)
    };
    let cover_a = cover_of(projector, &pure_a);
    let cover_b = cover_of(projector, &pure_b);
    union_covers(&cover_a, &cover_b)
}

/// Splits one arm's diverging constraints into the slot-pure subset
/// (every demanded symbol is a `slot_prefix` fetch slot — these carry
/// the cube algebra of leg 3) and the accumulated fetch-slot support of
/// the mixed subset (terms demanding slot bits *and* foreign symbols,
/// which every projection widens). Slot-free constraints restrict no
/// slot projection and are dropped, mirroring the projector.
fn split_by_slot_purity(
    ctx: &Context,
    slot_prefix: &str,
    side: &[TermId],
) -> (Vec<TermId>, Vec<(TermId, u64)>) {
    let mut pure = Vec::new();
    let mut mixed: Vec<(TermId, u64)> = Vec::new();
    for &c in side {
        let demands = demanded_bits(ctx, &[c]);
        let is_slot = |sym: TermId| {
            ctx.symbol_name(sym)
                .is_some_and(|name| name.starts_with(slot_prefix))
        };
        let slot_syms = demands.iter().filter(|&(&sym, _)| is_slot(sym)).count();
        if slot_syms == 0 {
            continue;
        }
        if slot_syms == demands.len() {
            pure.push(c);
            continue;
        }
        for (&sym, &bits) in demands.iter().filter(|&(&sym, _)| is_slot(sym)) {
            match mixed.binary_search_by_key(&sym, |&(s, _)| s) {
                Ok(at) => mixed[at].1 |= bits,
                Err(at) => mixed.insert(at, (sym, bits)),
            }
        }
    }
    (pure, mixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_bit(ctx: &mut Context, slot: TermId, bit: u32, value: u64) -> TermId {
        let lane = ctx.extract(slot, bit, bit);
        let want = ctx.constant(1, value);
        ctx.eq(lane, want)
    }

    #[test]
    fn decode_local_divergence_is_mergeable() {
        let mut ctx = Context::new();
        let slot = ctx.symbol(32, "imem_00000000");
        let reg = ctx.symbol(32, "reg_x1");
        // Arms share a register constraint and diverge on decode bit 12.
        let common = {
            let zero = ctx.constant(32, 0);
            ctx.eq(reg, zero)
        };
        let bit_set = decode_bit(&mut ctx, slot, 12, 1);
        let bit_clear = decode_bit(&mut ctx, slot, 12, 0);
        let arm_a = vec![common, bit_set];
        let arm_b = vec![common, bit_clear];
        // Outputs read the immediate field, not bit 12.
        let imm = ctx.extract(slot, 31, 25);
        let outputs = vec![imm, reg];
        let mut projector = Projector::new();
        let union = proves_mergeable(&ctx, &mut projector, &arm_a, &arm_b, &outputs, "imem")
            .expect("disjoint decode divergence must be mergeable");
        // The union covers both polarities of bit 12: the whole slot
        // domain, exactly.
        assert!(union.iter().all(|slot| slot.exact));
    }

    #[test]
    fn symmetric_mixed_divergence_merges() {
        // The branch-condition shape: each arm carries one slot-pure
        // decode constraint plus a condition over registers *selected
        // by* slot bits 19:15 (mixed). The mixed terms demand the same
        // slot bits on both sides, so leg 3 admits the pair and the
        // union comes from the decode cubes alone.
        let mut ctx = Context::new();
        let slot = ctx.symbol(32, "imem_00000000");
        let reg = ctx.symbol(32, "reg_x1");
        let bit_set = decode_bit(&mut ctx, slot, 12, 1);
        let bit_clear = decode_bit(&mut ctx, slot, 12, 0);
        let cond = {
            let field = ctx.extract(slot, 19, 15);
            let wide = ctx.zero_ext(field, 32);
            ctx.eq(wide, reg)
        };
        let not_cond = ctx.not(cond);
        let arm_a = vec![bit_set, cond];
        let arm_b = vec![bit_clear, not_cond];
        let imm = ctx.extract(slot, 31, 25);
        let outputs = vec![imm, reg];
        let mut projector = Projector::new();
        let union = proves_mergeable(&ctx, &mut projector, &arm_a, &arm_b, &outputs, "imem")
            .expect("symmetrically mixed divergence must be mergeable");
        assert!(union.iter().all(|slot| slot.exact));
    }

    #[test]
    fn asymmetric_mixed_divergence_blocks_merge() {
        // One arm's mixed constraint reads slot bits 19:15, the other's
        // reads 24:20: the widenings differ, so the union of the pure
        // cubes is no longer provably the union of the arms' covers.
        let mut ctx = Context::new();
        let slot = ctx.symbol(32, "imem_00000000");
        let reg = ctx.symbol(32, "reg_x1");
        let bit_set = decode_bit(&mut ctx, slot, 12, 1);
        let bit_clear = decode_bit(&mut ctx, slot, 12, 0);
        let mixed = |ctx: &mut Context, hi: u32, lo: u32| {
            let field = ctx.extract(slot, hi, lo);
            let wide = ctx.zero_ext(field, 32);
            ctx.eq(wide, reg)
        };
        let cond_a = mixed(&mut ctx, 19, 15);
        let cond_b = mixed(&mut ctx, 24, 20);
        let mut projector = Projector::new();
        assert!(proves_mergeable(
            &ctx,
            &mut projector,
            &[bit_set, cond_a],
            &[bit_clear, cond_b],
            &[],
            "imem"
        )
        .is_none());
    }

    #[test]
    fn output_demanding_diverging_bits_blocks_merge() {
        let mut ctx = Context::new();
        let slot = ctx.symbol(32, "imem_00000000");
        let bit_set = decode_bit(&mut ctx, slot, 12, 1);
        let bit_clear = decode_bit(&mut ctx, slot, 12, 0);
        // An output that reads the diverging bit itself.
        let leaked = ctx.extract(slot, 14, 12);
        let mut projector = Projector::new();
        assert!(proves_mergeable(
            &ctx,
            &mut projector,
            &[bit_set],
            &[bit_clear],
            &[leaked],
            "imem"
        )
        .is_none());
    }

    #[test]
    fn register_divergence_blocks_merge() {
        let mut ctx = Context::new();
        let reg = ctx.symbol(32, "reg_x1");
        let zero = ctx.constant(32, 0);
        let taken = ctx.eq(reg, zero);
        let not_taken = ctx.not(taken);
        let mut projector = Projector::new();
        // Taken vs. not-taken diverges on register data: no fetch-slot
        // bits diverge, so leg 1 rejects the pair.
        assert!(
            proves_mergeable(&ctx, &mut projector, &[taken], &[not_taken], &[], "imem").is_none()
        );
    }

    #[test]
    fn disjointness_helper_matches_masks() {
        let mut ctx = Context::new();
        let a = ctx.symbol(32, "imem_00000000");
        let b = ctx.symbol(32, "imem_00000004");
        assert!(bits_disjoint(&[(a, 0x7000)], &[(a, 0x00ff), (b, 0x7000)]));
        assert!(!bits_disjoint(&[(a, 0x7000)], &[(a, 0x1000)]));
        assert!(bits_disjoint(&[], &[(a, u64::MAX)]));
    }
}
