//! Abstract interpretation over the term graph: known bits, unsigned
//! intervals and cone-of-influence symbol supports.
//!
//! Three abstract domains are computed per node, in one pass:
//!
//! 1. **Known bits** — a ternary 0/1/X lattice in the same `(mask, value)`
//!    cube form as `isa::pattern`'s decode cubes (a bit is known iff its
//!    `mask` bit is set, and then equals the `value` bit), so results
//!    compose directly with the coverage projector's cube algebra.
//! 2. **Unsigned intervals** — `[lo, hi]` bounds over the masked value.
//! 3. **Support** — the sorted set of input symbols the node depends on
//!    (its cone of influence), shared via `Rc` like the solver chain's
//!    symbol-support memo.
//!
//! All three are *sound over-approximations*: for every environment, the
//! concrete value of a node ([`eval`](crate::eval::eval)) lies inside its
//! known-bits cube and its interval, and depends only on its support
//! symbols. The differential fuzz suite pins this against the SAT core.
//!
//! Facts are memoised densely against the hash-consed arena (indexed by
//! [`TermId::index`]); the arena is append-only, so entries never go
//! stale. A generation watermark invalidates the memo defensively if the
//! analysis is pointed at a different (smaller) context.
//!
//! [`AbsInt::preflight`] is the solver-chain client: it derives a *forced
//! environment* from equality-with-constant conditions, re-evaluates every
//! condition under it, and statically answers condition sets whose
//! conjunction is forced — without any solver state.

use std::collections::HashMap;
use std::rc::Rc;

use crate::context::{mask, to_signed};
use crate::term::{Node, TermId, Width};
use crate::Context;

/// A ternary known-bits cube: bit `i` is known iff `mask` bit `i` is set,
/// and then equals `value` bit `i`. Unknown positions have `value` bit 0.
///
/// For a term of width `w`, bits at and above `w` are always known zero
/// (the term representation masks them), so `mask` has them set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownBits {
    /// Which bits are known.
    pub mask: u64,
    /// The values of the known bits (zero at unknown positions).
    pub value: u64,
}

impl KnownBits {
    /// Every bit of `width` unknown.
    #[must_use]
    pub fn top(width: Width) -> KnownBits {
        KnownBits {
            mask: !mask(width, !0),
            value: 0,
        }
    }

    /// All bits known, equal to `value` (masked to `width`).
    #[must_use]
    pub fn exact(width: Width, value: u64) -> KnownBits {
        KnownBits {
            mask: !0,
            value: mask(width, value),
        }
    }

    /// Whether the concrete value `v` is inside this cube.
    #[must_use]
    pub fn contains(self, v: u64) -> bool {
        v & self.mask == self.value
    }

    /// The single concrete value, when every bit is known.
    #[must_use]
    pub fn as_const(self) -> Option<u64> {
        (self.mask == !0).then_some(self.value)
    }

    /// Smallest value inside the cube (all unknown bits zero).
    #[must_use]
    pub fn min(self) -> u64 {
        self.value
    }

    /// Largest value inside the cube (all unknown bits one).
    #[must_use]
    pub fn max(self) -> u64 {
        self.value | !self.mask
    }

    /// Restores the representation invariant after a transfer function:
    /// bits at and above `width` are known zero, and unknown positions
    /// carry value zero.
    fn clamp(self, width: Width) -> KnownBits {
        let low = mask(width, !0);
        let mask_bits = self.mask | !low;
        KnownBits {
            mask: mask_bits,
            value: self.value & low & mask_bits,
        }
    }
}

/// The abstract value of one term: known bits, an unsigned interval and
/// the cone-of-influence symbol support.
#[derive(Debug, Clone)]
pub struct Fact {
    /// Known-bits cube.
    pub bits: KnownBits,
    /// Smallest possible (masked) value.
    pub lo: u64,
    /// Largest possible (masked) value.
    pub hi: u64,
    /// Sorted, deduplicated input symbols the term depends on.
    pub support: Rc<Vec<TermId>>,
}

impl Fact {
    /// Whether the concrete value `v` is consistent with this fact.
    #[must_use]
    pub fn contains(&self, v: u64) -> bool {
        self.bits.contains(v) && self.lo <= v && v <= self.hi
    }

    /// The single concrete value, when the fact pins one.
    #[must_use]
    pub fn as_const(&self) -> Option<u64> {
        if let Some(v) = self.bits.as_const() {
            return Some(v);
        }
        (self.lo == self.hi).then_some(self.lo)
    }

    fn exact(width: Width, value: u64, support: Rc<Vec<TermId>>) -> Fact {
        let value = mask(width, value);
        Fact {
            bits: KnownBits::exact(width, value),
            lo: value,
            hi: value,
            support,
        }
    }

    fn top(width: Width, support: Rc<Vec<TermId>>) -> Fact {
        Fact {
            bits: KnownBits::top(width),
            lo: 0,
            hi: mask(width, !0),
            support,
        }
    }

    /// Intersects the two domains with each other: the interval tightens
    /// to the cube's min/max, and the common high-bit prefix of
    /// `[lo, hi]` pins those bits in the cube. Both directions preserve
    /// soundness: any concrete value satisfying both input domains
    /// satisfies both refined ones. The guard keeps a (vacuously sound)
    /// contradictory fact — possible only under a conflicting forced
    /// environment — from being "refined" into an arbitrary constant.
    fn refine(mut self, width: Width) -> Fact {
        let lo = self.lo.max(self.bits.min());
        let hi = self.hi.min(self.bits.max() & mask(width, !0));
        if lo > hi {
            return self;
        }
        self.lo = lo;
        self.hi = hi;
        let diff = self.lo ^ self.hi;
        let common = if diff == 0 {
            !0u64
        } else {
            !(u64::MAX >> diff.leading_zeros())
        };
        let merged = KnownBits {
            mask: self.bits.mask | common,
            value: self.bits.value | (self.lo & common & !self.bits.mask),
        }
        .clamp(width);
        if merged.contains(self.lo) || merged.contains(self.hi) {
            self.bits = merged;
        }
        self
    }
}

/// A preflight verdict over a condition set (see [`AbsInt::preflight`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preflight {
    /// The conjunction is statically true under every environment.
    Sat,
    /// The conjunction is statically unsatisfiable.
    Unsat,
}

/// The analysis: a dense per-term fact memo over one hash-consed arena.
#[derive(Debug, Default)]
pub struct AbsInt {
    /// Facts indexed by [`TermId::index`]. The arena is append-only, so
    /// entries never go stale within one context.
    facts: Vec<Option<Fact>>,
    /// Arena size last seen; a *shrink* means a different context, which
    /// invalidates every memoised fact (generation invalidation).
    watermark: usize,
}

impl AbsInt {
    /// An empty analysis.
    #[must_use]
    pub fn new() -> AbsInt {
        AbsInt::default()
    }

    /// The abstract value of `term`, memoised.
    pub fn fact(&mut self, ctx: &Context, term: TermId) -> Fact {
        self.sync(ctx);
        self.fact_rec(ctx, term)
    }

    /// The sorted cone-of-influence symbol support of `term`.
    pub fn support(&mut self, ctx: &Context, term: TermId) -> Rc<Vec<TermId>> {
        Rc::clone(&self.fact(ctx, term).support)
    }

    /// Whether the width-1 `term` is statically forced to a constant.
    pub fn const_bool(&mut self, ctx: &Context, term: TermId) -> Option<bool> {
        self.fact(ctx, term).as_const().map(|v| v & 1 == 1)
    }

    fn sync(&mut self, ctx: &Context) {
        let nodes = ctx.num_nodes();
        if nodes < self.watermark {
            // A smaller arena cannot be the one the memo was built
            // against: drop every fact.
            self.facts.clear();
        }
        self.watermark = nodes;
        if self.facts.len() < nodes {
            self.facts.resize(nodes, None);
        }
    }

    fn fact_rec(&mut self, ctx: &Context, term: TermId) -> Fact {
        if let Some(fact) = &self.facts[term.index()] {
            return fact.clone();
        }
        let fact = self.transfer(ctx, term, None, &mut HashMap::new());
        self.facts[term.index()] = Some(fact.clone());
        fact
    }

    /// [`fact`](Self::fact) under a forced environment: `forced` maps
    /// terms to exact values assumed to hold. Results touched by forcing
    /// are memoised in `scratch` (they must not poison the shared memo);
    /// subgraphs whose support is disjoint from every forced term's
    /// support fall back to the shared memo.
    fn fact_forced(
        &mut self,
        ctx: &Context,
        term: TermId,
        forced: &Forced,
        scratch: &mut HashMap<TermId, Fact>,
    ) -> Fact {
        if let Some(&value) = forced.values.get(&term) {
            let support = Rc::clone(&self.fact_rec(ctx, term).support);
            return Fact::exact(ctx.width(term), value, support);
        }
        if let Some(fact) = scratch.get(&term) {
            return fact.clone();
        }
        // A term whose cone is disjoint from every forced cone cannot be
        // affected by the forcing: reuse the shared memo.
        let support = Rc::clone(&self.fact_rec(ctx, term).support);
        if !intersects(&support, &forced.support) {
            return self.fact_rec(ctx, term);
        }
        let fact = self.transfer(ctx, term, Some(forced), scratch);
        scratch.insert(term, fact.clone());
        fact
    }

    /// One transfer step: computes the fact of `term` from its children's
    /// facts (forced or shared, see the callers).
    #[allow(clippy::too_many_lines)]
    fn transfer(
        &mut self,
        ctx: &Context,
        term: TermId,
        forced: Option<&Forced>,
        scratch: &mut HashMap<TermId, Fact>,
    ) -> Fact {
        let mut child = |this: &mut Self, t: TermId| match forced {
            Some(f) => this.fact_forced(ctx, t, f, scratch),
            None => this.fact_rec(ctx, t),
        };
        let w = ctx.width(term);
        let wmask = mask(w, !0);
        let node = ctx.node(term);
        let fact = match node {
            Node::Const { value, .. } => Fact::exact(w, value, Rc::new(Vec::new())),
            Node::Symbol { .. } => Fact::top(w, Rc::new(vec![term])),
            Node::Not(a) => {
                let a = child(self, a);
                let bits = KnownBits {
                    mask: a.bits.mask,
                    value: !a.bits.value & a.bits.mask,
                }
                .clamp(w);
                Fact {
                    bits,
                    lo: wmask - a.hi,
                    hi: wmask - a.lo,
                    support: a.support,
                }
            }
            Node::And(a, b) => {
                let (a, b) = (child(self, a), child(self, b));
                let known1 = (a.bits.mask & a.bits.value) & (b.bits.mask & b.bits.value);
                let known0 = (a.bits.mask & !a.bits.value) | (b.bits.mask & !b.bits.value);
                let bits = KnownBits {
                    mask: known0 | known1,
                    value: known1,
                }
                .clamp(w);
                Fact {
                    bits,
                    lo: 0,
                    hi: a.hi.min(b.hi),
                    support: union(&a.support, &b.support),
                }
            }
            Node::Or(a, b) => {
                let (a, b) = (child(self, a), child(self, b));
                let known1 = (a.bits.mask & a.bits.value) | (b.bits.mask & b.bits.value);
                let known0 = (a.bits.mask & !a.bits.value) & (b.bits.mask & !b.bits.value);
                let bits = KnownBits {
                    mask: known0 | known1,
                    value: known1,
                }
                .clamp(w);
                Fact {
                    bits,
                    lo: a.lo.max(b.lo),
                    hi: ones_up_to(a.hi | b.hi),
                    support: union(&a.support, &b.support),
                }
            }
            Node::Xor(a, b) => {
                let (a, b) = (child(self, a), child(self, b));
                let known = a.bits.mask & b.bits.mask;
                let bits = KnownBits {
                    mask: known,
                    value: (a.bits.value ^ b.bits.value) & known,
                }
                .clamp(w);
                Fact {
                    lo: bits.min(),
                    hi: bits.max() & wmask,
                    bits,
                    support: union(&a.support, &b.support),
                }
            }
            Node::Add(a, b) => {
                let (a, b) = (child(self, a), child(self, b));
                // Carries ripple LSB-first, so the low run of bits known
                // in *both* operands is known in the sum.
                let run = low_run(a.bits.mask & b.bits.mask);
                let bits = KnownBits {
                    mask: run,
                    value: (a.bits.value & run).wrapping_add(b.bits.value & run) & run,
                }
                .clamp(w);
                let (lo, hi) = match a.hi.checked_add(b.hi) {
                    Some(hi) if hi <= wmask => (a.lo + b.lo, hi),
                    _ => (0, wmask),
                };
                Fact {
                    bits,
                    lo,
                    hi,
                    support: union(&a.support, &b.support),
                }
            }
            Node::Sub(a, b) => {
                let (a, b) = (child(self, a), child(self, b));
                // Borrows also ripple LSB-first.
                let run = low_run(a.bits.mask & b.bits.mask);
                let bits = KnownBits {
                    mask: run,
                    value: (a.bits.value & run).wrapping_sub(b.bits.value & run) & run,
                }
                .clamp(w);
                let (lo, hi) = if a.lo >= b.hi {
                    (a.lo - b.hi, a.hi - b.lo)
                } else {
                    (0, wmask)
                };
                Fact {
                    bits,
                    lo,
                    hi,
                    support: union(&a.support, &b.support),
                }
            }
            Node::Mul(a, b) => {
                let (a, b) = (child(self, a), child(self, b));
                // The low k product bits depend only on the low k bits of
                // each operand.
                let run = low_run(a.bits.mask & b.bits.mask);
                let bits = KnownBits {
                    mask: run,
                    value: (a.bits.value & run).wrapping_mul(b.bits.value & run) & run,
                }
                .clamp(w);
                let (lo, hi) = match a.hi.checked_mul(b.hi) {
                    Some(hi) if hi <= wmask => (a.lo.wrapping_mul(b.lo), hi),
                    _ => (0, wmask),
                };
                Fact {
                    bits,
                    lo,
                    hi,
                    support: union(&a.support, &b.support),
                }
            }
            Node::Shl(a, s) => {
                let (a, s) = (child(self, a), child(self, s));
                let support = union(&a.support, &s.support);
                match s.as_const() {
                    Some(sh) if sh >= u64::from(w) => Fact::exact(w, 0, support),
                    Some(sh) => {
                        let sh = sh as u32;
                        // Known bits shift up; the vacated low positions
                        // are known zero.
                        let bits = KnownBits {
                            mask: (a.bits.mask << sh) | low_ones(sh),
                            value: a.bits.value << sh,
                        }
                        .clamp(w);
                        let (lo, hi) = if a.hi <= wmask >> sh {
                            (a.lo << sh, a.hi << sh)
                        } else {
                            (bits.min(), bits.max() & wmask)
                        };
                        Fact {
                            bits,
                            lo,
                            hi,
                            support,
                        }
                    }
                    None => {
                        // Every possible shift is at least `s.lo`, so at
                        // least that many low bits are zero (shifts past
                        // the width yield zero, which also qualifies).
                        let zeros = s.lo.min(u64::from(w)) as u32;
                        let bits = KnownBits {
                            mask: low_ones(zeros),
                            value: 0,
                        }
                        .clamp(w);
                        Fact {
                            bits,
                            lo: 0,
                            hi: wmask,
                            support,
                        }
                    }
                }
            }
            Node::Lshr(a, s) => {
                let (a, s) = (child(self, a), child(self, s));
                let support = union(&a.support, &s.support);
                match s.as_const() {
                    Some(sh) if sh >= u64::from(w) => Fact::exact(w, 0, support),
                    Some(sh) => {
                        let sh = sh as u32;
                        let bits = KnownBits {
                            mask: a.bits.mask >> sh,
                            value: (a.bits.value & wmask) >> sh,
                        }
                        .clamp(w);
                        Fact {
                            bits,
                            lo: a.lo >> sh,
                            hi: a.hi >> sh,
                            support,
                        }
                    }
                    None => {
                        // Shifting right never grows the value; the
                        // smallest shift bounds it from above. Clamp to
                        // width - 1 like the arithmetic path: for w < 64
                        // a larger clamp could over-shift `hi` below
                        // values the masked-amount semantics can reach.
                        let min_sh = s.lo.min(u64::from(w) - 1) as u32;
                        Fact {
                            bits: KnownBits::top(w),
                            lo: 0,
                            hi: a.hi >> min_sh,
                            support,
                        }
                    }
                }
            }
            Node::Ashr(a, s) => {
                let (a, s) = (child(self, a), child(self, s));
                let support = union(&a.support, &s.support);
                let sign_known = a.bits.mask >> (w - 1) & 1 == 1;
                let sign = a.bits.value >> (w - 1) & 1 == 1;
                match s.as_const() {
                    Some(sh) => {
                        // Shifts clamp to width - 1 (sign replication).
                        let sh = (sh.min(u64::from(w) - 1)) as u32;
                        let fill = wmask & !(wmask >> sh);
                        let shifted_mask = (a.bits.mask & wmask) >> sh;
                        let shifted_value = (a.bits.value & wmask) >> sh;
                        let bits = if sign_known {
                            KnownBits {
                                mask: shifted_mask | fill,
                                value: shifted_value | if sign { fill } else { 0 },
                            }
                        } else {
                            KnownBits {
                                mask: shifted_mask & !fill,
                                value: shifted_value & !fill,
                            }
                        }
                        .clamp(w);
                        let (lo, hi) = if sign_known && !sign {
                            (a.lo >> sh, a.hi >> sh)
                        } else {
                            (bits.min(), bits.max() & wmask)
                        };
                        Fact {
                            bits,
                            lo,
                            hi,
                            support,
                        }
                    }
                    None if sign_known && !sign => {
                        let min_sh = s.lo.min(u64::from(w) - 1) as u32;
                        Fact {
                            bits: KnownBits::top(w),
                            lo: 0,
                            hi: a.hi >> min_sh,
                            support,
                        }
                    }
                    None => Fact::top(w, support),
                }
            }
            Node::Eq(a, b) => {
                let wa = ctx.width(a);
                let (a, b) = (child(self, a), child(self, b));
                let support = union(&a.support, &b.support);
                let conflict = (a.bits.mask & b.bits.mask) & (a.bits.value ^ b.bits.value) != 0;
                if conflict || a.hi < b.lo || b.hi < a.lo {
                    Fact::exact(w, 0, support)
                } else if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                    Fact::exact(w, u64::from(mask(wa, x) == mask(wa, y)), support)
                } else {
                    Fact::top(w, support)
                }
            }
            Node::Ult(a, b) => {
                let (a, b) = (child(self, a), child(self, b));
                let support = union(&a.support, &b.support);
                if a.hi < b.lo {
                    Fact::exact(w, 1, support)
                } else if a.lo >= b.hi {
                    Fact::exact(w, 0, support)
                } else {
                    Fact::top(w, support)
                }
            }
            Node::Slt(a, b) => {
                let wa = ctx.width(a);
                let (a, b) = (child(self, a), child(self, b));
                let support = union(&a.support, &b.support);
                let (a_lo, a_hi) = signed_range(wa, &a);
                let (b_lo, b_hi) = signed_range(wa, &b);
                if a_hi < b_lo {
                    Fact::exact(w, 1, support)
                } else if a_lo >= b_hi {
                    Fact::exact(w, 0, support)
                } else {
                    Fact::top(w, support)
                }
            }
            Node::Ite(c, t, e) => {
                let c = child(self, c);
                match c.as_const() {
                    Some(v) if v & 1 == 1 => child(self, t),
                    Some(_) => child(self, e),
                    None => {
                        let (t, e) = (child(self, t), child(self, e));
                        let agree = t.bits.mask & e.bits.mask & !(t.bits.value ^ e.bits.value);
                        let bits = KnownBits {
                            mask: agree,
                            value: t.bits.value & agree,
                        }
                        .clamp(w);
                        Fact {
                            bits,
                            lo: t.lo.min(e.lo),
                            hi: t.hi.max(e.hi),
                            support: union(&union(&t.support, &e.support), &c.support),
                        }
                    }
                }
            }
            Node::Extract { term: a, lo, .. } => {
                let a = child(self, a);
                let bits = KnownBits {
                    mask: a.bits.mask >> lo,
                    value: a.bits.value >> lo,
                }
                .clamp(w);
                let (ilo, ihi) = {
                    let lo_b = a.lo >> lo;
                    let hi_b = a.hi >> lo;
                    if hi_b <= wmask {
                        (lo_b, hi_b)
                    } else {
                        (bits.min(), bits.max() & wmask)
                    }
                };
                Fact {
                    bits,
                    lo: ilo,
                    hi: ihi,
                    support: a.support,
                }
            }
            Node::Concat { hi, lo } => {
                let lw = ctx.width(lo);
                let (h, l) = (child(self, hi), child(self, lo));
                let lmask = mask(lw, !0);
                let bits = KnownBits {
                    mask: (h.bits.mask << lw) | (l.bits.mask & lmask),
                    value: (h.bits.value << lw) | (l.bits.value & lmask),
                }
                .clamp(w);
                // concat(h, l) = h * 2^lw + l with l < 2^lw: monotone in
                // both parts, so the interval is exact in the parts'.
                Fact {
                    bits,
                    lo: (h.lo << lw) | l.lo,
                    hi: (h.hi << lw) | l.hi,
                    support: union(&h.support, &l.support),
                }
            }
            Node::ZeroExt { term: a, .. } => {
                let a = child(self, a);
                Fact {
                    bits: a.bits.clamp(w),
                    lo: a.lo,
                    hi: a.hi,
                    support: a.support,
                }
            }
            Node::SignExt { term: a, .. } => {
                let sw = ctx.width(a);
                let a = child(self, a);
                let fill = mask(w, !0) & !mask(sw, !0);
                let sign_known = a.bits.mask >> (sw - 1) & 1 == 1;
                let sign = a.bits.value >> (sw - 1) & 1 == 1;
                let keep = KnownBits {
                    mask: a.bits.mask & mask(sw, !0),
                    value: a.bits.value & mask(sw, !0),
                };
                let (bits, lo, hi) = if sign_known && !sign {
                    (
                        KnownBits {
                            mask: keep.mask | fill,
                            value: keep.value,
                        },
                        a.lo,
                        a.hi,
                    )
                } else if sign_known {
                    (
                        KnownBits {
                            mask: keep.mask | fill,
                            value: keep.value | fill,
                        },
                        a.lo | fill,
                        a.hi | fill,
                    )
                } else {
                    let b = KnownBits {
                        mask: keep.mask & !fill,
                        value: keep.value,
                    };
                    (b, 0, mask(w, !0))
                };
                Fact {
                    bits: bits.clamp(w),
                    lo,
                    hi,
                    support: a.support,
                }
            }
        };
        fact.refine(w)
    }

    /// Statically answers a constant-free condition set when the
    /// conjunction is forced, without any solver state.
    ///
    /// Two sound rules:
    ///
    /// * **Unsat** — conditions of the shape `t == const` (or a bare
    ///   width-1 symbol / its negation) force exact values; conflicting
    ///   forcings, or any condition abstractly false *under the forced
    ///   environment*, refute the conjunction (the forced equalities are
    ///   themselves conjuncts, so assuming them is free).
    /// * **Sat** — every condition abstractly true with *no* forcing
    ///   means the conjunction is valid, hence satisfiable.
    ///
    /// `None` means the abstraction cannot decide; the caller falls
    /// through to its cache levels and the solver, unchanged.
    pub fn preflight(&mut self, ctx: &Context, conditions: &[TermId]) -> Option<Preflight> {
        self.sync(ctx);

        // Unforced pass first: it feeds the shared memo and both rules.
        let mut all_true = true;
        for &c in conditions {
            match self.fact_rec(ctx, c).as_const() {
                Some(v) if v & 1 == 0 => return Some(Preflight::Unsat),
                Some(_) => {}
                None => all_true = false,
            }
        }
        if all_true {
            return Some(Preflight::Sat);
        }

        // Build the forced environment from equality-with-constant
        // conditions; a conflicting forcing refutes immediately.
        let mut forced = Forced::default();
        for &c in conditions {
            let (key, value) = match ctx.node(c) {
                Node::Eq(a, b) => match (ctx.const_value(a), ctx.const_value(b)) {
                    (Some(v), None) => (b, mask(ctx.width(b), v)),
                    (None, Some(v)) => (a, mask(ctx.width(a), v)),
                    _ => continue,
                },
                Node::Symbol { width: 1, .. } => (c, 1),
                Node::Not(inner) if ctx.width(c) == 1 => (inner, 0),
                _ => continue,
            };
            match forced.values.insert(key, value) {
                Some(previous) if previous != value => return Some(Preflight::Unsat),
                _ => {}
            }
        }
        if forced.values.is_empty() {
            return None;
        }
        let keys: Vec<TermId> = forced.values.keys().copied().collect();
        for key in keys {
            let support = self.support(ctx, key);
            forced.support.extend(support.iter().copied());
        }
        forced.support.sort_unstable();
        forced.support.dedup();

        // Forced pass: any condition false under the forced environment
        // refutes the conjunction.
        let mut scratch = HashMap::new();
        for &c in conditions {
            let fact = self.fact_forced(ctx, c, &forced, &mut scratch);
            if fact.as_const() == Some(0) {
                return Some(Preflight::Unsat);
            }
        }
        None
    }
}

/// A forced environment: exact values assumed for specific terms, plus
/// the union of the forced terms' symbol supports (for pruning).
#[derive(Debug, Default)]
struct Forced {
    values: HashMap<TermId, u64>,
    support: Vec<TermId>,
}

/// Sorted-slice union, `Rc`-shared; reuses a side when the other is empty
/// or a subset prefix-wise cheap case.
fn union(a: &Rc<Vec<TermId>>, b: &Rc<Vec<TermId>>) -> Rc<Vec<TermId>> {
    if a.is_empty() {
        return Rc::clone(b);
    }
    if b.is_empty() || Rc::ptr_eq(a, b) {
        return Rc::clone(a);
    }
    let mut merged = Vec::with_capacity(a.len() + b.len());
    merged.extend(a.iter().copied());
    merged.extend(b.iter().copied());
    merged.sort_unstable();
    merged.dedup();
    Rc::new(merged)
}

/// Whether two sorted slices share an element (merge walk).
fn intersects(a: &[TermId], b: &[TermId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// The low run of consecutive set bits starting at bit 0 of `m`.
fn low_run(m: u64) -> u64 {
    low_ones((!m).trailing_zeros())
}

/// `count` low one-bits (saturating at 64).
fn low_ones(count: u32) -> u64 {
    if count >= 64 {
        !0
    } else {
        (1u64 << count) - 1
    }
}

/// All-ones up to and including the highest set bit of `v`.
fn ones_up_to(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        u64::MAX >> v.leading_zeros()
    }
}

/// Backward demanded-bits analysis: for every symbol reachable from
/// `roots`, which of its bits can influence the roots' values.
///
/// The returned map sends each reachable `Symbol` term to a mask with a
/// bit set for every symbol bit that some root may depend on. The
/// analysis is a sound *over*-approximation in the direction merging
/// needs: a bit absent from the mask provably cannot change any root, so
/// two cones with disjoint masks are independent. (The converse does not
/// hold — a masked bit may still be irrelevant.)
///
/// This is the bit-granular refinement of [`Fact::support`]: symbol-level
/// supports cannot separate two uses of the same fetched instruction
/// word, while demanded bits distinguish e.g. the register-selector
/// fields of a branch from its immediate fields.
#[must_use]
pub fn demanded_bits(ctx: &Context, roots: &[TermId]) -> HashMap<TermId, u64> {
    let mut demanded: Vec<u64> = vec![0; ctx.num_nodes()];
    let mut symbols = HashMap::new();
    let mut work: Vec<(TermId, u64)> = roots.iter().map(|&r| (r, mask(ctx.width(r), !0))).collect();
    while let Some((id, m)) = work.pop() {
        let fresh = m & !demanded[id.index()];
        if fresh == 0 {
            continue;
        }
        demanded[id.index()] |= fresh;
        let m = demanded[id.index()];
        let full = |t: TermId| mask(ctx.width(t), !0);
        match ctx.node(id) {
            Node::Const { .. } => {}
            Node::Symbol { .. } => {
                symbols.insert(id, m);
            }
            Node::Not(a) => work.push((a, m)),
            // A constant mask caps what the other operand can contribute:
            // `x & 0xf` never exposes bits above 3 (dually, `x | 0xf`
            // pins bits 3:0 regardless of `x`). Field extractions are
            // routinely lowered to shift-and-mask chains, so without this
            // refinement every such chain would smear its demand across
            // neighbouring encoding fields.
            Node::And(a, b) => {
                let cap = |side: TermId| match ctx.node(side) {
                    Node::Const { value, .. } => m & value,
                    _ => m,
                };
                work.push((a, cap(b)));
                work.push((b, cap(a)));
            }
            Node::Or(a, b) => {
                let cap = |side: TermId| match ctx.node(side) {
                    Node::Const { value, .. } => m & !value,
                    _ => m,
                };
                work.push((a, cap(b)));
                work.push((b, cap(a)));
            }
            Node::Xor(a, b) => {
                work.push((a, m));
                work.push((b, m));
            }
            // Carries and partial products only propagate upward, so a
            // demanded bit needs every operand bit at or below it.
            Node::Add(a, b) | Node::Sub(a, b) | Node::Mul(a, b) => {
                let low = ones_up_to(m) & full(a);
                work.push((a, low));
                work.push((b, low));
            }
            Node::Shl(a, b) | Node::Lshr(a, b) | Node::Ashr(a, b) => {
                let shifted = match (ctx.node(id), ctx.const_value(b)) {
                    (Node::Shl(..), Some(sh)) if sh < 64 => m >> sh,
                    (Node::Lshr(..), Some(sh)) if sh < 64 => (m << sh) & full(a),
                    (Node::Ashr(..), Some(sh)) if sh < 64 => {
                        // The sign bit fills every vacated position.
                        ((m << sh) & full(a)) | (1u64 << (ctx.width(a) - 1))
                    }
                    // Symbolic or saturating shift: every operand bit may
                    // land anywhere.
                    _ => full(a),
                };
                work.push((a, shifted));
                work.push((b, full(b)));
            }
            Node::Eq(a, b) | Node::Ult(a, b) | Node::Slt(a, b) => {
                work.push((a, full(a)));
                work.push((b, full(b)));
            }
            Node::Ite(c, t, e) => {
                work.push((c, 1));
                work.push((t, m));
                work.push((e, m));
            }
            Node::Extract { term, lo, .. } => {
                work.push((term, m << lo));
            }
            Node::Concat { hi, lo } => {
                let lo_width = ctx.width(lo);
                work.push((lo, m & mask(lo_width, !0)));
                work.push((hi, m >> lo_width));
            }
            Node::ZeroExt { term, .. } => {
                work.push((term, m & full(term)));
            }
            Node::SignExt { term, .. } => {
                let inner = ctx.width(term);
                let mut inner_m = m & mask(inner, !0);
                if m & !mask(inner, !0) != 0 {
                    // An extension bit is demanded; it copies the sign.
                    inner_m |= 1u64 << (inner - 1);
                }
                work.push((term, inner_m));
            }
        }
    }
    symbols
}

/// The signed range a fact admits at `width`, as `(min, max)`.
fn signed_range(width: Width, fact: &Fact) -> (i64, i64) {
    let sign_bit = 1u64 << (width - 1);
    if fact.hi < sign_bit {
        (fact.lo as i64, fact.hi as i64)
    } else if fact.lo >= sign_bit {
        (to_signed(width, fact.lo), to_signed(width, fact.hi))
    } else {
        (to_signed(width, sign_bit), (sign_bit - 1) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Env};

    fn fact_of(ctx: &Context, term: TermId) -> Fact {
        AbsInt::new().fact(ctx, term)
    }

    #[test]
    fn constants_are_exact() {
        let mut ctx = Context::new();
        let c = ctx.constant(8, 0xa5);
        let fact = fact_of(&ctx, c);
        assert_eq!(fact.as_const(), Some(0xa5));
        assert!(fact.contains(0xa5));
        assert!(!fact.contains(0xa4));
        assert!(fact.support.is_empty());
    }

    #[test]
    fn symbols_are_top_with_self_support() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let fact = fact_of(&ctx, x);
        assert_eq!(fact.as_const(), None);
        assert_eq!((fact.lo, fact.hi), (0, 0xff));
        assert!((0..=0xffu64).all(|v| fact.contains(v)));
        assert_eq!(&*fact.support, &[x]);
    }

    #[test]
    fn masking_pins_known_bits() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let m = ctx.constant(8, 0x0f);
        let masked = ctx.and(x, m);
        let fact = fact_of(&ctx, masked);
        // The high nibble is known zero.
        assert_eq!(fact.bits.mask & 0xf0, 0xf0);
        assert_eq!(fact.bits.value & 0xf0, 0);
        assert!(fact.hi <= 0x0f);

        let set = ctx.constant(8, 0x80);
        let ored = ctx.or(masked, set);
        let fact = fact_of(&ctx, ored);
        assert!(fact.bits.contains(0x85));
        assert!(!fact.bits.contains(0x05), "bit 7 is known one");
        assert!(fact.lo >= 0x80);
    }

    #[test]
    fn extract_and_concat_track_fields() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let k = ctx.constant(32, 0x0000_0063);
        let high = ctx.constant(32, 0xffff_ff80);
        let masked_low = ctx.and(x, high);
        let word = ctx.or(masked_low, k);
        let opcode = ctx.extract(word, 6, 0);
        let fact = fact_of(&ctx, opcode);
        assert_eq!(fact.as_const(), Some(0x63), "low field is fully pinned");

        let upper = ctx.extract(word, 31, 7);
        let fact = fact_of(&ctx, upper);
        assert_eq!(fact.as_const(), None);
    }

    #[test]
    fn intervals_bound_arithmetic() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let seven = ctx.constant(8, 0x07);
        let low = ctx.and(x, seven);
        let k = ctx.constant(8, 0x10);
        let sum = ctx.add(low, k);
        let fact = fact_of(&ctx, sum);
        assert_eq!((fact.lo, fact.hi), (0x10, 0x17));
        // The comparison layer turns that into a verdict.
        let bound = ctx.constant(8, 0x20);
        let lt = ctx.ult(sum, bound);
        assert_eq!(fact_of(&ctx, lt).as_const(), Some(1));
        let floor = ctx.constant(8, 0x10);
        let below = ctx.ult(sum, floor);
        assert_eq!(fact_of(&ctx, below).as_const(), Some(0));
    }

    #[test]
    fn disjoint_known_bits_refute_equality() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let one = ctx.constant(8, 1);
        let odd = ctx.or(x, one);
        let even = ctx.constant(8, 2);
        let eq = ctx.eq(odd, even);
        assert_eq!(fact_of(&ctx, eq).as_const(), Some(0));
    }

    #[test]
    fn shifts_follow_context_semantics() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let four = ctx.constant(8, 4);
        let shl = ctx.shl(x, four);
        let fact = fact_of(&ctx, shl);
        assert_eq!(fact.bits.mask & 0x0f, 0x0f, "low 4 bits known");
        assert_eq!(fact.bits.value & 0x0f, 0);
        let shr = ctx.lshr(x, four);
        let fact = fact_of(&ctx, shr);
        assert!(fact.hi <= 0x0f);
    }

    #[test]
    fn fuzz_facts_are_sound_over_random_envs() {
        // Soundness pinned structurally: random term trees, random envs —
        // the concrete value always lies inside bits and interval.
        let mut rng = 0x5eed_0001u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..200 {
            let mut ctx = Context::new();
            let x = ctx.symbol(8, "x");
            let y = ctx.symbol(8, "y");
            let mut pool = vec![x, y, ctx.constant(8, next() & 0xff)];
            for _ in 0..12 {
                let a = pool[(next() as usize) % pool.len()];
                let b = pool[(next() as usize) % pool.len()];
                let t = match next() % 10 {
                    0 => ctx.and(a, b),
                    1 => ctx.or(a, b),
                    2 => ctx.xor(a, b),
                    3 => ctx.add(a, b),
                    4 => ctx.sub(a, b),
                    5 => ctx.mul(a, b),
                    6 => ctx.not(a),
                    7 => ctx.shl(a, b),
                    8 => ctx.lshr(a, b),
                    _ => ctx.ashr(a, b),
                };
                pool.push(t);
            }
            let mut absint = AbsInt::new();
            let mut env = Env::new();
            env.insert("x".to_string(), next() & 0xff);
            env.insert("y".to_string(), next() & 0xff);
            for &t in &pool {
                let fact = absint.fact(&ctx, t);
                let value = eval(&ctx, t, &env);
                assert!(
                    fact.contains(value),
                    "unsound fact {fact:?} for {:?} = {value}",
                    ctx.node(t)
                );
            }
        }
    }

    #[test]
    fn preflight_kills_conflicting_forced_equalities() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let field = ctx.extract(x, 6, 0);
        let k1 = ctx.constant(7, 0x63);
        let k2 = ctx.constant(7, 0x33);
        let is1 = ctx.eq(field, k1);
        let is2 = ctx.eq(field, k2);
        let mut absint = AbsInt::new();
        assert_eq!(
            absint.preflight(&ctx, &[is1, is2]),
            Some(Preflight::Unsat),
            "same field forced to two values"
        );
        assert_eq!(
            absint.preflight(&ctx, &[is1]),
            None,
            "consistent: undecided"
        );
    }

    #[test]
    fn preflight_propagates_forced_values_through_cones() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let k3 = ctx.constant(8, 3);
        let k10 = ctx.constant(8, 10);
        let forced = ctx.eq(x, k10);
        let one = ctx.constant(8, 1);
        let inc = ctx.add(x, one);
        let contradiction = ctx.ult(inc, k3);
        let mut absint = AbsInt::new();
        assert_eq!(
            absint.preflight(&ctx, &[forced, contradiction]),
            Some(Preflight::Unsat),
            "x = 10 makes x + 1 < 3 false"
        );
        let k100 = ctx.constant(8, 100);
        let consistent = ctx.ult(inc, k100);
        assert_eq!(absint.preflight(&ctx, &[forced, consistent]), None);
    }

    #[test]
    fn preflight_accepts_tautologies() {
        let mut ctx = Context::new();
        let b = ctx.symbol(1, "b");
        let wide = ctx.zero_ext(b, 32);
        let two = ctx.constant(32, 2);
        let taut = ctx.ult(wide, two);
        let mut absint = AbsInt::new();
        assert_eq!(absint.preflight(&ctx, &[taut]), Some(Preflight::Sat));
    }

    #[test]
    fn memo_survives_arena_growth_and_resets_on_new_context() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let mut absint = AbsInt::new();
        let before = absint.fact(&ctx, x);
        let y = ctx.symbol(8, "y");
        let sum = ctx.add(x, y);
        let after = absint.fact(&ctx, sum);
        assert_eq!(&*after.support, &[x, y]);
        assert_eq!(before.bits, absint.fact(&ctx, x).bits);

        // A fresh (smaller) context invalidates the watermarked memo.
        let mut other = Context::new();
        let z = other.symbol(4, "z");
        let fact = absint.fact(&other, z);
        assert_eq!((fact.lo, fact.hi), (0, 0xf));
    }

    #[test]
    fn cone_of_influence_is_exactly_the_symbol_support() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let y = ctx.symbol(8, "y");
        let z = ctx.symbol(8, "z");
        let xy = ctx.add(x, y);
        let four = ctx.constant(8, 4);
        let cond = ctx.ult(z, four);
        let pick = ctx.ite(cond, xy, x);
        let mut absint = AbsInt::new();
        let support = absint.support(&ctx, pick);
        assert_eq!(&*support, &[x, y, z], "condition symbols are in the cone");
    }

    #[test]
    fn demanded_bits_separate_instruction_fields() {
        // The motivating case for the merge lint: different field
        // extractions of one 32-bit word demand disjoint bit masks even
        // though their symbol-level supports are identical.
        let mut ctx = Context::new();
        let word = ctx.symbol(32, "word");
        let funct3 = ctx.extract(word, 14, 12);
        let imm_hi = ctx.extract(word, 31, 25);
        let two = ctx.constant(3, 2);
        let decode = ctx.eq(funct3, two);
        let target = ctx.zero_ext(imm_hi, 32);
        let decode_bits = demanded_bits(&ctx, &[decode]);
        let target_bits = demanded_bits(&ctx, &[target]);
        assert_eq!(decode_bits[&word], 0b111 << 12);
        assert_eq!(target_bits[&word], 0x7f << 25);
        assert_eq!(decode_bits[&word] & target_bits[&word], 0);
        // The same supports cannot tell them apart.
        let mut absint = AbsInt::new();
        assert_eq!(absint.support(&ctx, decode), absint.support(&ctx, target));
    }

    #[test]
    fn demanded_bits_respect_constant_masks() {
        // Field extraction lowered to shift-and-mask, the way immediate
        // assembly builds terms: `(word >> 8) & 0xf` touches only bits
        // 11:8, and the `| 0x3` below pins bits 1:0 outright. Without the
        // constant refinement the demand would smear to bits 19:8.
        let mut ctx = Context::new();
        let word = ctx.symbol(32, "word");
        let eight = ctx.constant(32, 8);
        let shifted = ctx.lshr(word, eight);
        let nibble_mask = ctx.constant(32, 0xf);
        let field = ctx.and(shifted, nibble_mask);
        let three = ctx.constant(32, 0x3);
        let pinned = ctx.or(field, three);
        let field_bits = demanded_bits(&ctx, &[field]);
        assert_eq!(field_bits[&word], 0xf << 8);
        let pinned_bits = demanded_bits(&ctx, &[pinned]);
        assert_eq!(pinned_bits[&word], 0xc << 8);
    }

    #[test]
    fn demanded_bits_widen_through_arithmetic_and_comparisons() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let y = ctx.symbol(8, "y");
        let sum = ctx.add(x, y);
        let low = ctx.extract(sum, 1, 0);
        // Bits 1:0 of a sum need bits 1:0 of both operands (carries only
        // move upward).
        let bits = demanded_bits(&ctx, &[low]);
        assert_eq!(bits[&x], 0b11);
        assert_eq!(bits[&y], 0b11);
        // A comparison demands every operand bit.
        let cmp = ctx.ult(x, y);
        let bits = demanded_bits(&ctx, &[cmp]);
        assert_eq!(bits[&x], 0xff);
        assert_eq!(bits[&y], 0xff);
    }

    #[test]
    fn fuzz_undemanded_bits_never_change_the_value() {
        // Soundness of the backward pass: flipping any symbol bit NOT in
        // the demanded mask must leave the root's concrete value intact.
        let mut rng = 0x5eed_0002u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..200 {
            let mut ctx = Context::new();
            let x = ctx.symbol(8, "x");
            let y = ctx.symbol(8, "y");
            let mut pool = vec![x, y, ctx.constant(8, next() & 0xff)];
            for _ in 0..12 {
                let a = pool[(next() as usize) % pool.len()];
                let b = pool[(next() as usize) % pool.len()];
                let t = match next() % 12 {
                    0 => ctx.and(a, b),
                    1 => ctx.or(a, b),
                    2 => ctx.xor(a, b),
                    3 => ctx.add(a, b),
                    4 => ctx.sub(a, b),
                    5 => ctx.mul(a, b),
                    6 => ctx.not(a),
                    7 => ctx.shl(a, b),
                    8 => ctx.lshr(a, b),
                    9 => {
                        let hi = 1 + (next() % 7) as u32;
                        let e = ctx.extract(a, hi, hi / 2);
                        ctx.zero_ext(e, 8)
                    }
                    10 => {
                        let c = ctx.eq(a, b);
                        ctx.ite(c, a, b)
                    }
                    _ => ctx.ashr(a, b),
                };
                pool.push(t);
            }
            let root = *pool.last().unwrap();
            let bits = demanded_bits(&ctx, &[root]);
            let mut env = Env::new();
            env.insert("x".to_string(), next() & 0xff);
            env.insert("y".to_string(), next() & 0xff);
            let baseline = eval(&ctx, root, &env);
            for (sym, name) in [(x, "x"), (y, "y")] {
                let demanded = bits.get(&sym).copied().unwrap_or(0);
                for bit in 0..8 {
                    if demanded & (1 << bit) != 0 {
                        continue;
                    }
                    let mut flipped = env.clone();
                    let v = flipped[name] ^ (1 << bit);
                    flipped.insert(name.to_string(), v);
                    assert_eq!(
                        eval(&ctx, root, &flipped),
                        baseline,
                        "undemanded bit {bit} of {name} changed the root"
                    );
                }
            }
        }
    }
}
