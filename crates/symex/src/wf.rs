//! Well-formedness checks over term DAGs and path conditions.
//!
//! The [`Context`] constructors already enforce width invariants at build
//! time, so a violation found here means a term graph was corrupted or a
//! harness mixed handles from different contexts — both bugs in the
//! verification tooling itself, not in the models under test. The checks
//! are therefore *re-validation*: they recompute every structural invariant
//! from the stored nodes alone and trust nothing.
//!
//! Two entry points with different costs:
//!
//! * [`validate_path`] — the full pass over one path's constraint set: DAG
//!   width re-validation plus path-level rules (non-boolean constraints,
//!   constant-false constraints, dead/disconnected constraints, symbolic
//!   reads never bounded by any constraint). Used by `symcosim-lint` and by
//!   the `--lint` session hook.
//! * [`debug_validate_path`] — a shallow O(#constraints) subset cheap
//!   enough to run inside `Engine::run_prefix` under `debug_assertions` on
//!   every explored path.

use crate::context::Context;
use crate::term::{Node, TermId};

/// The category of a well-formedness violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WfIssueKind {
    /// A node's stored width disagrees with the width implied by its
    /// operands (e.g. an `Add` over mixed widths).
    WidthMismatch,
    /// A path constraint that is not a width-1 term.
    NonBooleanConstraint,
    /// A path constraint that is the constant `false`: the path should
    /// have been marked infeasible instead of carrying it.
    ConstantFalseConstraint,
    /// A path constraint that is the constant `true`: it restricts
    /// nothing, so it is dead weight (advisory).
    TautologicalConstraint,
    /// A path constraint that is not a literal constant but that the
    /// abstract-interpretation lattice ([`crate::absint`]) refutes: no
    /// assignment of its symbols can make it true. A live path carrying
    /// such a condition should have been pruned as infeasible, so — like
    /// [`WfIssueKind::ConstantFalseConstraint`] — this is a tooling bug
    /// and gates.
    StaticallyFalseConstraint,
    /// A constraint sharing no symbol with any other constraint on the
    /// path: it is unreachable from the rest of the path condition and
    /// can never interact with it (advisory).
    DisconnectedConstraint,
    /// A symbolic read (free symbol) that appears in no constraint: the
    /// explored path never bounded it (advisory).
    UnconstrainedSymbol,
    /// A symbolic read that appears in no constraint *and* in no output
    /// term: the path neither bounded nor observed it, so the symbol is
    /// dead weight in the exploration (advisory). Only reported by
    /// [`validate_path_with_outputs`], which knows the output frontier.
    DeadSymbol,
}

impl WfIssueKind {
    /// Short stable identifier used in reports.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            WfIssueKind::WidthMismatch => "width-mismatch",
            WfIssueKind::NonBooleanConstraint => "non-boolean-constraint",
            WfIssueKind::ConstantFalseConstraint => "constant-false-constraint",
            WfIssueKind::TautologicalConstraint => "tautological-constraint",
            WfIssueKind::StaticallyFalseConstraint => "statically-false-constraint",
            WfIssueKind::DisconnectedConstraint => "disconnected-constraint",
            WfIssueKind::UnconstrainedSymbol => "unconstrained-symbol",
            WfIssueKind::DeadSymbol => "dead-symbol",
        }
    }

    /// Advisory issues flag suspicious-but-legal shapes; they do not fail
    /// the lint gate.
    #[must_use]
    pub fn advisory(self) -> bool {
        matches!(
            self,
            WfIssueKind::TautologicalConstraint
                | WfIssueKind::DisconnectedConstraint
                | WfIssueKind::UnconstrainedSymbol
                | WfIssueKind::DeadSymbol
        )
    }
}

/// One well-formedness violation, anchored at a term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WfIssue {
    /// The violation category.
    pub kind: WfIssueKind,
    /// The offending term (a node for structural issues, a constraint root
    /// or symbol for path-level issues).
    pub term: TermId,
    /// Human-readable explanation.
    pub detail: String,
}

impl std::fmt::Display for WfIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.kind.code(), self.term, self.detail)
    }
}

/// Recomputes the width invariant of a single node from its operands.
///
/// Returns a description of the violation, or `None` if the node is sound.
fn check_node(ctx: &Context, id: TermId) -> Option<String> {
    let stored = ctx.width(id);
    let w = |t: TermId| ctx.width(t);
    let same = |a: TermId, b: TermId| -> Option<String> {
        if w(a) != w(b) {
            return Some(format!("operand widths differ: {} vs {}", w(a), w(b)));
        }
        None
    };
    let expect = |expected: u32| -> Option<String> {
        if stored != expected {
            return Some(format!("stored width {stored}, expected {expected}"));
        }
        None
    };
    match ctx.node(id) {
        Node::Const { width, value } => {
            if width < 64 && value >> width != 0 {
                return Some(format!("constant {value:#x} overflows width {width}"));
            }
            expect(width)
        }
        Node::Symbol { width, .. } => expect(width),
        Node::Not(a) => expect(w(a)),
        Node::And(a, b)
        | Node::Or(a, b)
        | Node::Xor(a, b)
        | Node::Add(a, b)
        | Node::Sub(a, b)
        | Node::Mul(a, b)
        | Node::Shl(a, b)
        | Node::Lshr(a, b)
        | Node::Ashr(a, b) => same(a, b).or_else(|| expect(w(a))),
        Node::Eq(a, b) | Node::Ult(a, b) | Node::Slt(a, b) => same(a, b).or_else(|| expect(1)),
        Node::Ite(cond, t, e) => {
            if w(cond) != 1 {
                return Some(format!("ite condition has width {}", w(cond)));
            }
            same(t, e).or_else(|| expect(w(t)))
        }
        Node::Extract { term, hi, lo } => {
            if lo > hi || hi >= w(term) {
                return Some(format!("extract [{hi}:{lo}] out of width {}", w(term)));
            }
            expect(hi - lo + 1)
        }
        Node::Concat { hi, lo } => expect(w(hi) + w(lo)),
        Node::ZeroExt { term, width } | Node::SignExt { term, width } => {
            if width < w(term) {
                return Some(format!("extension narrows {} to {width}", w(term)));
            }
            expect(width)
        }
    }
}

/// Depth-first walk over the nodes reachable from `root`, honouring a
/// shared `visited` bitmap so shared subgraphs are visited once.
fn visit_dag(ctx: &Context, root: TermId, visited: &mut [bool], mut each: impl FnMut(TermId)) {
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let index = id.index();
        if visited[index] {
            continue;
        }
        visited[index] = true;
        each(id);
        match ctx.node(id) {
            Node::Const { .. } | Node::Symbol { .. } => {}
            Node::Not(a) | Node::Extract { term: a, .. } => stack.push(a),
            Node::ZeroExt { term: a, .. } | Node::SignExt { term: a, .. } => stack.push(a),
            Node::And(a, b)
            | Node::Or(a, b)
            | Node::Xor(a, b)
            | Node::Add(a, b)
            | Node::Sub(a, b)
            | Node::Mul(a, b)
            | Node::Shl(a, b)
            | Node::Lshr(a, b)
            | Node::Ashr(a, b)
            | Node::Eq(a, b)
            | Node::Ult(a, b)
            | Node::Slt(a, b)
            | Node::Concat { hi: a, lo: b } => {
                stack.push(a);
                stack.push(b);
            }
            Node::Ite(c, t, e) => {
                stack.push(c);
                stack.push(t);
                stack.push(e);
            }
        }
    }
}

/// Re-validates the width invariants of every node reachable from `roots`.
///
/// Shared subgraphs are visited once; the cost is linear in the size of the
/// reachable DAG.
#[must_use]
pub fn validate_terms(ctx: &Context, roots: &[TermId]) -> Vec<WfIssue> {
    let mut issues = Vec::new();
    let mut visited = vec![false; ctx.num_nodes()];
    for &root in roots {
        visit_dag(ctx, root, &mut visited, |id| {
            if let Some(detail) = check_node(ctx, id) {
                issues.push(WfIssue {
                    kind: WfIssueKind::WidthMismatch,
                    term: id,
                    detail,
                });
            }
        });
    }
    issues
}

/// The symbol-name indices reachable from `root`.
fn reachable_symbols(ctx: &Context, root: TermId) -> Vec<u32> {
    let mut symbols = Vec::new();
    let mut visited = vec![false; ctx.num_nodes()];
    visit_dag(ctx, root, &mut visited, |id| {
        if let Node::Symbol { name, .. } = ctx.node(id) {
            symbols.push(name);
        }
    });
    symbols.sort_unstable();
    symbols
}

/// Full well-formedness pass over one explored path.
///
/// `constraints` is the path condition (conjunction of decision and assume
/// constraints, in order); `symbols` is the path's symbolic reads. Checks,
/// in order of severity:
///
/// 1. every reachable node's width invariant ([`WfIssueKind::WidthMismatch`]),
/// 2. every constraint is boolean and not constant-false,
/// 3. advisory shape rules: tautological constraints, constraints sharing
///    no symbol with the rest of the path condition, and symbols bounded by
///    no constraint at all.
#[must_use]
pub fn validate_path(ctx: &Context, constraints: &[TermId], symbols: &[TermId]) -> Vec<WfIssue> {
    validate_path_impl(ctx, constraints, symbols, None)
}

/// [`validate_path`] with the path's *output frontier* — the terms the
/// harness actually observes (e.g. both models' architectural registers
/// and PCs). With the frontier known, an unbounded symbol splits into two
/// kinds: one still reaching an output is [`WfIssueKind::UnconstrainedSymbol`]
/// (it flows out unbounded); one reaching neither a constraint nor an
/// output is [`WfIssueKind::DeadSymbol`] (the path neither bounds nor
/// observes it).
#[must_use]
pub fn validate_path_with_outputs(
    ctx: &Context,
    constraints: &[TermId],
    symbols: &[TermId],
    outputs: &[TermId],
) -> Vec<WfIssue> {
    validate_path_impl(ctx, constraints, symbols, Some(outputs))
}

fn validate_path_impl(
    ctx: &Context,
    constraints: &[TermId],
    symbols: &[TermId],
    outputs: Option<&[TermId]>,
) -> Vec<WfIssue> {
    let mut issues = validate_terms(ctx, constraints);

    let mut absint = crate::absint::AbsInt::new();
    for (index, &c) in constraints.iter().enumerate() {
        if ctx.width(c) != 1 {
            issues.push(WfIssue {
                kind: WfIssueKind::NonBooleanConstraint,
                term: c,
                detail: format!("constraint #{index} has width {}", ctx.width(c)),
            });
        }
        match ctx.const_value(c) {
            Some(0) => issues.push(WfIssue {
                kind: WfIssueKind::ConstantFalseConstraint,
                term: c,
                detail: format!("constraint #{index} is constant false"),
            }),
            Some(_) => issues.push(WfIssue {
                kind: WfIssueKind::TautologicalConstraint,
                term: c,
                detail: format!("constraint #{index} is constant true"),
            }),
            None => {
                if ctx.width(c) == 1 && absint.const_bool(ctx, c) == Some(false) {
                    issues.push(WfIssue {
                        kind: WfIssueKind::StaticallyFalseConstraint,
                        term: c,
                        detail: format!(
                            "constraint #{index} is statically false \
                             (refuted by known-bits/interval analysis)"
                        ),
                    });
                }
            }
        }
    }

    let per_constraint: Vec<Vec<u32>> = constraints
        .iter()
        .map(|&c| reachable_symbols(ctx, c))
        .collect();

    if constraints.len() >= 2 {
        for (index, (&c, mine)) in constraints.iter().zip(&per_constraint).enumerate() {
            if mine.is_empty() {
                continue; // constant constraints are reported above
            }
            let shares_symbol = per_constraint
                .iter()
                .enumerate()
                .filter(|&(other, _)| other != index)
                .any(|(_, theirs)| mine.iter().any(|s| theirs.binary_search(s).is_ok()));
            if !shares_symbol {
                issues.push(WfIssue {
                    kind: WfIssueKind::DisconnectedConstraint,
                    term: c,
                    detail: format!(
                        "constraint #{index} shares no symbol with the rest of the path condition"
                    ),
                });
            }
        }
    }

    let mut constrained: Vec<u32> = per_constraint.into_iter().flatten().collect();
    constrained.sort_unstable();
    // Symbols reachable from the output frontier, when the caller knows it.
    let observed: Option<Vec<u32>> = outputs.map(|outputs| {
        let mut observed = Vec::new();
        let mut visited = vec![false; ctx.num_nodes()];
        for &root in outputs {
            visit_dag(ctx, root, &mut visited, |id| {
                if let Node::Symbol { name, .. } = ctx.node(id) {
                    observed.push(name);
                }
            });
        }
        observed.sort_unstable();
        observed
    });
    for &sym in symbols {
        if let Node::Symbol { name, .. } = ctx.node(sym) {
            if constrained.binary_search(&name).is_err() {
                let dead = observed
                    .as_ref()
                    .is_some_and(|observed| observed.binary_search(&name).is_err());
                issues.push(if dead {
                    WfIssue {
                        kind: WfIssueKind::DeadSymbol,
                        term: sym,
                        detail: format!(
                            "symbolic read {:?} appears in no path constraint and no output term",
                            ctx.symbol_name(sym).unwrap_or("?")
                        ),
                    }
                } else {
                    WfIssue {
                        kind: WfIssueKind::UnconstrainedSymbol,
                        term: sym,
                        detail: format!(
                            "symbolic read {:?} is bounded by no constraint",
                            ctx.symbol_name(sym).unwrap_or("?")
                        ),
                    }
                });
            }
        }
    }

    issues
}

/// Shallow per-path check for `debug_assertions` builds.
///
/// Only node-local constraint properties — boolean width and
/// non-constant-false — so the engine can afford it on every explored path.
///
/// # Panics
///
/// Panics (via `debug_assert!`) when a constraint violates the invariants.
pub fn debug_validate_path(ctx: &Context, constraints: &[TermId]) {
    for &c in constraints {
        debug_assert_eq!(
            ctx.width(c),
            1,
            "path constraint {c} has width {}",
            ctx.width(c)
        );
        debug_assert_ne!(
            ctx.const_value(c),
            Some(0),
            "path constraint {c} is constant false on a live path"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_path_has_no_issues() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let c = ctx.constant(32, 7);
        let cond = ctx.ult(x, c);
        assert!(validate_path(&ctx, &[cond], &[x]).is_empty());
    }

    #[test]
    fn flags_non_boolean_and_tautological_constraints() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let t = ctx.bool_const(true);
        let issues = validate_path(&ctx, &[x, t], &[]);
        assert!(issues
            .iter()
            .any(|i| i.kind == WfIssueKind::NonBooleanConstraint));
        assert!(issues
            .iter()
            .any(|i| i.kind == WfIssueKind::TautologicalConstraint));
    }

    #[test]
    fn flags_constant_false_constraint() {
        let mut ctx = Context::new();
        let f = ctx.bool_const(false);
        let issues = validate_path(&ctx, &[f], &[]);
        assert!(issues
            .iter()
            .any(|i| i.kind == WfIssueKind::ConstantFalseConstraint));
    }

    #[test]
    fn flags_statically_false_constraint() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let one = ctx.constant(32, 1);
        let zero = ctx.constant(32, 0);
        // `(x | 1) == 0` is not a literal constant, but bit 0 of the
        // left side is known-one, so the dataflow lattice refutes it.
        let odd = ctx.or(x, one);
        let cond = ctx.eq(odd, zero);
        assert!(ctx.const_value(cond).is_none(), "must not be ctx-folded");
        let issues = validate_path(&ctx, &[cond], &[x]);
        assert!(
            issues
                .iter()
                .any(|i| i.kind == WfIssueKind::StaticallyFalseConstraint && i.term == cond),
            "{issues:#?}"
        );
        // A satisfiable constraint of the same shape stays clean.
        let two = ctx.constant(32, 2);
        let even_bound = ctx.ult(odd, two);
        let issues = validate_path(&ctx, &[even_bound], &[x]);
        assert!(!issues
            .iter()
            .any(|i| i.kind == WfIssueKind::StaticallyFalseConstraint));
    }

    #[test]
    fn flags_unconstrained_symbol() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let c = ctx.constant(32, 1);
        let cond = ctx.eq(x, c);
        let issues = validate_path(&ctx, &[cond], &[x, y]);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].kind, WfIssueKind::UnconstrainedSymbol);
        assert_eq!(issues[0].term, y);
    }

    #[test]
    fn flags_disconnected_constraint() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let one = ctx.constant(32, 1);
        let two = ctx.constant(32, 2);
        let cx1 = ctx.ult(x, one);
        let cx2 = ctx.ult(x, two);
        let cy = ctx.eq(y, one);
        let issues = validate_path(&ctx, &[cx1, cx2, cy], &[x, y]);
        assert!(issues
            .iter()
            .any(|i| i.kind == WfIssueKind::DisconnectedConstraint && i.term == cy));
        // The two x-constraints share x, so they are not flagged.
        assert_eq!(
            issues
                .iter()
                .filter(|i| i.kind == WfIssueKind::DisconnectedConstraint)
                .count(),
            1
        );
    }

    #[test]
    fn width_revalidation_accepts_constructed_terms() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let sum = ctx.add(x, y);
        let hi = ctx.extract(sum, 31, 16);
        let lo = ctx.extract(sum, 15, 0);
        let joined = ctx.concat(hi, lo);
        let ext = ctx.zero_ext(hi, 40);
        let lt = ctx.slt(x, y);
        let pick = ctx.ite(lt, sum, joined);
        assert!(validate_terms(&ctx, &[pick, ext]).is_empty());
    }

    #[test]
    fn advisory_issue_kinds_are_marked() {
        assert!(!WfIssueKind::WidthMismatch.advisory());
        assert!(!WfIssueKind::ConstantFalseConstraint.advisory());
        assert!(!WfIssueKind::StaticallyFalseConstraint.advisory());
        assert!(WfIssueKind::UnconstrainedSymbol.advisory());
        assert!(WfIssueKind::DisconnectedConstraint.advisory());
        assert!(WfIssueKind::DeadSymbol.advisory());
    }

    #[test]
    fn the_output_frontier_splits_unbounded_symbols_into_two_kinds() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let flows_out = ctx.symbol(32, "flows_out");
        let dead = ctx.symbol(32, "dead");
        let one = ctx.constant(32, 1);
        let cond = ctx.eq(x, one);
        let output = ctx.add(x, flows_out);
        let issues = validate_path_with_outputs(&ctx, &[cond], &[x, flows_out, dead], &[output]);
        assert_eq!(issues.len(), 2, "{issues:#?}");
        assert!(issues
            .iter()
            .any(|i| i.kind == WfIssueKind::UnconstrainedSymbol && i.term == flows_out));
        assert!(issues
            .iter()
            .any(|i| i.kind == WfIssueKind::DeadSymbol && i.term == dead));
    }

    #[test]
    fn without_an_output_frontier_no_symbol_is_called_dead() {
        let mut ctx = Context::new();
        let dead = ctx.symbol(32, "dead");
        let issues = validate_path(&ctx, &[], &[dead]);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].kind, WfIssueKind::UnconstrainedSymbol);
    }
}
