//! Projection of path conditions onto symbolic instruction-fetch slots.
//!
//! The coverage certifier needs, for every explored path, the set of
//! 32-bit instruction words the path accounts for — as ternary cubes
//! ([`Pattern`]s), so the completeness/disjointness theorems stay algebraic
//! with zero enumeration over the 2^32 space.
//!
//! A path condition is a conjunction of constraints over many symbols
//! (fetch slots, registers, data memory). Projecting it onto one fetch
//! slot `s` means computing `S(C) = { w : ∃ other symbols. C holds with
//! s = w }`. The projector computes a sound *over-approximation* of `S`
//! per constraint and intersects:
//!
//! * **slot-pure** constraints (mention only `s`) project *exactly*:
//!   `S(c) = { w : c(w) }`, and And/Or/Not commute with the set algebra.
//!   Small-support leaves are enumerated by Shannon decomposition over
//!   the dependent slot bits (at most `2^ENUM_LIMIT` concrete
//!   evaluations of the leaf, never of the space).
//! * **slot-free** constraints are dropped: on a feasible path they hold
//!   in the path's model, so they do not restrict the slot projection.
//! * **mixed** constraints are conservatively widened to the universe
//!   (after peeling top-level conjunctions), flagged `exact = false`.
//!
//! Widening only ever *grows* a path's claimed cover, which is the sound
//! direction for the disjointness theorem and — because decode-class
//! structure comes from slot-pure decide() constraints that project
//! exactly — does not mask genuinely dropped decode classes in the
//! completeness theorem (a dropped class stays excluded by the surviving
//! paths' exact decode cubes).

use std::collections::HashMap;
use std::rc::Rc;

use symcosim_isa::{Pattern, PatternSet};

use crate::eval::{eval, Env};
use crate::term::{Node, TermId};
use crate::Context;

/// How a constraint ended up on the path. Recorded by the executors in
/// lock-step with the constraint vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOrigin {
    /// Pushed by `decide` — the value is the position in the path's
    /// decision bitstring.
    Decision(u32),
    /// Pushed by `assume` — a domain or environment assumption.
    Assumed,
    /// Pinned after the fact by `add_constraint` (e.g. the voter
    /// committing a witnessed mismatch). Excluded from projection: a
    /// commit narrows the path *after* its behaviour class is fixed, so
    /// including it would under-claim the class.
    Committed,
}

/// The projection of one path's condition onto one fetch slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotCoverage {
    /// Symbol name of the slot (e.g. `imem_00000000`).
    pub slot: String,
    /// Disjoint cubes over-approximating the words the path accounts for.
    pub cubes: Vec<Pattern>,
    /// Whether the cubes are exactly the projection (no widening anywhere).
    pub exact: bool,
    /// Decision-string positions whose condition was slot-pure and
    /// projected exactly: these decisions split the instruction space, so
    /// sibling subtrees at such a position must claim disjoint words.
    pub instr_decisions: Vec<u32>,
}

/// Exact union of two per-path slot covers, for the state-merging gate
/// (see [`crate::merge`]): the merged path accounts for every word either
/// sibling accounted for, and the union is only trusted when it is
/// provably exact.
///
/// Slots are matched by name; a slot one side never constrains is the
/// whole universe there, so the union widens to the universe (still
/// exact). Returns `None` as soon as any participating cover is inexact
/// — the merged coverage would no longer be provably the union of the
/// siblings' cubes, and the caller must fall back to unmerged forking.
#[must_use]
pub fn union_covers(a: &[SlotCoverage], b: &[SlotCoverage]) -> Option<Vec<SlotCoverage>> {
    if a.iter().chain(b.iter()).any(|slot| !slot.exact) {
        return None;
    }
    let mut names: Vec<&str> = a
        .iter()
        .chain(b.iter())
        .map(|slot| slot.slot.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    let mut out = Vec::new();
    for name in names {
        fn find<'c>(side: &'c [SlotCoverage], name: &str) -> Option<&'c SlotCoverage> {
            side.iter().find(|slot| slot.slot == name)
        }
        let mut set = match (find(a, name), find(b, name)) {
            (Some(sa), Some(sb)) => {
                let mut set = PatternSet::empty();
                for cube in &sa.cubes {
                    set.insert(cube);
                }
                let mut other = PatternSet::empty();
                for cube in &sb.cubes {
                    other.insert(cube);
                }
                set.union_with(&other);
                set
            }
            _ => PatternSet::universe(),
        };
        set.sort_cubes();
        out.push(SlotCoverage {
            slot: name.to_string(),
            cubes: set.cubes().to_vec(),
            exact: true,
            instr_decisions: Vec::new(),
        });
    }
    Some(out)
}

/// Maximum popcount of a leaf's slot-bit support before enumeration is
/// abandoned and the leaf is widened. `2^12` evaluations covers the widest
/// decode field the ISA uses (the 12-bit CSR address).
const ENUM_LIMIT: u32 = 12;

/// Per-bit abstract value of a term relative to one designated slot symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsBit {
    /// Constantly zero.
    Zero,
    /// Constantly one.
    One,
    /// Equal to slot bit `i`.
    Slot(u8),
    /// An unknown function of the given slot bits and, if `other`, of at
    /// least one non-slot symbol.
    Mix { slot: u32, other: bool },
}

impl AbsBit {
    fn deps(self) -> (u32, bool) {
        match self {
            AbsBit::Zero | AbsBit::One => (0, false),
            AbsBit::Slot(i) => (1u32 << i, false),
            AbsBit::Mix { slot, other } => (slot, other),
        }
    }

    fn mix2(a: AbsBit, b: AbsBit) -> AbsBit {
        let (s1, o1) = a.deps();
        let (s2, o2) = b.deps();
        AbsBit::Mix {
            slot: s1 | s2,
            other: o1 || o2,
        }
    }

    fn mix3(a: AbsBit, b: AbsBit, c: AbsBit) -> AbsBit {
        AbsBit::mix2(AbsBit::mix2(a, b), c)
    }
}

/// Slot-bit support and non-slot dependence of a (boolean) term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Support {
    slot_bits: u32,
    other: bool,
}

impl Support {
    fn uses_slot(self) -> bool {
        self.slot_bits != 0
    }
}

/// Projects path conditions onto fetch slots, memoising the per-term
/// analyses so sibling paths in a session share the work (the contexts are
/// hash-consed, so structurally equal conditions hit the same entries).
#[derive(Debug, Default)]
pub struct Projector {
    bits: HashMap<(TermId, TermId), Rc<Vec<AbsBit>>>,
    proj: HashMap<(TermId, TermId), (PatternSet, bool)>,
}

impl Projector {
    /// Creates an empty projector.
    #[must_use]
    pub fn new() -> Projector {
        Projector::default()
    }

    /// Projects a path's constraint set onto every fetch slot it mentions.
    ///
    /// `constraints` and `origins` run in lock-step; `Committed` entries
    /// are skipped. Slots are the symbols of `ctx` whose name starts with
    /// `slot_prefix` and that appear in at least one projected constraint,
    /// reported in name order.
    pub fn project_path(
        &mut self,
        ctx: &Context,
        slot_prefix: &str,
        constraints: &[TermId],
        origins: &[ConstraintOrigin],
    ) -> Vec<SlotCoverage> {
        debug_assert_eq!(constraints.len(), origins.len());
        let mut slots: Vec<(String, TermId)> = ctx
            .symbols()
            .iter()
            .filter_map(|&sym| {
                let name = ctx.symbol_name(sym)?;
                (name.starts_with(slot_prefix) && ctx.width(sym) == 32)
                    .then(|| (name.to_string(), sym))
            })
            .collect();
        slots.sort();

        let mut out = Vec::new();
        for (name, slot) in slots {
            let mut cover = PatternSet::universe();
            let mut exact = true;
            let mut instr_decisions = Vec::new();
            let mut mentioned = false;
            for (&c, &origin) in constraints.iter().zip(origins) {
                if origin == ConstraintOrigin::Committed {
                    continue;
                }
                let support = self.support(ctx, slot, c);
                if !support.uses_slot() {
                    continue;
                }
                mentioned = true;
                let (set, set_exact) = self.constraint_cover(ctx, slot, c);
                cover = cover.intersect_set(&set);
                exact &= set_exact;
                if let ConstraintOrigin::Decision(index) = origin {
                    if !support.other && set_exact {
                        instr_decisions.push(index);
                    }
                }
            }
            if !mentioned {
                continue;
            }
            cover.sort_cubes();
            out.push(SlotCoverage {
                slot: name,
                cubes: cover.cubes().to_vec(),
                exact,
                instr_decisions,
            });
        }
        out
    }

    /// Over-approximate cover of one top-level constraint. Peels top-level
    /// conjunctions so a mixed `And(slot-pure, register-only)` still
    /// projects its pure half exactly (each conjunct of a feasible path
    /// holds in the path's model, so the slot-free halves drop out).
    fn constraint_cover(&mut self, ctx: &Context, slot: TermId, c: TermId) -> (PatternSet, bool) {
        let support = self.support(ctx, slot, c);
        if !support.uses_slot() {
            return (PatternSet::universe(), true);
        }
        if !support.other {
            return self.project_pure(ctx, slot, c);
        }
        if let Node::And(a, b) = ctx.node(c) {
            if ctx.width(c) == 1 {
                let (sa, ea) = self.constraint_cover(ctx, slot, a);
                let (sb, eb) = self.constraint_cover(ctx, slot, b);
                return (sa.intersect_set(&sb), ea && eb);
            }
        }
        (PatternSet::universe(), false)
    }

    /// Slot-bit support of a boolean term.
    fn support(&mut self, ctx: &Context, slot: TermId, term: TermId) -> Support {
        let bits = self.abs_bits(ctx, slot, term);
        let (slot_bits, other) = bits[0].deps();
        Support { slot_bits, other }
    }

    /// Exact projection of a slot-pure boolean term; `(universe, false)`
    /// when a sub-leaf's support defeats `ENUM_LIMIT` and the structure
    /// does not decompose.
    fn project_pure(&mut self, ctx: &Context, slot: TermId, term: TermId) -> (PatternSet, bool) {
        if let Some(hit) = self.proj.get(&(slot, term)) {
            return hit.clone();
        }
        let support = self.support(ctx, slot, term);
        debug_assert!(!support.other, "project_pure needs a slot-pure term");
        let result = if support.slot_bits.count_ones() <= ENUM_LIMIT {
            (self.enumerate(ctx, slot, term, support.slot_bits), true)
        } else {
            self.decompose(ctx, slot, term)
        };
        self.proj.insert((slot, term), result.clone());
        result
    }

    /// Structural decomposition of a wide slot-pure boolean term. All the
    /// combinators are exact over a single-symbol projection; only an
    /// opaque wide leaf widens (and a widened operand poisons `Not`/`Ite`
    /// toward the universe, which stays an over-approximation).
    fn decompose(&mut self, ctx: &Context, slot: TermId, term: TermId) -> (PatternSet, bool) {
        match ctx.node(term) {
            Node::Not(a) => {
                let (sa, ea) = self.project_pure(ctx, slot, a);
                if ea {
                    (sa.complement(), true)
                } else {
                    (PatternSet::universe(), false)
                }
            }
            Node::And(a, b) if ctx.width(term) == 1 => {
                let (sa, ea) = self.project_pure(ctx, slot, a);
                let (sb, eb) = self.project_pure(ctx, slot, b);
                (sa.intersect_set(&sb), ea && eb)
            }
            Node::Or(a, b) if ctx.width(term) == 1 => {
                let (sa, ea) = self.project_pure(ctx, slot, a);
                let (mut su, eb) = self.project_pure(ctx, slot, b);
                su.union_with(&sa);
                (su, ea && eb)
            }
            Node::Xor(a, b) if ctx.width(term) == 1 => {
                let (sa, ea) = self.project_pure(ctx, slot, a);
                let (sb, eb) = self.project_pure(ctx, slot, b);
                if ea && eb {
                    let mut only_a = sa.clone();
                    only_a.subtract_set(&sb);
                    let mut only_b = sb;
                    only_b.subtract_set(&sa);
                    only_a.union_with(&only_b);
                    (only_a, true)
                } else {
                    (PatternSet::universe(), false)
                }
            }
            Node::Ite(c, t, e) if ctx.width(term) == 1 => {
                let (sc, ec) = self.project_pure(ctx, slot, c);
                let (st, et) = self.project_pure(ctx, slot, t);
                let (se, ee) = self.project_pure(ctx, slot, e);
                if ec {
                    let mut then_side = sc.intersect_set(&st);
                    then_side.union_with(&sc.complement().intersect_set(&se));
                    (then_side, et && ee)
                } else {
                    let mut both = st;
                    both.union_with(&se);
                    (both, false)
                }
            }
            Node::Eq(a, b) => {
                // Wide equalities (e.g. `slot & 0xfe00707f == funct`) have
                // too many dependent bits for Shannon enumeration, but when
                // every bit of both sides is a constant or a single slot
                // bit, the equality is exactly one cube: each pair of bits
                // contributes a required slot-bit value or no constraint
                // at all.
                let va = self.abs_bits(ctx, slot, a);
                let vb = self.abs_bits(ctx, slot, b);
                match affine_eq_cube(&va, &vb) {
                    Some(Some(cube)) => {
                        let mut set = PatternSet::empty();
                        set.insert(&cube);
                        (set, true)
                    }
                    Some(None) => (PatternSet::empty(), true),
                    None => (PatternSet::universe(), false),
                }
            }
            _ => (PatternSet::universe(), false),
        }
    }

    /// Shannon enumeration of a slot-pure leaf over its dependent slot
    /// bits: `2^popcount(bits)` concrete evaluations, with adjacent
    /// half-cubes merged so an all-true subspace collapses back into one
    /// cube.
    fn enumerate(&self, ctx: &Context, slot: TermId, term: TermId, bits: u32) -> PatternSet {
        let slot_name = ctx.symbol_name(slot).expect("slot is a symbol").to_string();
        let mut env = Env::new();
        env.insert(slot_name.clone(), 0);
        let positions: Vec<u32> = (0..32).filter(|i| bits & (1 << i) != 0).collect();
        let cubes = shannon(ctx, term, &slot_name, &mut env, &positions, bits, 0);
        let mut set = PatternSet::empty();
        for cube in cubes {
            set.insert(&cube);
        }
        set.sort_cubes();
        set
    }

    /// Memoised per-bit abstract analysis relative to `slot`.
    fn abs_bits(&mut self, ctx: &Context, slot: TermId, term: TermId) -> Rc<Vec<AbsBit>> {
        if let Some(hit) = self.bits.get(&(slot, term)) {
            return Rc::clone(hit);
        }
        let width = ctx.width(term) as usize;
        let result: Vec<AbsBit> = match ctx.node(term) {
            Node::Const { value, .. } => (0..width)
                .map(|i| {
                    if value >> i & 1 == 1 {
                        AbsBit::One
                    } else {
                        AbsBit::Zero
                    }
                })
                .collect(),
            Node::Symbol { .. } => {
                if term == slot {
                    (0..width).map(|i| AbsBit::Slot(i as u8)).collect()
                } else {
                    vec![
                        AbsBit::Mix {
                            slot: 0,
                            other: true
                        };
                        width
                    ]
                }
            }
            Node::Not(a) => self
                .abs_bits(ctx, slot, a)
                .iter()
                .map(|&bit| match bit {
                    AbsBit::Zero => AbsBit::One,
                    AbsBit::One => AbsBit::Zero,
                    other => AbsBit::mix2(other, AbsBit::Zero),
                })
                .collect(),
            Node::And(a, b) => {
                let (va, vb) = (self.abs_bits(ctx, slot, a), self.abs_bits(ctx, slot, b));
                va.iter()
                    .zip(vb.iter())
                    .map(|(&x, &y)| match (x, y) {
                        (AbsBit::Zero, _) | (_, AbsBit::Zero) => AbsBit::Zero,
                        (AbsBit::One, z) | (z, AbsBit::One) => z,
                        (AbsBit::Slot(i), AbsBit::Slot(j)) if i == j => AbsBit::Slot(i),
                        _ => AbsBit::mix2(x, y),
                    })
                    .collect()
            }
            Node::Or(a, b) => {
                let (va, vb) = (self.abs_bits(ctx, slot, a), self.abs_bits(ctx, slot, b));
                va.iter()
                    .zip(vb.iter())
                    .map(|(&x, &y)| match (x, y) {
                        (AbsBit::One, _) | (_, AbsBit::One) => AbsBit::One,
                        (AbsBit::Zero, z) | (z, AbsBit::Zero) => z,
                        (AbsBit::Slot(i), AbsBit::Slot(j)) if i == j => AbsBit::Slot(i),
                        _ => AbsBit::mix2(x, y),
                    })
                    .collect()
            }
            Node::Xor(a, b) => {
                let (va, vb) = (self.abs_bits(ctx, slot, a), self.abs_bits(ctx, slot, b));
                va.iter()
                    .zip(vb.iter())
                    .map(|(&x, &y)| match (x, y) {
                        (AbsBit::Zero, z) | (z, AbsBit::Zero) => z,
                        (AbsBit::Slot(i), AbsBit::Slot(j)) if i == j => AbsBit::Zero,
                        _ => AbsBit::mix2(x, y),
                    })
                    .collect()
            }
            Node::Add(a, b) | Node::Sub(a, b) => {
                // Carries ripple upward: bit i depends on every input bit
                // at or below i.
                let (va, vb) = (self.abs_bits(ctx, slot, a), self.abs_bits(ctx, slot, b));
                let mut cum = (0u32, false);
                va.iter()
                    .zip(vb.iter())
                    .map(|(&x, &y)| {
                        let (sx, ox) = x.deps();
                        let (sy, oy) = y.deps();
                        cum = (cum.0 | sx | sy, cum.1 || ox || oy);
                        AbsBit::Mix {
                            slot: cum.0,
                            other: cum.1,
                        }
                    })
                    .collect()
            }
            Node::Mul(a, b) => self.smear(ctx, slot, &[a, b], width),
            Node::Shl(a, s) | Node::Lshr(a, s) | Node::Ashr(a, s) => {
                if let Some(shift) = ctx.const_value(s) {
                    let va = self.abs_bits(ctx, slot, a);
                    let shift = shift.min(width as u64) as usize;
                    let node = ctx.node(term);
                    (0..width)
                        .map(|i| match node {
                            Node::Shl(..) => {
                                if i >= shift && shift < width {
                                    va[i - shift]
                                } else {
                                    AbsBit::Zero
                                }
                            }
                            Node::Lshr(..) => {
                                if shift < width && i + shift < width {
                                    va[i + shift]
                                } else {
                                    AbsBit::Zero
                                }
                            }
                            _ => va[(i + shift).min(width - 1)],
                        })
                        .collect()
                } else {
                    self.smear(ctx, slot, &[a, s], width)
                }
            }
            Node::Eq(a, b) | Node::Ult(a, b) | Node::Slt(a, b) => self.smear(ctx, slot, &[a, b], 1),
            Node::Ite(c, t, e) => {
                let vc = self.abs_bits(ctx, slot, c);
                let (vt, ve) = (self.abs_bits(ctx, slot, t), self.abs_bits(ctx, slot, e));
                vt.iter()
                    .zip(ve.iter())
                    .map(|(&x, &y)| {
                        let concrete = matches!(x, AbsBit::Zero | AbsBit::One | AbsBit::Slot(_));
                        if x == y && concrete {
                            x
                        } else {
                            AbsBit::mix3(x, y, vc[0])
                        }
                    })
                    .collect()
            }
            Node::Extract { term: a, hi, lo } => {
                let va = self.abs_bits(ctx, slot, a);
                va[lo as usize..=hi as usize].to_vec()
            }
            Node::Concat { hi, lo } => {
                let (vh, vl) = (self.abs_bits(ctx, slot, hi), self.abs_bits(ctx, slot, lo));
                vl.iter().chain(vh.iter()).copied().collect()
            }
            Node::ZeroExt { term: a, .. } => {
                let va = self.abs_bits(ctx, slot, a);
                let mut v = va.to_vec();
                v.resize(width, AbsBit::Zero);
                v
            }
            Node::SignExt { term: a, .. } => {
                let va = self.abs_bits(ctx, slot, a);
                let top = *va.last().expect("nonzero width");
                let top = if matches!(top, AbsBit::Zero | AbsBit::One | AbsBit::Slot(_)) {
                    top
                } else {
                    AbsBit::mix2(top, AbsBit::Zero)
                };
                let mut v = va.to_vec();
                v.resize(width, top);
                v
            }
        };
        debug_assert_eq!(result.len(), width);
        let rc = Rc::new(result);
        self.bits.insert((slot, term), Rc::clone(&rc));
        rc
    }

    /// Every output bit depends on every bit of every operand.
    fn smear(
        &mut self,
        ctx: &Context,
        slot: TermId,
        operands: &[TermId],
        width: usize,
    ) -> Vec<AbsBit> {
        let mut total = (0u32, false);
        for &op in operands {
            for bit in self.abs_bits(ctx, slot, op).iter() {
                let (s, o) = bit.deps();
                total = (total.0 | s, total.1 || o);
            }
        }
        vec![
            AbsBit::Mix {
                slot: total.0,
                other: total.1,
            };
            width
        ]
    }
}

/// Cube form of a bitwise equality over abstract bit vectors.
///
/// Returns `None` when some bit pair is not cube-expressible (a `Mix`
/// bit, or two *different* slot bits, whose correlation a single cube
/// cannot state); `Some(None)` when the equality is contradictory (two
/// unequal constants, or conflicting requirements on one slot bit); and
/// `Some(Some(cube))` otherwise — the possibly-universal cube of slot
/// words satisfying the equality.
fn affine_eq_cube(lhs: &[AbsBit], rhs: &[AbsBit]) -> Option<Option<Pattern>> {
    let mut mask = 0u32;
    let mut value = 0u32;
    // Requires slot bit `i` to equal `bit`; false on conflict.
    fn require(mask: &mut u32, value: &mut u32, i: u8, bit: bool) -> bool {
        let m = 1u32 << i;
        if *mask & m != 0 {
            return (*value & m != 0) == bit;
        }
        *mask |= m;
        if bit {
            *value |= m;
        }
        true
    }
    for (&x, &y) in lhs.iter().zip(rhs) {
        let feasible = match (x, y) {
            (AbsBit::Zero, AbsBit::Zero) | (AbsBit::One, AbsBit::One) => true,
            (AbsBit::Zero, AbsBit::One) | (AbsBit::One, AbsBit::Zero) => false,
            (AbsBit::Slot(i), AbsBit::Slot(j)) if i == j => true,
            (AbsBit::Slot(i), AbsBit::One) | (AbsBit::One, AbsBit::Slot(i)) => {
                require(&mut mask, &mut value, i, true)
            }
            (AbsBit::Slot(i), AbsBit::Zero) | (AbsBit::Zero, AbsBit::Slot(i)) => {
                require(&mut mask, &mut value, i, false)
            }
            _ => return None,
        };
        if !feasible {
            return Some(None);
        }
    }
    Some(Some(Pattern::new(mask, value)))
}

/// Recursive Shannon split over `positions[depth..]`; leaves evaluate the
/// term with the slot bound to the accumulated assignment (free slot bits
/// zero — the term does not depend on them). Adjacent true half-cubes
/// merge on the way back up.
fn shannon(
    ctx: &Context,
    term: TermId,
    slot_name: &str,
    env: &mut Env,
    positions: &[u32],
    mask: u32,
    value: u32,
) -> Vec<Pattern> {
    let Some((&bit_index, rest)) = positions.split_first() else {
        *env.get_mut(slot_name).expect("slot bound") = u64::from(value);
        return if eval(ctx, term, env) & 1 == 1 {
            vec![Pattern::new(mask, value)]
        } else {
            Vec::new()
        };
    };
    let bit = 1u32 << bit_index;
    let lo = shannon(ctx, term, slot_name, env, rest, mask, value);
    let mut hi = shannon(ctx, term, slot_name, env, rest, mask, value | bit);
    let mut merged = Vec::with_capacity(lo.len() + hi.len());
    for cube in lo {
        let twin = Pattern::new(cube.mask, cube.value | bit);
        if let Some(pos) = hi.iter().position(|h| *h == twin) {
            hi.swap_remove(pos);
            merged.push(Pattern::new(cube.mask & !bit, cube.value));
        } else {
            merged.push(cube);
        }
    }
    merged.extend(hi);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Context, TermId) {
        let mut ctx = Context::new();
        let slot = ctx.symbol(32, "imem_00000000");
        (ctx, slot)
    }

    fn field(ctx: &mut Context, word: TermId, hi: u32, lo: u32) -> TermId {
        let amount = ctx.constant(32, u64::from(lo));
        let shifted = ctx.lshr(word, amount);
        let mask = ctx.constant(32, (1u64 << (hi - lo + 1)) - 1);
        ctx.and(shifted, mask)
    }

    fn project_one(
        ctx: &Context,
        _slot: TermId,
        c: TermId,
        origin: ConstraintOrigin,
    ) -> SlotCoverage {
        let mut projector = Projector::new();
        let covers = projector.project_path(ctx, "imem_", &[c], &[origin]);
        assert_eq!(covers.len(), 1);
        covers.into_iter().next().unwrap()
    }

    #[test]
    fn opcode_equality_projects_to_its_exact_cube() {
        let (mut ctx, slot) = setup();
        let opcode = field(&mut ctx, slot, 6, 0);
        let target = ctx.constant(32, 0x63);
        let c = ctx.eq(opcode, target);
        let cover = project_one(&ctx, slot, c, ConstraintOrigin::Decision(0));
        assert!(cover.exact);
        assert_eq!(cover.cubes, vec![Pattern::new(0x7f, 0x63)]);
        assert_eq!(cover.instr_decisions, vec![0]);
    }

    #[test]
    fn negated_opcode_is_the_complement() {
        let (mut ctx, slot) = setup();
        let opcode = field(&mut ctx, slot, 6, 0);
        let target = ctx.constant(32, 0x73);
        let eq = ctx.eq(opcode, target);
        let c = ctx.not_bool(eq);
        let cover = project_one(&ctx, slot, c, ConstraintOrigin::Assumed);
        assert!(cover.exact);
        let set = {
            let mut s = PatternSet::empty();
            for cube in &cover.cubes {
                s.insert(cube);
            }
            s
        };
        assert_eq!(set.count(), (1u64 << 32) - (1u64 << 25));
        assert!(!set.covers(0x73));
        assert!(set.covers(0x63));
    }

    #[test]
    fn csr_range_enumerates_exactly() {
        let (mut ctx, slot) = setup();
        // csr field in [0xc00, 0xc02]: uge && ult on the 12-bit field.
        let csr = field(&mut ctx, slot, 31, 20);
        let lo = ctx.constant(32, 0xc00);
        let hi = ctx.constant(32, 0xc03);
        let below = ctx.ult(csr, lo);
        let ge = ctx.not_bool(below);
        let lt = ctx.ult(csr, hi);
        let c = ctx.and(ge, lt);
        let cover = project_one(&ctx, slot, c, ConstraintOrigin::Assumed);
        assert!(cover.exact);
        let mut set = PatternSet::empty();
        for cube in &cover.cubes {
            set.insert(cube);
        }
        // 3 CSR values × 2^20 free low bits.
        assert_eq!(set.count(), 3 << 20);
        assert!(set.covers(0xc00_00000));
        assert!(set.covers(0xc02_00073));
        assert!(!set.covers(0xc03_00000));
    }

    #[test]
    fn mixed_constraint_widens_to_universe_inexactly() {
        let (mut ctx, slot) = setup();
        let reg = ctx.symbol(32, "x1_0");
        let sum = ctx.add(slot, reg);
        let zero = ctx.constant(32, 0);
        let c = ctx.eq(sum, zero);
        let cover = project_one(&ctx, slot, c, ConstraintOrigin::Decision(3));
        assert!(!cover.exact);
        assert_eq!(cover.cubes, vec![Pattern::universe()]);
        assert!(cover.instr_decisions.is_empty());
    }

    #[test]
    fn mixed_conjunction_keeps_its_pure_half() {
        let (mut ctx, slot) = setup();
        let opcode = field(&mut ctx, slot, 6, 0);
        let target = ctx.constant(32, 0x33);
        let pure = ctx.eq(opcode, target);
        let reg = ctx.symbol(32, "x2_0");
        let limit = ctx.constant(32, 10);
        let free = ctx.ult(reg, limit);
        let c = ctx.and(pure, free);
        let cover = project_one(&ctx, slot, c, ConstraintOrigin::Assumed);
        assert_eq!(cover.cubes, vec![Pattern::new(0x7f, 0x33)]);
        assert!(cover.exact);
    }

    #[test]
    fn slot_free_constraints_are_invisible() {
        let (mut ctx, slot) = setup();
        let _ = slot;
        let reg = ctx.symbol(32, "x3_0");
        let zero = ctx.constant(32, 0);
        let c = ctx.ne(reg, zero);
        let mut projector = Projector::new();
        let covers = projector.project_path(&ctx, "imem_", &[c], &[ConstraintOrigin::Assumed]);
        assert!(covers.is_empty(), "no slot is mentioned");
    }

    #[test]
    fn committed_constraints_are_excluded() {
        let (mut ctx, slot) = setup();
        let opcode = field(&mut ctx, slot, 6, 0);
        let branch = ctx.constant(32, 0x63);
        let decided = ctx.eq(opcode, branch);
        let word = ctx.constant(32, 0x0000_0063);
        let committed = ctx.eq(slot, word);
        let mut projector = Projector::new();
        let covers = projector.project_path(
            &ctx,
            "imem_",
            &[decided, committed],
            &[ConstraintOrigin::Decision(0), ConstraintOrigin::Committed],
        );
        assert_eq!(covers.len(), 1);
        // The committed equality would narrow the cube to one word; it must
        // not.
        assert_eq!(covers[0].cubes, vec![Pattern::new(0x7f, 0x63)]);
    }

    #[test]
    fn wide_or_tree_decomposes_compositionally() {
        let (mut ctx, slot) = setup();
        // funct3 != 0 && (csr == 0x340 || csr in [0xc00, 0xc02]) — support
        // is 15 bits, above ENUM_LIMIT, so the And/Or structure must split.
        let funct3 = field(&mut ctx, slot, 14, 12);
        let zero = ctx.constant(32, 0);
        let f3_nonzero = ctx.ne(funct3, zero);
        let csr = field(&mut ctx, slot, 31, 20);
        let mscratch = ctx.constant(32, 0x340);
        let is_mscratch = ctx.eq(csr, mscratch);
        let lo = ctx.constant(32, 0xc00);
        let hi = ctx.constant(32, 0xc03);
        let below = ctx.ult(csr, lo);
        let ge = ctx.not_bool(below);
        let lt = ctx.ult(csr, hi);
        let in_range = ctx.and(ge, lt);
        let csr_ok = ctx.or(is_mscratch, in_range);
        let c = ctx.and(f3_nonzero, csr_ok);
        let cover = project_one(&ctx, slot, c, ConstraintOrigin::Assumed);
        assert!(cover.exact);
        let mut set = PatternSet::empty();
        for cube in &cover.cubes {
            set.insert(cube);
        }
        // 4 CSR values × 7 funct3 values × 2^17 remaining free bits.
        assert_eq!(set.count(), (4 * 7) << 17);
        assert!(set.covers(0x340_01000));
        assert!(!set.covers(0x340_00000));
        assert!(!set.covers(0x341_01000));
    }

    #[test]
    fn wide_masked_equality_projects_to_one_exact_cube() {
        // `slot & 0xfe00707f == SRAI-pattern` depends on 17 slot bits —
        // beyond ENUM_LIMIT — but is exactly one cube. This used to widen
        // to `(universe, inexact)`.
        let (mut ctx, slot) = setup();
        let mask = ctx.constant(32, 0xfe00_707f);
        let masked = ctx.and(slot, mask);
        let pattern = ctx.constant(32, 0x4000_5013);
        let c = ctx.eq(masked, pattern);
        let cover = project_one(&ctx, slot, c, ConstraintOrigin::Decision(1));
        assert!(cover.exact);
        assert_eq!(cover.cubes, vec![Pattern::new(0xfe00_707f, 0x4000_5013)]);
        assert_eq!(cover.instr_decisions, vec![1]);
    }

    #[test]
    fn full_word_equality_projects_to_a_point() {
        let (mut ctx, slot) = setup();
        let word = ctx.constant(32, 0x0000_0073);
        let c = ctx.eq(slot, word);
        let cover = project_one(&ctx, slot, c, ConstraintOrigin::Assumed);
        assert!(cover.exact);
        assert_eq!(cover.cubes, vec![Pattern::new(0xffff_ffff, 0x0000_0073)]);
    }

    #[test]
    fn contradictory_wide_equality_projects_to_the_empty_set() {
        // `slot & 0xfe00707f == 0x0100_0000` requires bit 24 to be 1, but
        // bit 24 is masked off — no word satisfies it.
        let (mut ctx, slot) = setup();
        let mask = ctx.constant(32, 0xfe00_707f);
        let masked = ctx.and(slot, mask);
        let unreachable = ctx.constant(32, 0x0100_0000);
        let c = ctx.eq(masked, unreachable);
        let cover = project_one(&ctx, slot, c, ConstraintOrigin::Assumed);
        assert!(cover.exact);
        assert!(cover.cubes.is_empty());
    }

    #[test]
    fn negated_wide_equality_is_the_exact_complement() {
        // decompose(Not) relies on the operand's exactness, so the new Eq
        // cube also sharpens negated wide equalities.
        let (mut ctx, slot) = setup();
        let word = ctx.constant(32, 0x0000_1234);
        let eq = ctx.eq(slot, word);
        let c = ctx.not_bool(eq);
        let cover = project_one(&ctx, slot, c, ConstraintOrigin::Assumed);
        assert!(cover.exact);
        let mut set = PatternSet::empty();
        for cube in &cover.cubes {
            set.insert(cube);
        }
        assert_eq!(set.count(), (1u64 << 32) - 1);
        assert!(!set.covers(0x0000_1234));
    }

    #[test]
    fn correlated_bit_equality_still_widens() {
        // `slot[7:0] == slot[15:8]` correlates different slot bits; no
        // single cube expresses it, so widening is still the answer.
        let (mut ctx, slot) = setup();
        let lo = field(&mut ctx, slot, 7, 0);
        let hi = field(&mut ctx, slot, 15, 8);
        let c = ctx.eq(lo, hi);
        let cover = project_one(&ctx, slot, c, ConstraintOrigin::Assumed);
        assert!(!cover.exact);
        assert_eq!(cover.cubes, vec![Pattern::universe()]);
    }

    #[test]
    fn projection_is_deterministic_and_cached() {
        let (mut ctx, slot) = setup();
        let opcode = field(&mut ctx, slot, 6, 0);
        let target = ctx.constant(32, 0x13);
        let c = ctx.eq(opcode, target);
        let mut projector = Projector::new();
        let a = projector.project_path(&ctx, "imem_", &[c], &[ConstraintOrigin::Decision(0)]);
        let b = projector.project_path(&ctx, "imem_", &[c], &[ConstraintOrigin::Decision(0)]);
        assert_eq!(a, b);
    }
}
