//! Proof auditing: independent re-verification of solver answers.
//!
//! When auditing is on (see [`crate::SolverBackend::with_options`]), the
//! backend's SAT solver logs a clausal proof and every answer is replayed
//! through `symcosim-sat`'s independent [`Checker`] — RUP verification
//! for the proof stream, full model evaluation for SAT answers, and
//! assumption-core replay for UNSAT answers. Failures are recorded, not
//! panicked on, so a run can finish and report *every* answer the
//! checker refused to certify; callers (the CLI, CI) turn a non-zero
//! failure count into a hard error.
//!
//! Each certified UNSAT answer also yields a self-contained
//! [`CoreReplayUnit`] — the conflict cone in DIMACS literals — which can
//! be dumped to a `symcosim-audit/1` artifact and re-verified offline by
//! `symcosim-lint --audit` with no solver state at all.

use std::fmt;

use symcosim_sat::{Checker, CoreReplayUnit, Lit, Solver};

/// Counters of the proof auditor, aggregated per worker and across a
/// session exactly like [`crate::QueryCacheStats`]. Excluded from report
/// and certificate JSON so audited and unaudited runs stay
/// byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProofAuditStats {
    /// Proof steps (axioms, derivations, deletions) applied to the
    /// checker.
    pub steps: u64,
    /// SAT answers whose model satisfied every original clause.
    pub models: u64,
    /// UNSAT answers whose assumption core replayed to a conflict.
    pub cores: u64,
    /// Total size of the audited proof stream, in bytes.
    pub bytes: u64,
    /// Answers or proof segments the checker refused to certify.
    pub failures: u64,
}

impl ProofAuditStats {
    /// Component-wise sum, for aggregating per-worker statistics.
    pub fn merge(self, other: ProofAuditStats) -> ProofAuditStats {
        ProofAuditStats {
            steps: self.steps + other.steps,
            models: self.models + other.models,
            cores: self.cores + other.cores,
            bytes: self.bytes + other.bytes,
            failures: self.failures + other.failures,
        }
    }
}

impl fmt::Display for ProofAuditStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steps={} models={} cores={} bytes={} failures={}",
            self.steps, self.models, self.cores, self.bytes, self.failures
        )
    }
}

impl std::str::FromStr for ProofAuditStats {
    type Err = String;

    /// Parses the `Display` form back; the round trip pins the printed
    /// field set to the struct.
    fn from_str(s: &str) -> Result<ProofAuditStats, String> {
        let mut stats = ProofAuditStats::default();
        let mut seen = 0u32;
        for pair in s.split_whitespace() {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("malformed audit stat `{pair}`"))?;
            let value: u64 = value
                .parse()
                .map_err(|_| format!("non-numeric audit stat `{pair}`"))?;
            match key {
                "steps" => stats.steps = value,
                "models" => stats.models = value,
                "cores" => stats.cores = value,
                "bytes" => stats.bytes = value,
                "failures" => stats.failures = value,
                other => return Err(format!("unknown audit stat `{other}`")),
            }
            seen += 1;
        }
        if seen != 5 {
            return Err(format!("expected 5 audit stats, found {seen}"));
        }
        Ok(stats)
    }
}

/// Retain at most this many [`CoreReplayUnit`]s for the offline audit
/// artifact; replays beyond the cap still run and count, only the cone
/// is dropped (and counted in [`ProofAuditor::units_dropped`]).
const UNIT_LIMIT: usize = 4096;

/// Replays solver answers through the independent proof checker.
///
/// One auditor lives inside each audited [`crate::SolverBackend`] and
/// tracks the solver's whole clause stream across incremental solves.
#[derive(Debug, Default)]
pub struct ProofAuditor {
    checker: Checker,
    stats: ProofAuditStats,
    units: Vec<CoreReplayUnit>,
    units_dropped: u64,
    first_failure: Option<String>,
}

impl ProofAuditor {
    /// Creates an auditor with an empty checker.
    pub fn new() -> ProofAuditor {
        ProofAuditor::default()
    }

    /// Counters so far.
    pub fn stats(&self) -> ProofAuditStats {
        self.stats
    }

    /// The first failure message, when any answer failed to certify.
    pub fn first_failure(&self) -> Option<&str> {
        self.first_failure.as_deref()
    }

    /// Conflict cones certified so far (bounded; see
    /// [`units_dropped`](Self::units_dropped)).
    pub fn units(&self) -> &[CoreReplayUnit] {
        &self.units
    }

    /// Drains the retained conflict cones, e.g. to merge them into a
    /// session-level audit artifact.
    pub fn take_units(&mut self) -> Vec<CoreReplayUnit> {
        std::mem::take(&mut self.units)
    }

    /// Cones dropped because the retention cap was reached. They were
    /// still replayed and counted in [`ProofAuditStats::cores`].
    pub fn units_dropped(&self) -> u64 {
        self.units_dropped
    }

    /// Audits a SAT answer: drains and RUP-checks the solver's pending
    /// proof segment, then evaluates the model against every original
    /// clause. Must be called right after the solve, while the model is
    /// readable.
    pub fn audit_sat(&mut self, solver: &mut Solver) {
        self.sync(solver);
        match self.checker.check_model(|v| solver.model_value(v)) {
            Ok(_) => self.stats.models += 1,
            Err(e) => self.fail(format!("SAT answer rejected: {e}")),
        }
    }

    /// Audits an UNSAT answer: drains and RUP-checks the pending proof
    /// segment, then replays `solver.unsat_core()` through the checker.
    /// Must be called right after the solve, while the core is readable.
    pub fn audit_unsat(&mut self, solver: &mut Solver) {
        self.sync(solver);
        let core: Vec<Lit> = solver.unsat_core().to_vec();
        match self.checker.replay_core(&core) {
            Ok(unit) => {
                self.stats.cores += 1;
                if self.units.len() < UNIT_LIMIT {
                    self.units.push(unit);
                } else {
                    self.units_dropped += 1;
                }
            }
            Err(e) => self.fail(format!("UNSAT core rejected: {e}")),
        }
    }

    /// Drains the solver's pending proof segment into the checker.
    fn sync(&mut self, solver: &mut Solver) {
        let proof = solver.take_proof();
        if proof.is_empty() {
            return;
        }
        self.stats.steps += proof.len() as u64;
        self.stats.bytes += proof.bytes();
        if let Err(e) = self.checker.apply(&proof) {
            self.fail(format!("proof segment rejected: {e}"));
        }
    }

    fn fail(&mut self, message: String) {
        self.stats.failures += 1;
        if self.first_failure.is_none() {
            self.first_failure = Some(message);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symcosim_sat::{SolveResult, Var};

    #[test]
    fn proof_audit_stats_display_round_trips() {
        let stats = ProofAuditStats {
            steps: 10,
            models: 3,
            cores: 2,
            bytes: 456,
            failures: 0,
        };
        let printed = stats.to_string();
        assert_eq!(printed, "steps=10 models=3 cores=2 bytes=456 failures=0");
        let parsed: ProofAuditStats = printed.parse().expect("display form parses");
        assert_eq!(parsed, stats, "Display must carry every field");
        assert!("steps=1".parse::<ProofAuditStats>().is_err());
        assert!("steps=1 models=2 cores=3 bytes=4 failures=x"
            .parse::<ProofAuditStats>()
            .is_err());
        assert!("steps=1 models=2 cores=3 bytes=4 bogus=5"
            .parse::<ProofAuditStats>()
            .is_err());
    }

    #[test]
    fn stats_merge_is_component_wise() {
        let a = ProofAuditStats {
            steps: 1,
            models: 2,
            cores: 3,
            bytes: 4,
            failures: 5,
        };
        let b = ProofAuditStats {
            steps: 10,
            models: 20,
            cores: 30,
            bytes: 40,
            failures: 50,
        };
        assert_eq!(
            a.merge(b),
            ProofAuditStats {
                steps: 11,
                models: 22,
                cores: 33,
                bytes: 44,
                failures: 55,
            }
        );
    }

    #[test]
    fn auditor_certifies_sat_and_unsat_answers() {
        let mut solver = Solver::new();
        solver.enable_proof();
        let vars: Vec<Var> = (0..3).map(|_| solver.new_var()).collect();
        let (a, b, c) = (
            Lit::positive(vars[0]),
            Lit::positive(vars[1]),
            Lit::positive(vars[2]),
        );
        solver.add_clause([!a, b]);
        solver.add_clause([!b, c]);

        let mut auditor = ProofAuditor::new();
        assert_eq!(solver.solve(&[a]), SolveResult::Sat);
        auditor.audit_sat(&mut solver);
        assert_eq!(solver.solve(&[a, !c]), SolveResult::Unsat);
        auditor.audit_unsat(&mut solver);

        let stats = auditor.stats();
        assert_eq!(stats.failures, 0, "{:?}", auditor.first_failure());
        assert_eq!(stats.models, 1);
        assert_eq!(stats.cores, 1);
        assert!(stats.steps > 0);
        assert!(stats.bytes > 0);
        assert_eq!(auditor.units().len(), 1);
        auditor.units()[0].verify().expect("cone verifies offline");
        assert_eq!(auditor.take_units().len(), 1);
        assert!(auditor.units().is_empty());
        assert_eq!(auditor.units_dropped(), 0);
    }

    #[test]
    fn a_bogus_core_is_a_recorded_failure_not_a_panic() {
        let mut solver = Solver::new();
        solver.enable_proof();
        let v = solver.new_var();
        solver.add_clause([Lit::positive(v)]);
        assert_eq!(solver.solve(&[]), SolveResult::Sat);

        let mut auditor = ProofAuditor::new();
        auditor.sync(&mut solver);
        // Hand the checker a core the solver never certified: `v` is
        // forced true, so the "core" [v] cannot conflict.
        match auditor.checker.replay_core(&[Lit::positive(v)]) {
            Ok(_) => panic!("a satisfiable core must not replay"),
            Err(e) => auditor.fail(format!("UNSAT core rejected: {e}")),
        }
        assert_eq!(auditor.stats().failures, 1);
        assert!(auditor
            .first_failure()
            .expect("failure recorded")
            .contains("rejected"));
    }
}
