//! The execution-domain abstraction.
//!
//! The reference ISS and the RTL core model are written once, generically
//! over [`Domain`]. Instantiated with [`ConcreteDomain`] they run at native
//! speed on `u32` values (used by the fuzzing baseline and the unit tests);
//! instantiated with [`SymExec`](crate::SymExec) the same code executes
//! symbolically, with every data-dependent branch routed through
//! [`Domain::decide`], which forks the exploration — the role KLEE plays
//! for the compiled C++ co-simulation in the paper.

/// Operations a 32-bit machine model needs from its value domain.
///
/// `Word` is a 32-bit machine word; `Bool` a single-bit truth value. All
/// operations take `&mut self` because symbolic implementations allocate
/// terms. Branching on a `Bool` must go through [`Domain::decide`]; the
/// concrete implementation just unwraps the value while the symbolic one
/// forks the path.
pub trait Domain {
    /// 32-bit machine word.
    type Word: Copy + std::fmt::Debug;
    /// Single-bit truth value.
    type Bool: Copy + std::fmt::Debug;

    /// Embeds a concrete constant.
    fn const_word(&mut self, value: u32) -> Self::Word;
    /// Embeds a concrete truth value.
    fn const_bool(&mut self, value: bool) -> Self::Bool;
    /// Introduces a fresh symbolic input (concrete domains return zero).
    ///
    /// Names identify inputs across re-executions of the same path; use a
    /// canonical, deterministic naming scheme (e.g. `imem_0x00000000`).
    fn fresh_word(&mut self, name: &str) -> Self::Word;

    /// The concrete value of a word, if it is statically known.
    fn word_value(&self, word: Self::Word) -> Option<u32>;
    /// The concrete value of a bool, if it is statically known.
    fn bool_value(&self, b: Self::Bool) -> Option<bool>;

    /// Wrapping addition.
    fn add(&mut self, a: Self::Word, b: Self::Word) -> Self::Word;
    /// Wrapping subtraction.
    fn sub(&mut self, a: Self::Word, b: Self::Word) -> Self::Word;
    /// Wrapping multiplication (low 32 bits).
    fn mul(&mut self, a: Self::Word, b: Self::Word) -> Self::Word;
    /// Bitwise AND.
    fn and(&mut self, a: Self::Word, b: Self::Word) -> Self::Word;
    /// Bitwise OR.
    fn or(&mut self, a: Self::Word, b: Self::Word) -> Self::Word;
    /// Bitwise XOR.
    fn xor(&mut self, a: Self::Word, b: Self::Word) -> Self::Word;
    /// Bitwise NOT.
    fn not_w(&mut self, a: Self::Word) -> Self::Word;
    /// Logical shift left (amounts ≥ 32 yield zero).
    fn shl(&mut self, a: Self::Word, amount: Self::Word) -> Self::Word;
    /// Logical shift right (amounts ≥ 32 yield zero).
    fn lshr(&mut self, a: Self::Word, amount: Self::Word) -> Self::Word;
    /// Arithmetic shift right (amounts ≥ 32 replicate the sign).
    fn ashr(&mut self, a: Self::Word, amount: Self::Word) -> Self::Word;

    /// Word equality.
    fn eq_w(&mut self, a: Self::Word, b: Self::Word) -> Self::Bool;
    /// Unsigned less-than.
    fn ult(&mut self, a: Self::Word, b: Self::Word) -> Self::Bool;
    /// Signed less-than.
    fn slt(&mut self, a: Self::Word, b: Self::Word) -> Self::Bool;

    /// Word multiplexer.
    fn ite(&mut self, cond: Self::Bool, then_w: Self::Word, else_w: Self::Word) -> Self::Word;
    /// Boolean negation.
    fn not_b(&mut self, a: Self::Bool) -> Self::Bool;
    /// Boolean conjunction.
    fn and_b(&mut self, a: Self::Bool, b: Self::Bool) -> Self::Bool;
    /// Boolean disjunction.
    fn or_b(&mut self, a: Self::Bool, b: Self::Bool) -> Self::Bool;
    /// Zero-extends a bool to a word (0 or 1).
    fn bool_to_word(&mut self, b: Self::Bool) -> Self::Word;

    /// Resolves a `Bool` to a concrete branch direction.
    ///
    /// Symbolic domains fork the exploration here when both directions are
    /// feasible; concrete domains simply return the value.
    fn decide(&mut self, cond: Self::Bool) -> bool;

    /// Constrains the current path with `cond`.
    ///
    /// If the constraint is infeasible the path dies: [`Domain::is_dead`]
    /// becomes `true` and the caller should unwind promptly.
    fn assume(&mut self, cond: Self::Bool);

    /// Whether this path has been killed (infeasible assume or resource
    /// limit). Long-running callers should poll this and bail out early.
    fn is_dead(&self) -> bool;

    // ------------------------------------------------------------------
    // Conveniences derived from the primitives.
    // ------------------------------------------------------------------

    /// Word inequality.
    fn ne_w(&mut self, a: Self::Word, b: Self::Word) -> Self::Bool {
        let eq = self.eq_w(a, b);
        self.not_b(eq)
    }

    /// `a & mask` with a constant mask.
    fn and_const(&mut self, a: Self::Word, mask: u32) -> Self::Word {
        let m = self.const_word(mask);
        self.and(a, m)
    }

    /// Logical shift right by a constant amount.
    fn lshr_const(&mut self, a: Self::Word, amount: u32) -> Self::Word {
        let s = self.const_word(amount);
        self.lshr(a, s)
    }

    /// Logical shift left by a constant amount.
    fn shl_const(&mut self, a: Self::Word, amount: u32) -> Self::Word {
        let s = self.const_word(amount);
        self.shl(a, s)
    }

    /// Extracts the bit field `[hi:lo]` as a zero-based value.
    fn field(&mut self, a: Self::Word, hi: u32, lo: u32) -> Self::Word {
        debug_assert!(lo <= hi && hi < 32);
        let shifted = self.lshr_const(a, lo);
        self.and_const(shifted, (1u64 << (hi - lo + 1)).wrapping_sub(1) as u32)
    }

    /// Compares a word against a constant.
    fn eq_const(&mut self, a: Self::Word, value: u32) -> Self::Bool {
        let v = self.const_word(value);
        self.eq_w(a, v)
    }

    /// Sign-extends the low `bits` bits of `a` to a full word.
    fn sext(&mut self, a: Self::Word, bits: u32) -> Self::Word {
        debug_assert!((1..=32).contains(&bits));
        if bits == 32 {
            return a;
        }
        let left = self.shl_const(a, 32 - bits);
        self.ashr_const(left, 32 - bits)
    }

    /// Zero-extends the low `bits` bits of `a` to a full word.
    fn zext_w(&mut self, a: Self::Word, bits: u32) -> Self::Word {
        debug_assert!((1..=32).contains(&bits));
        if bits == 32 {
            return a;
        }
        self.and_const(a, (1u64 << bits).wrapping_sub(1) as u32)
    }

    /// Arithmetic shift right by a constant amount.
    fn ashr_const(&mut self, a: Self::Word, amount: u32) -> Self::Word {
        let s = self.const_word(amount);
        self.ashr(a, s)
    }

    /// Unsigned `a >= b`.
    fn uge(&mut self, a: Self::Word, b: Self::Word) -> Self::Bool {
        let lt = self.ult(a, b);
        self.not_b(lt)
    }

    /// Signed `a >= b`.
    fn sge(&mut self, a: Self::Word, b: Self::Word) -> Self::Bool {
        let lt = self.slt(a, b);
        self.not_b(lt)
    }
}

/// The native `u32` domain: runs models concretely at full speed.
///
/// [`Domain::assume`] with a false condition marks the run dead, which the
/// fuzzing baseline uses to discard inputs that violate harness
/// assumptions.
///
/// # Example
///
/// ```
/// use symcosim_symex::{ConcreteDomain, Domain};
///
/// let mut dom = ConcreteDomain::new();
/// let a = dom.const_word(40);
/// let b = dom.const_word(2);
/// assert_eq!(dom.add(a, b), 42);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConcreteDomain {
    dead: bool,
}

impl ConcreteDomain {
    /// Creates a live concrete domain.
    pub fn new() -> ConcreteDomain {
        ConcreteDomain::default()
    }
}

impl Domain for ConcreteDomain {
    type Word = u32;
    type Bool = bool;

    fn const_word(&mut self, value: u32) -> u32 {
        value
    }

    fn const_bool(&mut self, value: bool) -> bool {
        value
    }

    fn fresh_word(&mut self, _name: &str) -> u32 {
        0
    }

    fn word_value(&self, word: u32) -> Option<u32> {
        Some(word)
    }

    fn bool_value(&self, b: bool) -> Option<bool> {
        Some(b)
    }

    fn add(&mut self, a: u32, b: u32) -> u32 {
        a.wrapping_add(b)
    }

    fn sub(&mut self, a: u32, b: u32) -> u32 {
        a.wrapping_sub(b)
    }

    fn mul(&mut self, a: u32, b: u32) -> u32 {
        a.wrapping_mul(b)
    }

    fn and(&mut self, a: u32, b: u32) -> u32 {
        a & b
    }

    fn or(&mut self, a: u32, b: u32) -> u32 {
        a | b
    }

    fn xor(&mut self, a: u32, b: u32) -> u32 {
        a ^ b
    }

    fn not_w(&mut self, a: u32) -> u32 {
        !a
    }

    fn shl(&mut self, a: u32, amount: u32) -> u32 {
        if amount >= 32 {
            0
        } else {
            a << amount
        }
    }

    fn lshr(&mut self, a: u32, amount: u32) -> u32 {
        if amount >= 32 {
            0
        } else {
            a >> amount
        }
    }

    fn ashr(&mut self, a: u32, amount: u32) -> u32 {
        ((a as i32) >> amount.min(31)) as u32
    }

    fn eq_w(&mut self, a: u32, b: u32) -> bool {
        a == b
    }

    fn ult(&mut self, a: u32, b: u32) -> bool {
        a < b
    }

    fn slt(&mut self, a: u32, b: u32) -> bool {
        (a as i32) < (b as i32)
    }

    fn ite(&mut self, cond: bool, then_w: u32, else_w: u32) -> u32 {
        if cond {
            then_w
        } else {
            else_w
        }
    }

    fn not_b(&mut self, a: bool) -> bool {
        !a
    }

    fn and_b(&mut self, a: bool, b: bool) -> bool {
        a && b
    }

    fn or_b(&mut self, a: bool, b: bool) -> bool {
        a || b
    }

    fn bool_to_word(&mut self, b: bool) -> u32 {
        b as u32
    }

    fn decide(&mut self, cond: bool) -> bool {
        cond
    }

    fn assume(&mut self, cond: bool) {
        if !cond {
            self.dead = true;
        }
    }

    fn is_dead(&self) -> bool {
        self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_ops_match_native_semantics() {
        let mut dom = ConcreteDomain::new();
        assert_eq!(dom.add(u32::MAX, 1), 0);
        assert_eq!(dom.sub(0, 1), u32::MAX);
        assert_eq!(dom.shl(1, 31), 0x8000_0000);
        assert_eq!(dom.shl(1, 32), 0);
        assert_eq!(dom.lshr(0x8000_0000, 31), 1);
        assert_eq!(dom.ashr(0x8000_0000, 31), u32::MAX);
        assert_eq!(dom.ashr(0x8000_0000, 40), u32::MAX);
        assert!(dom.slt(u32::MAX, 0));
        assert!(!dom.ult(u32::MAX, 0));
    }

    #[test]
    fn derived_helpers() {
        let mut dom = ConcreteDomain::new();
        assert_eq!(dom.field(0xdead_beef, 15, 8), 0xbe);
        assert_eq!(dom.sext(0x80, 8), 0xffff_ff80);
        assert_eq!(dom.zext_w(0xffff_ff80, 8), 0x80);
        assert!(dom.eq_const(42, 42));
        assert!(dom.uge(5, 5));
        assert!(dom.sge(0, u32::MAX)); // 0 >= -1 signed
    }

    #[test]
    fn failed_assume_kills_the_run() {
        let mut dom = ConcreteDomain::new();
        assert!(!dom.is_dead());
        dom.assume(true);
        assert!(!dom.is_dead());
        dom.assume(false);
        assert!(dom.is_dead());
    }
}
