//! Path-level queries shared by the symbolic executors.
//!
//! Verification harnesses (the voter, the mismatch reporter) need more than
//! the [`Domain`] arithmetic surface: they ask whether a condition is
//! possible on the current path, commit constraints once a disagreement is
//! witnessed, and extract stable models. [`PathProbe`] captures exactly
//! that surface so the same harness code runs under the re-execution
//! engine ([`SymExec`](crate::SymExec)) and the snapshotting fork engine
//! ([`ForkExec`](crate::ForkExec)).

use crate::project::SlotCoverage;
use crate::term::TermId;
use crate::wf::WfIssue;
use crate::{Domain, SymExec, TestVector};

/// A symbolic [`Domain`] that can additionally answer path-level queries.
///
/// Implementations must keep the *stable* extraction contract: witnesses
/// and vectors are computed on a fresh solver from the path condition
/// alone, so they are identical however the path was scheduled.
pub trait PathProbe: Domain<Word = TermId, Bool = TermId> {
    /// The constraints accumulated on this path so far.
    fn constraints(&self) -> &[TermId];

    /// Whether `cond` is satisfiable together with the path condition —
    /// *without* committing to it.
    fn check_sat(&mut self, cond: TermId) -> bool;

    /// Permanently adds `cond` to the path condition.
    fn add_constraint(&mut self, cond: TermId);

    /// A history-independent concrete witness for `term` under the path
    /// condition plus `extra` (fresh solver; see
    /// [`SymExec::stable_concrete_witness`]).
    fn stable_concrete_witness(&mut self, term: TermId, extra: &[TermId]) -> Option<u64>;

    /// A history-independent test vector for the path condition plus
    /// `extra`, covering the symbols created on this path.
    fn stable_witness_vector(&mut self, extra: &[TermId]) -> Option<TestVector>;

    /// Runs the full well-formedness pass over this path.
    fn lint_path(&self) -> Vec<WfIssue>;

    /// [`PathProbe::lint_path`] with the path's output frontier — the
    /// terms the harness observes — so never-bounded symbols that also
    /// reach no output are reported as dead rather than merely
    /// unconstrained (see
    /// [`validate_path_with_outputs`](crate::wf::validate_path_with_outputs)).
    fn lint_path_with_outputs(&self, outputs: &[TermId]) -> Vec<WfIssue>;

    /// Projects this path's condition onto every symbolic fetch slot whose
    /// name starts with `slot_prefix` — the coverage certifier's input.
    /// Constraints committed via [`PathProbe::add_constraint`] are excluded
    /// (they narrow the path *after* its behaviour class is fixed).
    fn project_coverage(&mut self, slot_prefix: &str) -> Vec<SlotCoverage>;
}

impl PathProbe for SymExec<'_> {
    fn constraints(&self) -> &[TermId] {
        // Inherent methods win over trait methods in resolution, so these
        // delegations do not recurse.
        SymExec::constraints(self)
    }

    fn check_sat(&mut self, cond: TermId) -> bool {
        SymExec::check_sat(self, cond)
    }

    fn add_constraint(&mut self, cond: TermId) {
        SymExec::add_constraint(self, cond)
    }

    fn stable_concrete_witness(&mut self, term: TermId, extra: &[TermId]) -> Option<u64> {
        SymExec::stable_concrete_witness(self, term, extra)
    }

    fn stable_witness_vector(&mut self, extra: &[TermId]) -> Option<TestVector> {
        SymExec::stable_witness_vector(self, extra)
    }

    fn lint_path(&self) -> Vec<WfIssue> {
        SymExec::lint_path(self)
    }

    fn lint_path_with_outputs(&self, outputs: &[TermId]) -> Vec<WfIssue> {
        SymExec::lint_path_with_outputs(self, outputs)
    }

    fn project_coverage(&mut self, slot_prefix: &str) -> Vec<SlotCoverage> {
        SymExec::project_coverage(self, slot_prefix)
    }
}
