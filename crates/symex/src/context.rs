//! The hash-consing term context and its simplifying constructors.

use std::collections::HashMap;

use crate::term::{Node, TermId, Width};

/// Masks `value` to `width` bits.
#[inline]
pub(crate) fn mask(width: Width, value: u64) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Sign-extends a `width`-bit value to i64.
#[inline]
pub(crate) fn to_signed(width: Width, value: u64) -> i64 {
    let shift = 64 - width;
    ((value << shift) as i64) >> shift
}

/// A hash-consed bit-vector term graph.
///
/// All terms are created through the simplifying constructors on this type;
/// structurally identical terms share one [`TermId`]. Constant folding and
/// a set of algebraic rewrites run eagerly, so purely concrete computations
/// never grow the graph beyond their constant results — this is what makes
/// the symbolic interpreters cheap on concrete inputs.
///
/// # Example
///
/// ```
/// use symcosim_symex::Context;
///
/// let mut ctx = Context::new();
/// let a = ctx.constant(32, 40);
/// let b = ctx.constant(32, 2);
/// let sum = ctx.add(a, b);
/// assert_eq!(ctx.const_value(sum), Some(42));
/// ```
#[derive(Debug, Default)]
pub struct Context {
    nodes: Vec<Node>,
    widths: Vec<Width>,
    interned: HashMap<Node, TermId>,
    symbol_names: Vec<String>,
    symbol_lookup: HashMap<String, u32>,
    symbols: Vec<TermId>,
}

impl Context {
    /// Creates an empty context.
    pub fn new() -> Context {
        Context::default()
    }

    /// Number of interned nodes (a proxy for memory use).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if `term` belongs to another context.
    #[inline]
    pub fn node(&self, term: TermId) -> Node {
        self.nodes[term.index()]
    }

    /// The width of a term in bits.
    #[inline]
    pub fn width(&self, term: TermId) -> Width {
        self.widths[term.index()]
    }

    /// The value of a constant term, `None` for non-constants.
    #[inline]
    pub fn const_value(&self, term: TermId) -> Option<u64> {
        match self.node(term) {
            Node::Const { value, .. } => Some(value),
            _ => None,
        }
    }

    /// The name of a symbol term, `None` for non-symbols.
    pub fn symbol_name(&self, term: TermId) -> Option<&str> {
        match self.node(term) {
            Node::Symbol { name, .. } => Some(&self.symbol_names[name as usize]),
            _ => None,
        }
    }

    /// All symbols created so far, in creation order.
    pub fn symbols(&self) -> &[TermId] {
        &self.symbols
    }

    fn intern(&mut self, node: Node, width: Width) -> TermId {
        if let Some(&id) = self.interned.get(&node) {
            return id;
        }
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.widths.push(width);
        self.interned.insert(node, id);
        id
    }

    /// Creates a constant of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn constant(&mut self, width: Width, value: u64) -> TermId {
        assert!((1..=64).contains(&width), "unsupported width {width}");
        let value = mask(width, value);
        self.intern(Node::Const { width, value }, width)
    }

    /// The width-1 constant representing `true`.
    pub fn bool_const(&mut self, value: bool) -> TermId {
        self.constant(1, value as u64)
    }

    /// Creates (or retrieves) the symbolic input with the given name.
    ///
    /// Names identify inputs: asking twice for the same name returns the
    /// same term.
    ///
    /// # Panics
    ///
    /// Panics if the name already exists with a different width, or if
    /// `width` is 0 or greater than 64.
    pub fn symbol(&mut self, width: Width, name: &str) -> TermId {
        assert!((1..=64).contains(&width), "unsupported width {width}");
        if let Some(&idx) = self.symbol_lookup.get(name) {
            let node = Node::Symbol { width, name: idx };
            let existing = *self
                .interned
                .get(&node)
                .unwrap_or_else(|| panic!("symbol {name:?} already exists with a different width"));
            return existing;
        }
        let idx = self.symbol_names.len() as u32;
        self.symbol_names.push(name.to_string());
        self.symbol_lookup.insert(name.to_string(), idx);
        let id = self.intern(Node::Symbol { width, name: idx }, width);
        self.symbols.push(id);
        id
    }

    fn binary_widths(&self, a: TermId, b: TermId) -> Width {
        let (wa, wb) = (self.width(a), self.width(b));
        assert_eq!(wa, wb, "operand width mismatch: {wa} vs {wb}");
        wa
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: TermId) -> TermId {
        let width = self.width(a);
        match self.node(a) {
            Node::Const { value, .. } => self.constant(width, !value),
            Node::Not(inner) => inner,
            _ => self.intern(Node::Not(a), width),
        }
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        let width = self.binary_widths(a, b);
        let ones = mask(width, u64::MAX);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(width, x & y),
            (Some(0), _) | (_, Some(0)) => self.constant(width, 0),
            (Some(x), _) if x == ones => b,
            (_, Some(y)) if y == ones => a,
            _ if a == b => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node::And(a, b), width)
            }
        }
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        let width = self.binary_widths(a, b);
        let ones = mask(width, u64::MAX);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(width, x | y),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            (Some(x), _) if x == ones => self.constant(width, ones),
            (_, Some(y)) if y == ones => self.constant(width, ones),
            _ if a == b => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node::Or(a, b), width)
            }
        }
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        let width = self.binary_widths(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(width, x ^ y),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ if a == b => self.constant(width, 0),
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node::Xor(a, b), width)
            }
        }
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        let width = self.binary_widths(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(width, x.wrapping_add(y)),
            (Some(0), _) => b,
            (_, Some(0)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node::Add(a, b), width)
            }
        }
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let width = self.binary_widths(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(width, x.wrapping_sub(y)),
            (_, Some(0)) => a,
            _ if a == b => self.constant(width, 0),
            _ => self.intern(Node::Sub(a, b), width),
        }
    }

    /// Wrapping multiplication (low half).
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        let width = self.binary_widths(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.constant(width, x.wrapping_mul(y)),
            (Some(0), _) | (_, Some(0)) => self.constant(width, 0),
            (Some(1), _) => b,
            (_, Some(1)) => a,
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node::Mul(a, b), width)
            }
        }
    }

    /// Logical shift left. Shift amounts ≥ width produce zero.
    pub fn shl(&mut self, a: TermId, amount: TermId) -> TermId {
        let width = self.binary_widths(a, amount);
        match (self.const_value(a), self.const_value(amount)) {
            (Some(x), Some(s)) => {
                let v = if s >= width as u64 { 0 } else { x << s };
                self.constant(width, v)
            }
            (_, Some(0)) => a,
            (_, Some(s)) if s >= width as u64 => self.constant(width, 0),
            (Some(0), _) => a,
            _ => self.intern(Node::Shl(a, amount), width),
        }
    }

    /// Logical shift right. Shift amounts ≥ width produce zero.
    pub fn lshr(&mut self, a: TermId, amount: TermId) -> TermId {
        let width = self.binary_widths(a, amount);
        match (self.const_value(a), self.const_value(amount)) {
            (Some(x), Some(s)) => {
                let v = if s >= width as u64 { 0 } else { x >> s };
                self.constant(width, v)
            }
            (_, Some(0)) => a,
            (_, Some(s)) if s >= width as u64 => self.constant(width, 0),
            (Some(0), _) => a,
            _ => self.intern(Node::Lshr(a, amount), width),
        }
    }

    /// Arithmetic shift right. Shift amounts ≥ width replicate the sign.
    pub fn ashr(&mut self, a: TermId, amount: TermId) -> TermId {
        let width = self.binary_widths(a, amount);
        match (self.const_value(a), self.const_value(amount)) {
            (Some(x), Some(s)) => {
                let signed = to_signed(width, x);
                let shift = s.min(width as u64 - 1) as u32;
                self.constant(width, (signed >> shift) as u64)
            }
            (_, Some(0)) => a,
            (Some(0), _) => a,
            _ => self.intern(Node::Ashr(a, amount), width),
        }
    }

    /// Equality test (width-1 result).
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary_widths(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.bool_const(x == y),
            _ if a == b => self.bool_const(true),
            _ => {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                self.intern(Node::Eq(a, b), 1)
            }
        }
    }

    /// Unsigned less-than (width-1 result).
    pub fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.binary_widths(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.bool_const(x < y),
            (_, Some(0)) => self.bool_const(false),
            _ if a == b => self.bool_const(false),
            _ => self.intern(Node::Ult(a, b), 1),
        }
    }

    /// Signed less-than (width-1 result).
    pub fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        let width = self.binary_widths(a, b);
        match (self.const_value(a), self.const_value(b)) {
            (Some(x), Some(y)) => self.bool_const(to_signed(width, x) < to_signed(width, y)),
            _ if a == b => self.bool_const(false),
            _ => self.intern(Node::Slt(a, b), 1),
        }
    }

    /// If-then-else over equal-width branches; `cond` must have width 1.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not width 1 or the branches differ in width.
    pub fn ite(&mut self, cond: TermId, then_branch: TermId, else_branch: TermId) -> TermId {
        assert_eq!(self.width(cond), 1, "ite condition must have width 1");
        let width = self.binary_widths(then_branch, else_branch);
        match self.const_value(cond) {
            Some(1) => then_branch,
            Some(_) => else_branch,
            None if then_branch == else_branch => then_branch,
            None => self.intern(Node::Ite(cond, then_branch, else_branch), width),
        }
    }

    /// Extracts bits `[hi:lo]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics unless `lo <= hi < width(term)`.
    pub fn extract(&mut self, term: TermId, hi: u32, lo: u32) -> TermId {
        let source_width = self.width(term);
        assert!(
            lo <= hi && hi < source_width,
            "extract [{hi}:{lo}] out of range"
        );
        let width = hi - lo + 1;
        if lo == 0 && width == source_width {
            return term;
        }
        match self.node(term) {
            Node::Const { value, .. } => self.constant(width, value >> lo),
            _ => self.intern(Node::Extract { term, hi, lo }, width),
        }
    }

    /// Concatenates two terms (`hi` becomes the most significant part).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64 bits.
    pub fn concat(&mut self, hi: TermId, lo: TermId) -> TermId {
        let width = self.width(hi) + self.width(lo);
        assert!(width <= 64, "concat width {width} exceeds 64");
        let lo_width = self.width(lo);
        match (self.const_value(hi), self.const_value(lo)) {
            (Some(h), Some(l)) => self.constant(width, (h << lo_width) | l),
            _ => self.intern(Node::Concat { hi, lo }, width),
        }
    }

    /// Zero-extends to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the term's width or exceeds 64.
    pub fn zero_ext(&mut self, term: TermId, width: Width) -> TermId {
        let source_width = self.width(term);
        assert!(
            width >= source_width && width <= 64,
            "bad zero_ext target {width}"
        );
        if width == source_width {
            return term;
        }
        match self.node(term) {
            Node::Const { value, .. } => self.constant(width, value),
            _ => self.intern(Node::ZeroExt { term, width }, width),
        }
    }

    /// Sign-extends to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the term's width or exceeds 64.
    pub fn sign_ext(&mut self, term: TermId, width: Width) -> TermId {
        let source_width = self.width(term);
        assert!(
            width >= source_width && width <= 64,
            "bad sign_ext target {width}"
        );
        if width == source_width {
            return term;
        }
        match self.node(term) {
            Node::Const { value, .. } => {
                let extended = to_signed(source_width, value) as u64;
                self.constant(width, extended)
            }
            _ => self.intern(Node::SignExt { term, width }, width),
        }
    }

    /// Boolean negation (width-1 terms).
    pub fn not_bool(&mut self, a: TermId) -> TermId {
        assert_eq!(self.width(a), 1, "not_bool needs a width-1 term");
        self.not(a)
    }

    /// Not-equal, as `not(eq(a, b))`.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let eq = self.eq(a, b);
        self.not(eq)
    }

    /// Unsigned less-or-equal.
    pub fn ule(&mut self, a: TermId, b: TermId) -> TermId {
        let gt = self.ult(b, a);
        self.not(gt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let a = ctx.add(x, y);
        let b = ctx.add(x, y);
        assert_eq!(a, b);
        // Commutative ops canonicalise operand order.
        let c = ctx.add(y, x);
        assert_eq!(a, c);
    }

    #[test]
    fn constant_folding_through_all_ops() {
        let mut ctx = Context::new();
        let a = ctx.constant(32, 0xffff_0000);
        let b = ctx.constant(32, 0x0000_ffff);
        let and = ctx.and(a, b);
        assert_eq!(ctx.const_value(and), Some(0));
        let or = ctx.or(a, b);
        assert_eq!(ctx.const_value(or), Some(0xffff_ffff));
        let add = ctx.add(a, b);
        assert_eq!(ctx.const_value(add), Some(0xffff_ffff));
        let sub = ctx.sub(b, b);
        assert_eq!(ctx.const_value(sub), Some(0));
        let shl = {
            let amount = ctx.constant(32, 4);
            ctx.shl(b, amount)
        };
        assert_eq!(ctx.const_value(shl), Some(0x000f_fff0));
    }

    #[test]
    fn arithmetic_wraps_at_width() {
        let mut ctx = Context::new();
        let max = ctx.constant(8, 0xff);
        let one = ctx.constant(8, 1);
        let sum = ctx.add(max, one);
        assert_eq!(ctx.const_value(sum), Some(0));
        let product = ctx.mul(max, max);
        assert_eq!(ctx.const_value(product), Some(0x01)); // 255·255 = 0xFE01
    }

    #[test]
    fn ashr_replicates_sign_for_wide_shifts() {
        let mut ctx = Context::new();
        let neg = ctx.constant(8, 0x80);
        let wide = ctx.constant(8, 200);
        let shifted = ctx.ashr(neg, wide);
        assert_eq!(ctx.const_value(shifted), Some(0xff));
        let pos = ctx.constant(8, 0x40);
        let shifted = ctx.ashr(pos, wide);
        assert_eq!(ctx.const_value(shifted), Some(0));
    }

    #[test]
    fn identities_do_not_allocate() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let zero = ctx.constant(32, 0);
        let ones = ctx.constant(32, u32::MAX as u64);
        assert_eq!(ctx.add(x, zero), x);
        assert_eq!(ctx.and(x, ones), x);
        assert_eq!(ctx.and(x, zero), zero);
        assert_eq!(ctx.or(x, zero), x);
        assert_eq!(ctx.xor(x, zero), x);
        let xor_self = ctx.xor(x, x);
        assert_eq!(ctx.const_value(xor_self), Some(0));
        let eq_self = ctx.eq(x, x);
        assert_eq!(ctx.const_value(eq_self), Some(1));
        let double_not = {
            let n = ctx.not(x);
            ctx.not(n)
        };
        assert_eq!(double_not, x);
    }

    #[test]
    fn ite_simplifies() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let t = ctx.bool_const(true);
        let f = ctx.bool_const(false);
        assert_eq!(ctx.ite(t, x, y), x);
        assert_eq!(ctx.ite(f, x, y), y);
        let c = ctx.symbol(1, "c");
        assert_eq!(ctx.ite(c, x, x), x);
    }

    #[test]
    fn extract_and_extend_fold_constants() {
        let mut ctx = Context::new();
        let value = ctx.constant(32, 0xdead_beef);
        let byte = ctx.extract(value, 15, 8);
        assert_eq!(ctx.const_value(byte), Some(0xbe));
        assert_eq!(ctx.width(byte), 8);
        let sext = ctx.sign_ext(byte, 32);
        assert_eq!(ctx.const_value(sext), Some(0xffff_ffbe));
        let zext = ctx.zero_ext(byte, 32);
        assert_eq!(ctx.const_value(zext), Some(0xbe));
        let back = ctx.extract(value, 31, 0);
        assert_eq!(back, value);
    }

    #[test]
    fn concat_folds_constants() {
        let mut ctx = Context::new();
        let hi = ctx.constant(16, 0xdead);
        let lo = ctx.constant(16, 0xbeef);
        let joined = ctx.concat(hi, lo);
        assert_eq!(ctx.const_value(joined), Some(0xdead_beef));
        assert_eq!(ctx.width(joined), 32);
    }

    #[test]
    fn symbols_are_stable_by_name() {
        let mut ctx = Context::new();
        let a = ctx.symbol(32, "input");
        let b = ctx.symbol(32, "input");
        assert_eq!(a, b);
        assert_eq!(ctx.symbol_name(a), Some("input"));
        assert_eq!(ctx.symbols(), &[a]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_is_rejected() {
        let mut ctx = Context::new();
        let a = ctx.constant(32, 1);
        let b = ctx.constant(16, 1);
        ctx.add(a, b);
    }

    #[test]
    fn signed_compare_folds_correctly() {
        let mut ctx = Context::new();
        let minus_one = ctx.constant(32, 0xffff_ffff);
        let one = ctx.constant(32, 1);
        let slt = ctx.slt(minus_one, one);
        assert_eq!(ctx.const_value(slt), Some(1));
        let ult = ctx.ult(minus_one, one);
        assert_eq!(ctx.const_value(ult), Some(0));
    }
}
