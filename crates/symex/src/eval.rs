//! Concrete evaluation of terms under an environment.
//!
//! Used by the test suites to check the bit-blaster and the simplifier
//! against a ground-truth interpreter, and by [`TestVector`] replay.
//!
//! [`TestVector`]: crate::TestVector

use std::collections::HashMap;

use crate::context::{mask, to_signed};
use crate::term::{Node, TermId};
use crate::Context;

/// An assignment of concrete values to symbol names.
pub type Env = HashMap<String, u64>;

/// Evaluates `term` under `env`.
///
/// Unbound symbols evaluate to zero (matching the solver's behaviour of
/// leaving unconstrained inputs at an arbitrary-but-reported value; the test
/// suites always bind every symbol).
///
/// # Panics
///
/// Panics if `term` does not belong to `ctx`.
///
/// # Example
///
/// ```
/// use symcosim_symex::{eval, Context, Env};
///
/// let mut ctx = Context::new();
/// let x = ctx.symbol(32, "x");
/// let k = ctx.constant(32, 2);
/// let doubled = ctx.mul(x, k);
///
/// let mut env = Env::new();
/// env.insert("x".to_string(), 21);
/// assert_eq!(eval(&ctx, doubled, &env), 42);
/// ```
pub fn eval(ctx: &Context, term: TermId, env: &Env) -> u64 {
    let width = ctx.width(term);
    let value = match ctx.node(term) {
        Node::Const { value, .. } => value,
        Node::Symbol { .. } => {
            let name = ctx.symbol_name(term).expect("symbol node has a name");
            env.get(name).copied().unwrap_or(0)
        }
        Node::Not(a) => !eval(ctx, a, env),
        Node::And(a, b) => eval(ctx, a, env) & eval(ctx, b, env),
        Node::Or(a, b) => eval(ctx, a, env) | eval(ctx, b, env),
        Node::Xor(a, b) => eval(ctx, a, env) ^ eval(ctx, b, env),
        Node::Add(a, b) => eval(ctx, a, env).wrapping_add(eval(ctx, b, env)),
        Node::Sub(a, b) => eval(ctx, a, env).wrapping_sub(eval(ctx, b, env)),
        Node::Mul(a, b) => eval(ctx, a, env).wrapping_mul(eval(ctx, b, env)),
        Node::Shl(a, s) => {
            let shift = eval(ctx, s, env);
            if shift >= width as u64 {
                0
            } else {
                eval(ctx, a, env) << shift
            }
        }
        Node::Lshr(a, s) => {
            let shift = eval(ctx, s, env);
            if shift >= width as u64 {
                0
            } else {
                mask(width, eval(ctx, a, env)) >> shift
            }
        }
        Node::Ashr(a, s) => {
            let shift = eval(ctx, s, env).min(width as u64 - 1) as u32;
            let signed = to_signed(width, mask(width, eval(ctx, a, env)));
            (signed >> shift) as u64
        }
        Node::Eq(a, b) => {
            let wa = ctx.width(a);
            (mask(wa, eval(ctx, a, env)) == mask(wa, eval(ctx, b, env))) as u64
        }
        Node::Ult(a, b) => {
            let wa = ctx.width(a);
            (mask(wa, eval(ctx, a, env)) < mask(wa, eval(ctx, b, env))) as u64
        }
        Node::Slt(a, b) => {
            let wa = ctx.width(a);
            (to_signed(wa, mask(wa, eval(ctx, a, env)))
                < to_signed(wa, mask(wa, eval(ctx, b, env)))) as u64
        }
        Node::Ite(c, t, e) => {
            if eval(ctx, c, env) & 1 == 1 {
                eval(ctx, t, env)
            } else {
                eval(ctx, e, env)
            }
        }
        Node::Extract { term, lo, .. } => eval(ctx, term, env) >> lo,
        Node::Concat { hi, lo } => {
            let lo_width = ctx.width(lo);
            (eval(ctx, hi, env) << lo_width) | mask(lo_width, eval(ctx, lo, env))
        }
        Node::ZeroExt { term, .. } => {
            let source_width = ctx.width(term);
            mask(source_width, eval(ctx, term, env))
        }
        Node::SignExt { term, .. } => {
            let source_width = ctx.width(term);
            to_signed(source_width, mask(source_width, eval(ctx, term, env))) as u64
        }
    };
    mask(width, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_mixed_expression() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let sum = ctx.add(x, y);
        let three = ctx.constant(32, 3);
        let shifted = ctx.shl(sum, three);
        let mut env = Env::new();
        env.insert("x".into(), 5);
        env.insert("y".into(), 7);
        assert_eq!(eval(&ctx, shifted, &env), 96);
    }

    #[test]
    fn unbound_symbols_are_zero() {
        let mut ctx = Context::new();
        let x = ctx.symbol(16, "unbound");
        assert_eq!(eval(&ctx, x, &Env::new()), 0);
    }

    #[test]
    fn narrow_widths_wrap() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let one = ctx.constant(8, 1);
        let sum = ctx.add(x, one);
        let mut env = Env::new();
        env.insert("x".into(), 0xff);
        assert_eq!(eval(&ctx, sum, &env), 0);
    }

    #[test]
    fn ite_and_compares() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let limit = ctx.constant(32, 10);
        let cond = ctx.ult(x, limit);
        let yes = ctx.constant(32, 1);
        let no = ctx.constant(32, 2);
        let result = ctx.ite(cond, yes, no);
        let mut env = Env::new();
        env.insert("x".into(), 3);
        assert_eq!(eval(&ctx, result, &env), 1);
        env.insert("x".into(), 30);
        assert_eq!(eval(&ctx, result, &env), 2);
    }
}
