//! Concrete evaluation of terms under an environment.
//!
//! Used by the test suites to check the bit-blaster and the simplifier
//! against a ground-truth interpreter, and by [`TestVector`] replay.
//!
//! [`TestVector`]: crate::TestVector

use std::collections::HashMap;

use crate::context::{mask, to_signed};
use crate::term::{Node, TermId};
use crate::Context;

/// An assignment of concrete values to symbol names.
pub type Env = HashMap<String, u64>;

/// Evaluates `term` under `env`.
///
/// Unbound symbols evaluate to zero (matching the solver's behaviour of
/// leaving unconstrained inputs at an arbitrary-but-reported value; the test
/// suites always bind every symbol).
///
/// # Panics
///
/// Panics if `term` does not belong to `ctx`.
///
/// # Example
///
/// ```
/// use symcosim_symex::{eval, Context, Env};
///
/// let mut ctx = Context::new();
/// let x = ctx.symbol(32, "x");
/// let k = ctx.constant(32, 2);
/// let doubled = ctx.mul(x, k);
///
/// let mut env = Env::new();
/// env.insert("x".to_string(), 21);
/// assert_eq!(eval(&ctx, doubled, &env), 42);
/// ```
pub fn eval(ctx: &Context, term: TermId, env: &Env) -> u64 {
    let mut memo = HashMap::new();
    eval_memo(ctx, term, env, &mut memo)
}

/// Evaluates `term` under `env`, memoising per-term results in `memo`.
///
/// Hash-consing makes subterm sharing pervasive, so naive tree recursion
/// is exponential in the worst case; with the memo table evaluation is
/// linear in the term *graph*. Callers evaluating several terms under the
/// same environment (e.g. the solver chain testing a cached model against
/// a whole condition set) should reuse one `memo` across the calls; the
/// memo is only valid for a single `(ctx, env)` pair.
pub fn eval_memo(ctx: &Context, term: TermId, env: &Env, memo: &mut HashMap<TermId, u64>) -> u64 {
    if let Some(&cached) = memo.get(&term) {
        return cached;
    }
    let width = ctx.width(term);
    let value = match ctx.node(term) {
        Node::Const { value, .. } => value,
        Node::Symbol { .. } => {
            let name = ctx.symbol_name(term).expect("symbol node has a name");
            env.get(name).copied().unwrap_or(0)
        }
        Node::Not(a) => !eval_memo(ctx, a, env, memo),
        Node::And(a, b) => eval_memo(ctx, a, env, memo) & eval_memo(ctx, b, env, memo),
        Node::Or(a, b) => eval_memo(ctx, a, env, memo) | eval_memo(ctx, b, env, memo),
        Node::Xor(a, b) => eval_memo(ctx, a, env, memo) ^ eval_memo(ctx, b, env, memo),
        Node::Add(a, b) => eval_memo(ctx, a, env, memo).wrapping_add(eval_memo(ctx, b, env, memo)),
        Node::Sub(a, b) => eval_memo(ctx, a, env, memo).wrapping_sub(eval_memo(ctx, b, env, memo)),
        Node::Mul(a, b) => eval_memo(ctx, a, env, memo).wrapping_mul(eval_memo(ctx, b, env, memo)),
        Node::Shl(a, s) => {
            let shift = eval_memo(ctx, s, env, memo);
            if shift >= width as u64 {
                0
            } else {
                eval_memo(ctx, a, env, memo) << shift
            }
        }
        Node::Lshr(a, s) => {
            let shift = eval_memo(ctx, s, env, memo);
            if shift >= width as u64 {
                0
            } else {
                mask(width, eval_memo(ctx, a, env, memo)) >> shift
            }
        }
        Node::Ashr(a, s) => {
            let shift = eval_memo(ctx, s, env, memo).min(width as u64 - 1) as u32;
            let signed = to_signed(width, mask(width, eval_memo(ctx, a, env, memo)));
            (signed >> shift) as u64
        }
        Node::Eq(a, b) => {
            let wa = ctx.width(a);
            (mask(wa, eval_memo(ctx, a, env, memo)) == mask(wa, eval_memo(ctx, b, env, memo)))
                as u64
        }
        Node::Ult(a, b) => {
            let wa = ctx.width(a);
            (mask(wa, eval_memo(ctx, a, env, memo)) < mask(wa, eval_memo(ctx, b, env, memo))) as u64
        }
        Node::Slt(a, b) => {
            let wa = ctx.width(a);
            (to_signed(wa, mask(wa, eval_memo(ctx, a, env, memo)))
                < to_signed(wa, mask(wa, eval_memo(ctx, b, env, memo)))) as u64
        }
        Node::Ite(c, t, e) => {
            if eval_memo(ctx, c, env, memo) & 1 == 1 {
                eval_memo(ctx, t, env, memo)
            } else {
                eval_memo(ctx, e, env, memo)
            }
        }
        Node::Extract { term, lo, .. } => eval_memo(ctx, term, env, memo) >> lo,
        Node::Concat { hi, lo } => {
            let lo_width = ctx.width(lo);
            (eval_memo(ctx, hi, env, memo) << lo_width)
                | mask(lo_width, eval_memo(ctx, lo, env, memo))
        }
        Node::ZeroExt { term, .. } => {
            let source_width = ctx.width(term);
            mask(source_width, eval_memo(ctx, term, env, memo))
        }
        Node::SignExt { term, .. } => {
            let source_width = ctx.width(term);
            to_signed(
                source_width,
                mask(source_width, eval_memo(ctx, term, env, memo)),
            ) as u64
        }
    };
    let result = mask(width, value);
    memo.insert(term, result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluates_mixed_expression() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let y = ctx.symbol(32, "y");
        let sum = ctx.add(x, y);
        let three = ctx.constant(32, 3);
        let shifted = ctx.shl(sum, three);
        let mut env = Env::new();
        env.insert("x".into(), 5);
        env.insert("y".into(), 7);
        assert_eq!(eval(&ctx, shifted, &env), 96);
    }

    #[test]
    fn unbound_symbols_are_zero() {
        let mut ctx = Context::new();
        let x = ctx.symbol(16, "unbound");
        assert_eq!(eval(&ctx, x, &Env::new()), 0);
    }

    #[test]
    fn narrow_widths_wrap() {
        let mut ctx = Context::new();
        let x = ctx.symbol(8, "x");
        let one = ctx.constant(8, 1);
        let sum = ctx.add(x, one);
        let mut env = Env::new();
        env.insert("x".into(), 0xff);
        assert_eq!(eval(&ctx, sum, &env), 0);
    }

    #[test]
    fn memoised_eval_handles_deep_sharing() {
        // A 64-level doubling chain has 2^64 tree nodes but only 64 graph
        // nodes; this only terminates because eval is memoised.
        let mut ctx = Context::new();
        let mut t = ctx.symbol(32, "x");
        for _ in 0..64 {
            t = ctx.add(t, t);
        }
        let mut env = Env::new();
        env.insert("x".into(), 1);
        assert_eq!(eval(&ctx, t, &env), 0, "1 << 64 wraps to 0 at width 32");
        env.insert("x".into(), 3);
        let mut memo = HashMap::new();
        assert_eq!(eval_memo(&ctx, t, &env, &mut memo), 0);
        assert!(memo.len() >= 64);
    }

    #[test]
    fn ite_and_compares() {
        let mut ctx = Context::new();
        let x = ctx.symbol(32, "x");
        let limit = ctx.constant(32, 10);
        let cond = ctx.ult(x, limit);
        let yes = ctx.constant(32, 1);
        let no = ctx.constant(32, 2);
        let result = ctx.ite(cond, yes, no);
        let mut env = Env::new();
        env.insert("x".into(), 3);
        assert_eq!(eval(&ctx, result, &env), 1);
        env.insert("x".into(), 30);
        assert_eq!(eval(&ctx, result, &env), 2);
    }
}
