//! Path exploration by copy-on-write snapshot forking.
//!
//! The re-execution [`Engine`](crate::Engine) pays O(d²) model steps for a
//! decision tree of depth *d*: every scheduled prefix re-runs the user
//! closure from cycle zero. This module restores KLEE's snapshotting
//! discipline. A task is expressed as a *stepped* computation
//! ([`ForkTask`]): the engine snapshots the task's cloneable state at every
//! step boundary, and when a decision inside the step forks, the sibling
//! job carries the snapshot plus the short intra-step *replay* window —
//! resuming costs one clone instead of a full re-run.
//!
//! Canonical path identity is preserved: the full decision bitstring is
//! still recorded per path, forks are scheduled in the same order, and the
//! frontier disciplines ([`SearchStrategy`]) mirror the re-execution engine
//! bit for bit. A job whose snapshot has been dropped (memory spill,
//! cross-worker migration) degrades gracefully to whole-prefix replay, so
//! any job can always be completed from its prefix alone.
//!
//! Shared-context invariant: all paths of one engine intern terms into a
//! single append-only [`Context`]. A snapshot therefore never copies the
//! term graph — its `TermId`s stay valid because nothing is ever removed.
//! The flip side is that snapshots are only meaningful inside the engine
//! (and worker) that created them; the fork-point watermark is simply the
//! length of the recorded decision prefix.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::engine::{EngineConfig, ExploreOutcome, PathResult, PathStatus, SearchStrategy};
use crate::probe::PathProbe;
use crate::solve::SolverBackend;
use crate::term::TermId;
use crate::wf::WfIssue;
use crate::{Context, Domain, TestVector};

/// Which path-exploration engine a session should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Deterministic re-execution ([`Engine`](crate::Engine)): every path
    /// re-runs the model from cycle zero, replaying its decision prefix.
    Reexec,
    /// Copy-on-write snapshot forking ([`ForkEngine`]): decision points
    /// clone the stepped task state instead of scheduling a re-run.
    #[default]
    Fork,
}

impl EngineKind {
    /// Parses the CLI spelling (`"fork"` / `"reexec"`).
    pub fn parse(token: &str) -> Option<EngineKind> {
        match token {
            "fork" => Some(EngineKind::Fork),
            "reexec" => Some(EngineKind::Reexec),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Reexec => write!(f, "reexec"),
            EngineKind::Fork => write!(f, "fork"),
        }
    }
}

/// What one [`ForkTask::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult<Out> {
    /// The task has more steps to run on this path.
    Continue,
    /// The path is finished and produced this value.
    Done(Out),
}

/// A deterministic computation the [`ForkEngine`] can snapshot.
///
/// The engine calls [`start`](ForkTask::start) once per root path and then
/// [`step`](ForkTask::step) repeatedly until it returns
/// [`StepResult::Done`]. The granularity of a step is the granularity of
/// snapshotting: forks inside a step replay only that step's decisions
/// from the pre-step snapshot.
///
/// Contract:
/// * the computation must be deterministic — the same decision sequence
///   performs the same domain operations in the same order and names its
///   symbolic inputs canonically;
/// * `step` must return `Done` promptly once the executor
///   [`is_dead`](crate::Domain::is_dead);
/// * `State` must capture everything the task carries across steps (terms
///   are handles into the shared context and clone freely).
pub trait ForkTask {
    /// Per-path state, cloned at snapshot points.
    type State: Clone;
    /// Per-path result value.
    type Out;

    /// Builds the initial state for a fresh path.
    fn start(&self, exec: &mut ForkExec) -> Self::State;

    /// Advances the path by one snapshot interval.
    fn step(&self, state: &mut Self::State, exec: &mut ForkExec) -> StepResult<Self::Out>;
}

/// A copy-on-write snapshot: the task state plus the engine-side path
/// bookkeeping, all captured at a step boundary. The shared [`Context`] is
/// deliberately *not* part of the snapshot (append-only, see the module
/// docs).
///
/// Snapshots are built lazily — only when a step actually forked — and
/// shared between all the step's siblings through an [`Arc`], so an
/// n-way fork costs one clone of the state, not n.
#[derive(Debug, Clone)]
struct Snapshot<S> {
    state: S,
    constraints: Vec<TermId>,
    origins: Vec<crate::project::ConstraintOrigin>,
    taken: Vec<bool>,
    path_symbols: Vec<TermId>,
}

/// One schedulable unit of fork-engine work: a canonical decision prefix,
/// optionally accelerated by a snapshot taken at the last step boundary
/// before the fork.
#[derive(Debug, Clone)]
pub struct ForkJob<S> {
    prefix: Vec<bool>,
    snapshot: Option<Arc<Snapshot<S>>>,
}

impl<S> ForkJob<S> {
    /// The root job: empty prefix, no snapshot.
    pub fn root() -> ForkJob<S> {
        ForkJob {
            prefix: Vec::new(),
            snapshot: None,
        }
    }

    /// Rebuilds a job from a bare decision prefix (whole-path replay).
    pub fn from_prefix(prefix: Vec<bool>) -> ForkJob<S> {
        ForkJob {
            prefix,
            snapshot: None,
        }
    }

    /// The canonical decision prefix identifying this path.
    pub fn prefix(&self) -> &[bool] {
        &self.prefix
    }

    /// Consumes the job, returning its prefix.
    pub fn into_prefix(self) -> Vec<bool> {
        self.prefix
    }

    /// Whether a snapshot is attached.
    pub fn has_snapshot(&self) -> bool {
        self.snapshot.is_some()
    }

    /// Drops the snapshot, degrading the job to whole-prefix replay. This
    /// is the memory-bound spill and the cross-worker migration path.
    pub fn spill(&mut self) {
        self.snapshot = None;
    }
}

/// Per-path symbolic executor of the [`ForkEngine`]; implements [`Domain`]
/// over term handles exactly like [`SymExec`](crate::SymExec), plus an
/// intra-step replay window for resuming from snapshots.
///
/// Unlike `SymExec` it owns the context and solver (they persist across
/// paths inside the engine), so tasks hold `&mut ForkExec` only for the
/// duration of a call.
#[derive(Debug)]
pub struct ForkExec {
    ctx: Context,
    backend: SolverBackend,
    replay: VecDeque<bool>,
    taken: Vec<bool>,
    constraints: Vec<TermId>,
    origins: Vec<crate::project::ConstraintOrigin>,
    forks: Vec<Vec<bool>>,
    path_symbols: Vec<TermId>,
    status: PathStatus,
    max_decisions: usize,
    projector: crate::project::Projector,
}

impl ForkExec {
    fn new(max_decisions: usize, solver_chain: bool, audit: bool, incremental: bool) -> ForkExec {
        ForkExec {
            ctx: Context::new(),
            backend: SolverBackend::with_config(solver_chain, audit, incremental),
            replay: VecDeque::new(),
            taken: Vec::new(),
            constraints: Vec::new(),
            origins: Vec::new(),
            forks: Vec::new(),
            path_symbols: Vec::new(),
            status: PathStatus::Complete,
            max_decisions,
            projector: crate::project::Projector::new(),
        }
    }

    /// The term context (symbolic values are [`TermId`]s into it).
    pub fn context(&mut self) -> &mut Context {
        &mut self.ctx
    }

    /// The constraints accumulated on this path so far.
    pub fn constraints(&self) -> &[TermId] {
        &self.constraints
    }

    /// Whether `cond` is satisfiable together with the path condition —
    /// *without* committing to it (see
    /// [`SymExec::check_sat`](crate::SymExec::check_sat)).
    pub fn check_sat(&mut self, cond: TermId) -> bool {
        if let Some(value) = self.ctx.const_value(cond) {
            return value == 1;
        }
        // During replay this is usually a cache hit: the parent path asked
        // the identical condition set.
        self.backend.prefix_sync(&self.constraints);
        self.backend.check_suffix(&self.ctx, &[cond]).is_sat()
    }

    /// Permanently adds `cond` to the path condition.
    pub fn add_constraint(&mut self, cond: TermId) {
        self.constraints.push(cond);
        self.origins
            .push(crate::project::ConstraintOrigin::Committed);
    }

    /// Projects this path's condition onto every symbolic fetch slot whose
    /// symbol name starts with `slot_prefix`, matching
    /// [`SymExec::project_coverage`](crate::SymExec::project_coverage).
    #[must_use]
    pub fn project_coverage(&mut self, slot_prefix: &str) -> Vec<crate::project::SlotCoverage> {
        self.projector
            .project_path(&self.ctx, slot_prefix, &self.constraints, &self.origins)
    }

    /// History-independent witness extraction (fresh solver), matching
    /// [`SymExec::stable_concrete_witness`](crate::SymExec::stable_concrete_witness).
    pub fn stable_concrete_witness(&mut self, term: TermId, extra: &[TermId]) -> Option<u64> {
        let mut conditions = self.constraints.clone();
        conditions.extend_from_slice(extra);
        crate::solve::fresh_model_value(&self.ctx, &conditions, term)
    }

    /// History-independent test-vector extraction (fresh solver), matching
    /// [`SymExec::stable_witness_vector`](crate::SymExec::stable_witness_vector).
    pub fn stable_witness_vector(&mut self, extra: &[TermId]) -> Option<TestVector> {
        let mut conditions = self.constraints.clone();
        conditions.extend_from_slice(extra);
        crate::solve::fresh_model_vector(&self.ctx, &conditions, &self.path_symbols)
    }

    /// Runs the full [well-formedness pass](crate::wf::validate_path) over
    /// this path's condition and symbolic reads.
    #[must_use]
    pub fn lint_path(&self) -> Vec<WfIssue> {
        crate::wf::validate_path(&self.ctx, &self.constraints, &self.path_symbols)
    }

    /// [`ForkExec::lint_path`] with the path's output frontier, so symbols
    /// in no constraint and no output term are reported as dead (see
    /// [`validate_path_with_outputs`](crate::wf::validate_path_with_outputs)).
    #[must_use]
    pub fn lint_path_with_outputs(&self, outputs: &[TermId]) -> Vec<WfIssue> {
        crate::wf::validate_path_with_outputs(
            &self.ctx,
            &self.constraints,
            &self.path_symbols,
            outputs,
        )
    }

    fn kill(&mut self, status: PathStatus) {
        if self.status == PathStatus::Complete {
            self.status = status;
        }
    }

    fn begin_path<S>(&mut self, prefix: Vec<bool>, snapshot: Option<&Snapshot<S>>) {
        match snapshot {
            Some(snap) => {
                debug_assert!(snap.taken.len() <= prefix.len());
                debug_assert_eq!(&prefix[..snap.taken.len()], &snap.taken[..]);
                self.replay = prefix[snap.taken.len()..].iter().copied().collect();
                self.taken = snap.taken.clone();
                self.constraints = snap.constraints.clone();
                self.origins = snap.origins.clone();
                self.path_symbols = snap.path_symbols.clone();
            }
            None => {
                self.replay = prefix.into_iter().collect();
                self.taken = Vec::new();
                self.constraints = Vec::new();
                self.origins = Vec::new();
                self.path_symbols = Vec::new();
            }
        }
        self.forks = Vec::new();
        self.status = PathStatus::Complete;
    }
}

impl Domain for ForkExec {
    type Word = TermId;
    type Bool = TermId;

    fn const_word(&mut self, value: u32) -> TermId {
        self.ctx.constant(32, value as u64)
    }

    fn const_bool(&mut self, value: bool) -> TermId {
        self.ctx.bool_const(value)
    }

    fn fresh_word(&mut self, name: &str) -> TermId {
        let sym = self.ctx.symbol(32, name);
        if !self.path_symbols.contains(&sym) {
            self.path_symbols.push(sym);
        }
        sym
    }

    fn word_value(&self, word: TermId) -> Option<u32> {
        self.ctx.const_value(word).map(|v| v as u32)
    }

    fn bool_value(&self, b: TermId) -> Option<bool> {
        self.ctx.const_value(b).map(|v| v == 1)
    }

    fn add(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.add(a, b)
    }

    fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.sub(a, b)
    }

    fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.mul(a, b)
    }

    fn and(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.and(a, b)
    }

    fn or(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.or(a, b)
    }

    fn xor(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.xor(a, b)
    }

    fn not_w(&mut self, a: TermId) -> TermId {
        self.ctx.not(a)
    }

    fn shl(&mut self, a: TermId, amount: TermId) -> TermId {
        self.ctx.shl(a, amount)
    }

    fn lshr(&mut self, a: TermId, amount: TermId) -> TermId {
        self.ctx.lshr(a, amount)
    }

    fn ashr(&mut self, a: TermId, amount: TermId) -> TermId {
        self.ctx.ashr(a, amount)
    }

    fn eq_w(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.eq(a, b)
    }

    fn ult(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.ult(a, b)
    }

    fn slt(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.slt(a, b)
    }

    fn ite(&mut self, cond: TermId, then_w: TermId, else_w: TermId) -> TermId {
        self.ctx.ite(cond, then_w, else_w)
    }

    fn not_b(&mut self, a: TermId) -> TermId {
        self.ctx.not(a)
    }

    fn and_b(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.and(a, b)
    }

    fn or_b(&mut self, a: TermId, b: TermId) -> TermId {
        self.ctx.or(a, b)
    }

    fn bool_to_word(&mut self, b: TermId) -> TermId {
        self.ctx.zero_ext(b, 32)
    }

    fn decide(&mut self, cond: TermId) -> bool {
        if self.is_dead() {
            return false;
        }
        if let Some(value) = self.ctx.const_value(cond) {
            return value == 1;
        }
        if let Some(choice) = self.replay.pop_front() {
            // Replaying a forced window (snapshot resume or spilled
            // prefix): feasibility was established when the fork was
            // scheduled, no solver call needed.
            let constraint = if choice { cond } else { self.ctx.not(cond) };
            self.constraints.push(constraint);
            self.origins
                .push(crate::project::ConstraintOrigin::Decision(
                    self.taken.len() as u32
                ));
            self.taken.push(choice);
            return choice;
        }
        if self.taken.len() >= self.max_decisions {
            self.kill(PathStatus::DecisionLimit);
            return false;
        }
        let negated = self.ctx.not(cond);
        // Both polarity probes share the whole path condition as their
        // prefix; suffix queries let the incremental solver retain the
        // prefix's propagation trail between them.
        self.backend.prefix_sync(&self.constraints);
        let true_feasible = self.backend.check_suffix(&self.ctx, &[cond]).is_sat();
        let (choice, constraint) = if true_feasible {
            if self.backend.check_suffix(&self.ctx, &[negated]).is_sat() {
                // Both sides feasible: fork, continue on `true`.
                let mut sibling = self.taken.clone();
                sibling.push(false);
                self.forks.push(sibling);
            }
            (true, cond)
        } else {
            // The path condition is feasible by induction, so `false` is.
            (false, negated)
        };
        self.constraints.push(constraint);
        self.backend.prefix_push(constraint);
        self.origins
            .push(crate::project::ConstraintOrigin::Decision(
                self.taken.len() as u32
            ));
        self.taken.push(choice);
        choice
    }

    fn assume(&mut self, cond: TermId) {
        if self.is_dead() {
            return;
        }
        match self.ctx.const_value(cond) {
            Some(1) => return,
            Some(_) => {
                self.kill(PathStatus::Infeasible);
                return;
            }
            None => {}
        }
        if !self.replay.is_empty() {
            // Inside the replayed window the identical constraint set was
            // checked satisfiable on the parent path (the parent stayed
            // alive past this point, and the flipped branch itself was
            // checked at fork time), so the re-execution engine's check
            // here is guaranteed Sat — skip it.
            self.constraints.push(cond);
            self.origins.push(crate::project::ConstraintOrigin::Assumed);
            return;
        }
        self.backend.prefix_sync(&self.constraints);
        let feasible = self.backend.check_suffix(&self.ctx, &[cond]).is_sat();
        self.constraints.push(cond);
        self.backend.prefix_push(cond);
        self.origins.push(crate::project::ConstraintOrigin::Assumed);
        if !feasible {
            self.kill(PathStatus::Infeasible);
        }
    }

    fn is_dead(&self) -> bool {
        self.status != PathStatus::Complete
    }
}

impl PathProbe for ForkExec {
    fn constraints(&self) -> &[TermId] {
        ForkExec::constraints(self)
    }

    fn check_sat(&mut self, cond: TermId) -> bool {
        ForkExec::check_sat(self, cond)
    }

    fn add_constraint(&mut self, cond: TermId) {
        ForkExec::add_constraint(self, cond)
    }

    fn stable_concrete_witness(&mut self, term: TermId, extra: &[TermId]) -> Option<u64> {
        ForkExec::stable_concrete_witness(self, term, extra)
    }

    fn stable_witness_vector(&mut self, extra: &[TermId]) -> Option<TestVector> {
        ForkExec::stable_witness_vector(self, extra)
    }

    fn lint_path(&self) -> Vec<WfIssue> {
        ForkExec::lint_path(self)
    }

    fn lint_path_with_outputs(&self, outputs: &[TermId]) -> Vec<WfIssue> {
        ForkExec::lint_path_with_outputs(self, outputs)
    }

    fn project_coverage(&mut self, slot_prefix: &str) -> Vec<crate::project::SlotCoverage> {
        ForkExec::project_coverage(self, slot_prefix)
    }
}

/// The snapshotting exploration engine — [`Engine`](crate::Engine)'s
/// copy-on-write twin.
///
/// Explores the same canonical path tree with the same frontier
/// disciplines and the same `--seed` determinism, but resumes forked paths
/// from cloned state instead of re-running them. See the
/// [module docs](self) for the architecture.
#[derive(Debug)]
pub struct ForkEngine {
    exec: ForkExec,
    config: EngineConfig,
    rng_state: u64,
}

impl ForkEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> ForkEngine {
        let mut exec = ForkExec::new(
            config.max_decisions_per_path,
            config.solver_chain,
            config.audit,
            config.incremental,
        );
        exec.backend.set_preflight(config.preflight);
        ForkEngine {
            exec,
            config: config.clone(),
            rng_state: config.seed | 1,
        }
    }

    /// Read access to the term context.
    pub fn ctx(&self) -> &Context {
        &self.exec.ctx
    }

    /// The solver backend, e.g. for statistics.
    pub fn backend(&self) -> &SolverBackend {
        &self.exec.backend
    }

    /// Drains the proof auditor's certified conflict cones (see
    /// [`SolverBackend::take_audit_units`]). Empty when auditing is off.
    pub fn take_audit_units(&mut self) -> Vec<symcosim_sat::CoreReplayUnit> {
        self.exec.backend.take_audit_units()
    }

    /// Exports the solver chain's caches for warming a later identical
    /// run (see [`crate::ChainSeed`]). Empty when the chain is disabled.
    pub fn export_chain_seed(&self) -> crate::ChainSeed {
        self.exec.backend.export_chain_seed()
    }

    /// Pre-warms the solver chain from a seed exported by an identical
    /// run; answers are unchanged, only cheaper.
    pub fn import_chain_seed(&mut self, seed: &crate::ChainSeed) {
        self.exec.backend.import_chain_seed(seed);
    }

    /// Runs the single path selected by `job` and returns its result plus
    /// the sibling jobs scheduled at fresh forks.
    ///
    /// The counterpart of [`Engine::run_prefix`](crate::Engine::run_prefix)
    /// — everything except the task's own value is a pure function of the
    /// job's prefix and the task, so a snapshotted job and its spilled
    /// twin produce identical results.
    pub fn run_job<T: ForkTask>(
        &mut self,
        job: ForkJob<T::State>,
        task: &T,
    ) -> (PathResult<T::Out>, Vec<ForkJob<T::State>>) {
        let ForkJob { prefix, snapshot } = job;
        self.exec.begin_path(prefix, snapshot.as_deref());
        // Move out of the snapshot when this job holds the last reference;
        // clone only when siblings still share it.
        let mut state: Option<T::State> = snapshot.map(|s| match Arc::try_unwrap(s) {
            Ok(snap) => snap.state,
            Err(shared) => shared.state.clone(),
        });
        let mut jobs: Vec<ForkJob<T::State>> = Vec::new();
        let value = loop {
            let (done, snap) = match state.take() {
                None => {
                    // Forks inside `start` (decisions before the first step
                    // boundary) have no pre-state; their siblings replay the
                    // whole prefix.
                    state = Some(task.start(&mut self.exec));
                    (None, None)
                }
                Some(pre_state) => {
                    // The engine-side bookkeeping is append-only within a
                    // path, so the pre-step snapshot needs only watermark
                    // lengths now and is materialised *after* the step, and
                    // only if the step actually forked.
                    let constraints_mark = self.exec.constraints.len();
                    let taken_mark = self.exec.taken.len();
                    let symbols_mark = self.exec.path_symbols.len();
                    let mut next = pre_state.clone();
                    let done = match task.step(&mut next, &mut self.exec) {
                        StepResult::Continue => None,
                        StepResult::Done(out) => Some(out),
                    };
                    let snap = if self.exec.forks.is_empty() {
                        None
                    } else {
                        Some(Arc::new(Snapshot {
                            state: pre_state,
                            constraints: self.exec.constraints[..constraints_mark].to_vec(),
                            origins: self.exec.origins[..constraints_mark].to_vec(),
                            taken: self.exec.taken[..taken_mark].to_vec(),
                            path_symbols: self.exec.path_symbols[..symbols_mark].to_vec(),
                        }))
                    };
                    state = Some(next);
                    (done, snap)
                }
            };
            if !self.exec.forks.is_empty() {
                let siblings = std::mem::take(&mut self.exec.forks);
                for sibling in siblings {
                    jobs.push(ForkJob {
                        prefix: sibling,
                        snapshot: snap.clone(),
                    });
                }
            }
            if let Some(out) = done {
                break out;
            }
        };
        debug_assert!(
            self.exec.replay.is_empty() || self.exec.is_dead(),
            "task finished with unconsumed replay decisions"
        );
        #[cfg(debug_assertions)]
        crate::wf::debug_validate_path(&self.exec.ctx, &self.exec.constraints);
        let test_vector =
            if self.config.emit_test_vectors && self.exec.status != PathStatus::Infeasible {
                crate::solve::fresh_model_vector(
                    &self.exec.ctx,
                    &self.exec.constraints,
                    &self.exec.path_symbols,
                )
            } else {
                None
            };
        let result = PathResult {
            value,
            status: self.exec.status,
            decisions: self.exec.taken.clone(),
            num_constraints: self.exec.constraints.len(),
            test_vector,
        };
        (result, jobs)
    }

    /// Explores every feasible path through `task` (the counterpart of
    /// [`Engine::explore`](crate::Engine::explore)).
    pub fn explore<T: ForkTask>(&mut self, task: &T) -> ExploreOutcome<T::Out> {
        self.explore_until(task, |_| false)
    }

    /// Like [`ForkEngine::explore`], but stops as soon as `stop` returns
    /// true for a just-completed path.
    ///
    /// The frontier bounds resident snapshots to
    /// [`EngineConfig::max_resident_snapshots`]; beyond that, new forks are
    /// spilled to prefix-only jobs.
    pub fn explore_until<T: ForkTask, P>(&mut self, task: &T, mut stop: P) -> ExploreOutcome<T::Out>
    where
        P: FnMut(&PathResult<T::Out>) -> bool,
    {
        let mut frontier: Vec<ForkJob<T::State>> = vec![ForkJob::root()];
        let mut resident = 0usize;
        let mut paths = Vec::new();
        let mut complete = 0usize;
        let mut partial = 0usize;

        while let Some(job) = self.pop_frontier(&mut frontier) {
            if job.has_snapshot() {
                resident -= 1;
            }
            if paths.len() >= self.config.max_paths {
                return ExploreOutcome {
                    paths,
                    complete_paths: complete,
                    partial_paths: partial,
                    frontier_exhausted: true,
                };
            }
            let (result, forks) = self.run_job(job, task);
            for mut fork in forks {
                if fork.has_snapshot() {
                    if resident >= self.config.max_resident_snapshots {
                        fork.spill();
                    } else {
                        resident += 1;
                    }
                }
                frontier.push(fork);
            }
            match result.status {
                PathStatus::Complete => complete += 1,
                _ => partial += 1,
            }
            paths.push(result);
            if stop(paths.last().expect("just pushed")) {
                return ExploreOutcome {
                    frontier_exhausted: !frontier.is_empty(),
                    paths,
                    complete_paths: complete,
                    partial_paths: partial,
                };
            }
        }

        ExploreOutcome {
            paths,
            complete_paths: complete,
            partial_paths: partial,
            frontier_exhausted: false,
        }
    }

    fn pop_frontier<S>(&mut self, frontier: &mut Vec<ForkJob<S>>) -> Option<ForkJob<S>> {
        if frontier.is_empty() {
            return None;
        }
        // Mirrors Engine::pop_frontier exactly (same xorshift64* stream),
        // so both engines visit the canonical path tree in the same order.
        let index = match self.config.strategy {
            SearchStrategy::Dfs => frontier.len() - 1,
            SearchStrategy::Bfs => 0,
            SearchStrategy::RandomPath => {
                self.rng_state ^= self.rng_state << 13;
                self.rng_state ^= self.rng_state >> 7;
                self.rng_state ^= self.rng_state << 17;
                (self.rng_state as usize) % frontier.len()
            }
        };
        Some(frontier.swap_remove(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, SymExec};

    /// Stepped twin of the re-execution tests' three-bit task: one
    /// decision per step over distinct bits of one symbol.
    struct BitTask {
        bits: u32,
    }

    #[derive(Debug, Clone)]
    struct BitState {
        value: u32,
        bit: u32,
    }

    impl ForkTask for BitTask {
        type State = BitState;
        type Out = u32;

        fn start(&self, _exec: &mut ForkExec) -> BitState {
            BitState { value: 0, bit: 0 }
        }

        fn step(&self, state: &mut BitState, exec: &mut ForkExec) -> StepResult<u32> {
            if exec.is_dead() || state.bit >= self.bits {
                return StepResult::Done(state.value);
            }
            let x = exec.fresh_word("x");
            let field = exec.field(x, state.bit, state.bit);
            let one = exec.const_word(1);
            let set = exec.eq_w(field, one);
            if exec.decide(set) {
                state.value |= 1 << state.bit;
            }
            state.bit += 1;
            StepResult::Continue
        }
    }

    fn closure_bit_task(bits: u32) -> impl FnMut(&mut SymExec<'_>) -> u32 {
        move |exec| {
            let x = exec.fresh_word("x");
            let mut value = 0u32;
            for bit in 0..bits {
                let field = exec.field(x, bit, bit);
                let one = exec.const_word(1);
                let set = exec.eq_w(field, one);
                if exec.decide(set) {
                    value |= 1 << bit;
                }
            }
            value
        }
    }

    fn fingerprint(paths: &[PathResult<u32>]) -> Vec<String> {
        paths
            .iter()
            .map(|p| {
                format!(
                    "{:?}|{:?}|{}|{}|{:?}",
                    p.value,
                    p.decisions,
                    p.num_constraints,
                    p.status == PathStatus::Complete,
                    p.test_vector.as_ref().map(|v| v.to_string())
                )
            })
            .collect()
    }

    #[test]
    fn fork_engine_matches_reexec_engine() {
        for strategy in [
            SearchStrategy::Dfs,
            SearchStrategy::Bfs,
            SearchStrategy::RandomPath,
        ] {
            let config = EngineConfig {
                strategy,
                ..EngineConfig::default()
            };
            let mut reexec = Engine::new(config.clone());
            let expected = reexec.explore(closure_bit_task(3));
            let mut fork = ForkEngine::new(config);
            let actual = fork.explore(&BitTask { bits: 3 });
            assert_eq!(
                fingerprint(&actual.paths),
                fingerprint(&expected.paths),
                "{strategy:?}: engines must visit identical canonical paths"
            );
            assert_eq!(actual.complete_paths, expected.complete_paths);
            assert_eq!(actual.partial_paths, expected.partial_paths);
            assert_eq!(actual.frontier_exhausted, expected.frontier_exhausted);
        }
    }

    #[test]
    fn spilled_jobs_match_snapshotted_jobs() {
        // Forcing every fork to spill (max_resident_snapshots = 0) must
        // not change any path outcome — only the cost of resuming.
        let snappy = EngineConfig::default();
        let spilly = EngineConfig {
            max_resident_snapshots: 0,
            ..EngineConfig::default()
        };
        let mut with_snapshots = ForkEngine::new(snappy);
        let baseline = with_snapshots.explore(&BitTask { bits: 4 });
        let mut without = ForkEngine::new(spilly);
        let spilled = without.explore(&BitTask { bits: 4 });
        assert_eq!(fingerprint(&baseline.paths), fingerprint(&spilled.paths));
    }

    #[test]
    fn run_job_is_history_independent() {
        // The same spilled prefix on a fresh engine and on a warmed-up
        // engine: identical result and forks.
        let prefix = vec![true, false];
        let task = BitTask { bits: 3 };
        let mut fresh = ForkEngine::new(EngineConfig::default());
        let (baseline, base_forks) = fresh.run_job(ForkJob::from_prefix(prefix.clone()), &task);

        let mut warmed = ForkEngine::new(EngineConfig::default());
        warmed.run_job(ForkJob::root(), &task);
        warmed.run_job(ForkJob::from_prefix(vec![false]), &task);
        let (repeat, repeat_forks) = warmed.run_job(ForkJob::from_prefix(prefix), &task);

        assert_eq!(repeat.value, baseline.value);
        assert_eq!(repeat.status, baseline.status);
        assert_eq!(repeat.decisions, baseline.decisions);
        let (a, b): (Vec<_>, Vec<_>) = (
            base_forks.iter().map(|j| j.prefix().to_vec()).collect(),
            repeat_forks.iter().map(|j| j.prefix().to_vec()).collect(),
        );
        assert_eq!(a, b);
        assert_eq!(
            baseline.test_vector.expect("feasible").to_string(),
            repeat.test_vector.expect("feasible").to_string(),
        );
    }

    struct AssumeTask;

    impl ForkTask for AssumeTask {
        type State = u32;
        type Out = bool;

        fn start(&self, _exec: &mut ForkExec) -> u32 {
            0
        }

        fn step(&self, state: &mut u32, exec: &mut ForkExec) -> StepResult<bool> {
            if exec.is_dead() {
                return StepResult::Done(exec.is_dead());
            }
            match *state {
                0 => {
                    let x = exec.fresh_word("x");
                    let three = exec.const_word(3);
                    let is3 = exec.eq_w(x, three);
                    exec.assume(is3);
                }
                1 => {
                    let x = exec.fresh_word("x");
                    let four = exec.const_word(4);
                    let is4 = exec.eq_w(x, four);
                    exec.assume(is4); // contradiction
                }
                _ => return StepResult::Done(exec.is_dead()),
            }
            *state += 1;
            StepResult::Continue
        }
    }

    #[test]
    fn contradictory_assumes_mark_infeasible() {
        let mut engine = ForkEngine::new(EngineConfig::default());
        let outcome = engine.explore(&AssumeTask);
        assert_eq!(outcome.paths.len(), 1);
        assert_eq!(outcome.paths[0].status, PathStatus::Infeasible);
        assert_eq!(outcome.partial_paths, 1);
        assert!(outcome.paths[0].value);
    }

    #[test]
    fn decision_limit_counts_as_partial() {
        let config = EngineConfig {
            max_decisions_per_path: 2,
            ..EngineConfig::default()
        };
        let mut engine = ForkEngine::new(config);
        let outcome = engine.explore(&BitTask { bits: 8 });
        assert!(outcome
            .paths
            .iter()
            .any(|p| p.status == PathStatus::DecisionLimit));
    }

    #[test]
    fn max_paths_truncates_search() {
        let config = EngineConfig {
            max_paths: 3,
            ..EngineConfig::default()
        };
        let mut engine = ForkEngine::new(config);
        let outcome = engine.explore(&BitTask { bits: 6 });
        assert_eq!(outcome.paths.len(), 3);
        assert!(outcome.frontier_exhausted);
    }

    #[test]
    fn replay_performs_no_solver_work() {
        // The whole point of the fork engine: resuming a sibling replays
        // forced decisions without feasibility checks, so exploring a
        // 2^4-path tree issues far fewer queries than 16 re-runs would.
        let mut engine = ForkEngine::new(EngineConfig::default());
        engine.explore(&BitTask { bits: 4 });
        let cache = engine.backend().query_cache_stats();
        let queries = cache.hits + cache.misses;
        // Each of the 15 fresh decisions asks at most 2 queries; replayed
        // decisions ask none.
        assert!(queries <= 30, "replay must not issue queries ({queries})");
    }
}
